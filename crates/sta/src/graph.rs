//! Multi-stage timing graphs: instances, nets, arrival-time propagation and
//! critical-path extraction.
//!
//! A [`Design`] is a DAG of cell instances connected by nets.  Each net is
//! driven either by a primary input or by an instance's output, carries an
//! extracted interconnect [`RcTree`], and fans out to instance inputs and/or
//! primary outputs.  Arrival times are propagated in topological order as
//! **intervals** `[min, max]`: the lower ends use the Penfield–Rubinstein
//! lower delay bounds, the upper ends the upper bounds, so the reported
//! worst-case arrival at every endpoint is a *guaranteed* bound rather than
//! an estimate — exactly the certification use-case of the paper's abstract.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Weak};

use rctree_core::cert::Certification;
use rctree_core::element::Branch;
use rctree_core::incremental::{EditableTree, TreeEdit};
use rctree_core::tree::RcTree;
use rctree_core::units::{Farads, Seconds};

use crate::cell::CellLibrary;
use crate::error::{Result, StaError};
use crate::stage::analyze_stage;

/// What drives a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Driver {
    /// A primary input of the design (arrival time zero).
    PrimaryInput,
    /// The output of the named instance.
    Instance(String),
}

/// What a net sink connects to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Load {
    /// The input of the named instance.
    Instance(String),
    /// A primary output (endpoint) of the design.
    PrimaryOutput(String),
}

/// One sink of a net: a node of the interconnect tree plus what hangs there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sink {
    /// Name of the interconnect-tree node the load is attached to.
    pub node: String,
    /// What the sink drives.
    pub load: Load,
}

/// A net: driver, extracted interconnect and sinks.
#[derive(Debug, Clone)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// Who drives the net.
    pub driver: Driver,
    /// Extracted interconnect; its input node is the driver's output pin.
    pub interconnect: RcTree,
    /// Fan-out of the net.
    pub sinks: Vec<Sink>,
}

/// An arrival-time interval propagated through the graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalWindow {
    /// Earliest possible arrival (sum of lower bounds).
    pub min: Seconds,
    /// Latest possible arrival (sum of upper bounds) — the certified value.
    pub max: Seconds,
}

impl ArrivalWindow {
    /// The zero window (primary inputs).
    pub const ZERO: ArrivalWindow = ArrivalWindow {
        min: Seconds::ZERO,
        max: Seconds::ZERO,
    };
}

/// One endpoint (primary output) in the timing report.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointTiming {
    /// Primary-output name.
    pub name: String,
    /// Arrival window at the endpoint.
    pub arrival: ArrivalWindow,
    /// The chain of instance names on the latest path to this endpoint,
    /// starting from the primary input side.
    pub critical_path: Vec<String>,
}

/// Whole-design timing report.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Switching threshold used for all stage delays.
    pub threshold: f64,
    /// Required arrival time used for slack and certification.
    pub required_time: Seconds,
    /// Per-endpoint results, sorted by descending worst arrival.
    pub endpoints: Vec<EndpointTiming>,
}

impl TimingReport {
    /// The endpoint with the largest guaranteed-worst-case arrival, or
    /// `None` for a report with no endpoints (a design whose nets feed only
    /// instance inputs produces such a report — it is not an error).
    pub fn critical_endpoint(&self) -> Option<&EndpointTiming> {
        self.endpoints.first()
    }

    /// Worst slack in the design: `required_time − worst arrival upper
    /// bound`.  Negative slack means the design may miss timing.
    ///
    /// An empty report (no endpoints) has nothing that can miss timing, so
    /// its worst slack is the full `required_time` — the vacuous analogue
    /// of "every endpoint meets the budget with the entire budget to
    /// spare".
    pub fn worst_slack(&self) -> Seconds {
        match self.critical_endpoint() {
            Some(e) => self.required_time - e.arrival.max,
            None => self.required_time,
        }
    }

    /// Three-valued certification of the whole design against the required
    /// time (the multi-stage generalisation of the paper's `OK` function).
    ///
    /// An empty report certifies as [`Certification::Pass`]: the verdict is
    /// the conjunction over all endpoints, and a conjunction over none is
    /// vacuously true.
    pub fn certification(&self) -> Certification {
        let mut verdict = Certification::Pass;
        for e in &self.endpoints {
            let v = if e.arrival.max <= self.required_time {
                Certification::Pass
            } else if e.arrival.min > self.required_time {
                Certification::Fail
            } else {
                Certification::Indeterminate
            };
            verdict = verdict.and(v);
        }
        verdict
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "timing report (threshold {:.2}, required {})",
            self.threshold, self.required_time
        )?;
        for e in &self.endpoints {
            writeln!(
                f,
                "  {}: arrival [{}, {}] via {}",
                e.name,
                e.arrival.min,
                e.arrival.max,
                e.critical_path.join(" -> ")
            )?;
        }
        writeln!(f, "  worst slack: {}", self.worst_slack())?;
        writeln!(f, "  certification: {}", self.certification())
    }
}

/// A gate-level design with extracted interconnect.
///
/// The library, instance table and nets live behind an [`Arc`] so that the
/// persistent global worker pool ([`rctree_par::global_pool`]) can hold
/// owned (`'static`) references to them while a sharded analysis is in
/// flight; mutation goes through [`Arc::make_mut`].  Pool jobs reference
/// the core only through a [`Weak`] (upgraded per net while the analysing
/// borrow keeps it alive), so even a straggler runner still queued on the
/// pool after an analysis returns cannot pin the strong count — make_mut
/// copies only when the *caller* holds other clones of the design.
#[derive(Debug, Clone)]
pub struct Design {
    shared: Arc<DesignCore>,
    /// Cached per-net stage results backing the incremental
    /// [`Design::apply_eco`] path; invalidated by structural mutation.
    eco: Option<EcoState>,
}

/// The shareable heart of a [`Design`].
#[derive(Debug, Clone)]
struct DesignCore {
    library: CellLibrary,
    /// instance name → cell name.
    instances: BTreeMap<String, String>,
    nets: Vec<Net>,
}

/// Delay window of one sink of a net, produced by the per-net stage sweep.
#[derive(Debug, Clone)]
struct SinkDelay {
    load: Load,
    window: (Seconds, Seconds),
}

/// Cached stage results for the ECO loop: the per-net sink windows of the
/// last evaluation at `threshold`, so an edit only pays for the nets it
/// touches.
#[derive(Debug, Clone)]
struct EcoState {
    threshold: f64,
    delays: Vec<Vec<SinkDelay>>,
}

/// One net-level engineering change order: a named net plus a name-based
/// edit of its extracted interconnect.
///
/// Node references are by *name* rather than [`rctree_core::NodeId`]
/// because structural edits (prunes) renumber ids; names are the stable
/// handle across an edit script.
#[derive(Debug, Clone)]
pub struct EcoEdit {
    /// Name of the net whose interconnect is edited.
    pub net: String,
    /// The edit to apply.
    pub kind: EcoEditKind,
}

/// The name-based edit vocabulary of [`Design::apply_eco`], mirroring
/// [`TreeEdit`].
#[derive(Debug, Clone)]
pub enum EcoEditKind {
    /// Replace the lumped grounded capacitance at a node.
    SetCap {
        /// Node name within the net's interconnect.
        node: String,
        /// New total lumped capacitance.
        cap: Farads,
    },
    /// Replace the branch element feeding a node.
    SetBranch {
        /// Node name within the net's interconnect (not the net root).
        node: String,
        /// The new branch element.
        branch: Branch,
    },
    /// Graft a validated subtree under an existing node.
    Graft {
        /// Host node name the subtree is attached under.
        parent: String,
        /// The new branch connecting the host node to the subtree's input.
        via: Branch,
        /// The subtree to graft (boxed to keep the edit enum small).
        subtree: Box<RcTree>,
    },
    /// Remove a node, its feeding branch, and its whole subtree.
    Prune {
        /// Name of the subtree root to remove.
        node: String,
    },
}

impl Design {
    /// Creates an empty design over the given cell library.
    pub fn new(library: CellLibrary) -> Self {
        Design {
            shared: Arc::new(DesignCore {
                library,
                instances: BTreeMap::new(),
                nets: Vec::new(),
            }),
            eco: None,
        }
    }

    /// Adds an instance of a library cell.
    ///
    /// # Errors
    ///
    /// * [`StaError::UnknownCell`] if the cell is not in the library;
    /// * [`StaError::DuplicateInstance`] if the instance name is taken.
    pub fn add_instance(&mut self, name: impl Into<String>, cell: impl Into<String>) -> Result<()> {
        let name = name.into();
        let cell = cell.into();
        self.shared.library.cell(&cell)?;
        if self.shared.instances.contains_key(&name) {
            return Err(StaError::DuplicateInstance { name });
        }
        Arc::make_mut(&mut self.shared).instances.insert(name, cell);
        self.eco = None;
        Ok(())
    }

    /// Adds a net.
    ///
    /// # Errors
    ///
    /// * [`StaError::UnknownInstance`] if the driver or a sink instance does
    ///   not exist;
    /// * [`StaError::UnknownSinkNode`] if a sink references a node that is
    ///   not part of the net's interconnect tree.
    pub fn add_net(&mut self, net: Net) -> Result<()> {
        if let Driver::Instance(inst) = &net.driver {
            if !self.shared.instances.contains_key(inst) {
                return Err(StaError::UnknownInstance { name: inst.clone() });
            }
        }
        for sink in &net.sinks {
            if net.interconnect.node_by_name(&sink.node).is_err() {
                return Err(StaError::UnknownSinkNode {
                    net: net.name.clone(),
                    node: sink.node.clone(),
                });
            }
            if let Load::Instance(inst) = &sink.load {
                if !self.shared.instances.contains_key(inst) {
                    return Err(StaError::UnknownInstance { name: inst.clone() });
                }
            }
        }
        Arc::make_mut(&mut self.shared).nets.push(net);
        self.eco = None;
        Ok(())
    }

    /// Number of instances in the design.
    pub fn instance_count(&self) -> usize {
        self.shared.instances.len()
    }

    /// Number of nets in the design.
    pub fn net_count(&self) -> usize {
        self.shared.nets.len()
    }

    /// Runs the full arrival-time propagation and produces a report,
    /// sharding the per-net stage evaluation over
    /// [`rctree_par::default_jobs`] worker threads (`RCTREE_JOBS` overrides
    /// the hardware default).  See [`Design::analyze_with_jobs`].
    ///
    /// `threshold` is the switching threshold (fraction of the swing) used
    /// for every stage; `required_time` is the budget every endpoint must
    /// meet.
    ///
    /// # Errors
    ///
    /// * [`StaError::EmptyDesign`] if there is nothing to analyse;
    /// * [`StaError::CombinationalCycle`] if the instance graph has a cycle;
    /// * stage-level errors from the core crate.
    pub fn analyze(&self, threshold: f64, required_time: Seconds) -> Result<TimingReport> {
        self.analyze_with_jobs(threshold, required_time, rctree_par::default_jobs())
    }

    /// [`Design::analyze`] with an explicit worker count.
    ///
    /// Net/stage evaluation — all the numerical work — is embarrassingly
    /// parallel: every net is one independent `O(n)` batched sweep, sharded
    /// over the persistent [`rctree_par::global_pool`] (worker threads are
    /// started once per process and reused by every subsequent call).  The
    /// per-net results are written by net index and merged in net order, so
    /// the report is **bit-identical** to the serial evaluation
    /// (`jobs = 1`) for every worker count; on invalid designs the error
    /// surfaced is the first failing net in net order, equally independent
    /// of scheduling.  The subsequent arrival-time propagation is a cheap
    /// serial pass over precomputed windows.
    ///
    /// # Errors
    ///
    /// As for [`Design::analyze`].
    pub fn analyze_with_jobs(
        &self,
        threshold: f64,
        required_time: Seconds,
        jobs: usize,
    ) -> Result<TimingReport> {
        if self.shared.nets.is_empty() {
            return Err(StaError::EmptyDesign);
        }
        let net_sink_delays = self.stage_delays(threshold, jobs)?;
        self.propagate(threshold, required_time, &net_sink_delays)
    }

    /// Stage timing per net: the delay window of every sink.  Each call to
    /// `analyze_stage` batches the whole net — one `O(n)` sweep covers all
    /// of the net's fan-outs — so the full design evaluation is linear in
    /// total extracted-node count plus total sink count, divided across the
    /// global pool's workers.
    fn stage_delays(&self, threshold: f64, jobs: usize) -> Result<Vec<Vec<SinkDelay>>> {
        // The pool jobs hold the core through a Weak so that a queued
        // straggler runner (see `par_map_global`'s ownership note) can
        // never pin the strong count past this call and turn a later
        // `Arc::make_mut` commit into a deep clone of the whole design.
        // The upgrade always succeeds while this `&self` borrow is live.
        let core = Arc::new(Arc::downgrade(&self.shared));
        let n = self.shared.nets.len();
        rctree_par::par_map_global(jobs, core, n, move |i, weak: &Weak<DesignCore>| {
            let core = weak.upgrade().expect("design outlives its analysis");
            core.net_sink_delays(&core.nets[i], threshold)
        })
        .into_iter()
        .collect::<Result<_>>()
    }

    /// Applies a batch of net-level ECO edits and returns the refreshed
    /// timing report, re-evaluating **only the touched nets**.
    ///
    /// Uses [`rctree_par::default_jobs`] workers when many nets are dirty;
    /// see [`Design::apply_eco_with_jobs`].
    ///
    /// # Errors
    ///
    /// As for [`Design::apply_eco_with_jobs`].
    pub fn apply_eco(
        &mut self,
        edits: &[EcoEdit],
        threshold: f64,
        required_time: Seconds,
    ) -> Result<TimingReport> {
        self.apply_eco_with_jobs(edits, threshold, required_time, rctree_par::default_jobs())
    }

    /// [`Design::apply_eco`] with an explicit worker count.
    ///
    /// The first call (or a call after the threshold changes or the design
    /// is structurally modified) evaluates every net once and caches the
    /// per-net sink windows; subsequent calls map each edit onto its net's
    /// interconnect through the incremental
    /// [`EditableTree`] engine and re-run the stage sweep for the dirty
    /// nets only, sharded over the persistent global pool when the dirty
    /// set is large.  Untouched nets keep their cached windows, so the
    /// report delta is **schedule-independent**: for any `jobs` value the
    /// result equals a full [`Design::analyze_with_jobs`] of the edited
    /// design, bit for bit.
    ///
    /// An empty `edits` slice is a cache-warming full analysis.
    ///
    /// # Errors
    ///
    /// * [`StaError::UnknownNet`] if an edit names a net not in the design;
    /// * [`StaError::UnknownEcoNode`] if an edit references a node name
    ///   missing from its net's interconnect;
    /// * [`StaError::UnknownSinkNode`] if an edit prunes a node that a
    ///   sink of the net is attached to;
    /// * [`StaError::Core`] for edit-level validation failures (negative
    ///   values, grafted name collisions, pruning the net root);
    /// * plus every error of [`Design::analyze_with_jobs`].
    ///
    /// Edits are applied transactionally per call: validation **and** the
    /// stage re-analysis both run against pre-commit state, so on any error
    /// — including an edit batch that makes a net unanalysable — the design
    /// and its cache are left exactly as they were before the call.
    pub fn apply_eco_with_jobs(
        &mut self,
        edits: &[EcoEdit],
        threshold: f64,
        required_time: Seconds,
        jobs: usize,
    ) -> Result<TimingReport> {
        if self.shared.nets.is_empty() {
            return Err(StaError::EmptyDesign);
        }

        // Group the edits by net index, preserving intra-net order (one
        // name→index map instead of a linear scan per edit).
        let net_index: HashMap<&str, usize> = self
            .shared
            .nets
            .iter()
            .enumerate()
            .map(|(i, n)| (n.name.as_str(), i))
            .collect();
        let mut by_net: BTreeMap<usize, Vec<&EcoEdit>> = BTreeMap::new();
        for edit in edits {
            let idx = *net_index
                .get(edit.net.as_str())
                .ok_or_else(|| StaError::UnknownNet {
                    name: edit.net.clone(),
                })?;
            by_net.entry(idx).or_default().push(edit);
        }

        // Apply the edits to freshly wrapped interconnects; nothing touches
        // the design until the whole batch validates *and* re-times.
        let mut edited: Vec<(usize, RcTree)> = Vec::with_capacity(by_net.len());
        for (&idx, net_edits) in &by_net {
            let net = &self.shared.nets[idx];
            let mut eco_tree = EditableTree::new(net.interconnect.clone());
            for edit in net_edits {
                let tree_edit = resolve_edit(&edit.net, &edit.kind, eco_tree.tree())?;
                eco_tree.apply(&tree_edit).map_err(StaError::Core)?;
            }
            // Every sink must survive the edits (a prune may not remove a
            // node a gate is attached to).
            for sink in &net.sinks {
                if eco_tree.tree().node_by_name(&sink.node).is_err() {
                    return Err(StaError::UnknownSinkNode {
                        net: net.name.clone(),
                        node: sink.node.clone(),
                    });
                }
            }
            edited.push((idx, eco_tree.into_tree()));
        }

        // Re-time the dirty nets against their edited (still uncommitted)
        // interconnects, sharded over the global pool when the dirty set is
        // large enough to amortise the handoff.
        let eval_nets: Vec<Net> = edited
            .iter()
            .map(|(idx, tree)| {
                let net = &self.shared.nets[*idx];
                Net {
                    name: net.name.clone(),
                    driver: net.driver.clone(),
                    interconnect: tree.clone(),
                    sinks: net.sinks.clone(),
                }
            })
            .collect();
        let refreshed: Vec<Vec<SinkDelay>> = {
            // Weak for the same no-straggler-pinning reason as
            // `stage_delays`; the edited nets are cheap transient clones.
            let eval = Arc::new((Arc::downgrade(&self.shared), eval_nets));
            let n = eval.1.len();
            rctree_par::par_map_global(
                jobs,
                eval,
                n,
                move |k, eval: &(Weak<DesignCore>, Vec<Net>)| {
                    let core = eval.0.upgrade().expect("design outlives its analysis");
                    core.net_sink_delays(&eval.1[k], threshold)
                },
            )
            .into_iter()
            .collect::<Result<_>>()?
        };

        // Cached windows for the untouched nets; a cold cache (first call,
        // or threshold change) is warmed with one sweep that *skips* the
        // dirty nets — their fresh windows land right below, so no net is
        // evaluated twice.
        let mut state = match self.eco.take() {
            Some(state) if state.threshold == threshold => state,
            _ => {
                let mut dirty_mask = vec![false; self.shared.nets.len()];
                for (idx, _) in &edited {
                    dirty_mask[*idx] = true;
                }
                let core = Arc::new(Arc::downgrade(&self.shared));
                let n = self.shared.nets.len();
                let delays =
                    rctree_par::par_map_global(jobs, core, n, move |i, weak: &Weak<DesignCore>| {
                        if dirty_mask[i] {
                            Ok(Vec::new())
                        } else {
                            let core = weak.upgrade().expect("design outlives its analysis");
                            core.net_sink_delays(&core.nets[i], threshold)
                        }
                    })
                    .into_iter()
                    .collect::<Result<_>>();
                match delays {
                    Ok(delays) => EcoState { threshold, delays },
                    Err(e) => {
                        // Nothing was committed; the design is untouched.
                        return Err(e);
                    }
                }
            }
        };
        for ((idx, _), delays) in edited.iter().zip(refreshed) {
            state.delays[*idx] = delays;
        }

        // Propagation reads only connectivity and the windows above, never
        // the interconnect values, so running it pre-commit yields exactly
        // the post-commit report.
        let report = match self.propagate(threshold, required_time, &state.delays) {
            Ok(report) => report,
            Err(e) => {
                // The design is untouched, but `state` already carries the
                // edited nets' windows — discard it rather than cache
                // windows that no longer match the (rolled-back) trees.
                self.eco = None;
                return Err(e);
            }
        };

        // Everything validated and re-timed: commit.
        let core = Arc::make_mut(&mut self.shared);
        for (idx, tree) in edited {
            core.nets[idx].interconnect = tree;
        }
        self.eco = Some(state);
        Ok(report)
    }

    /// Serial arrival-time propagation over precomputed per-net sink
    /// windows: topological ordering, interval accumulation, critical-path
    /// extraction.  Shared by the one-shot and the ECO paths.
    fn propagate(
        &self,
        threshold: f64,
        required_time: Seconds,
        net_sink_delays: &[Vec<SinkDelay>],
    ) -> Result<TimingReport> {
        // Topological order of instances (Kahn's algorithm over the
        // instance-to-instance edges induced by nets).
        let mut in_degree: HashMap<&str, usize> = self
            .shared
            .instances
            .keys()
            .map(|k| (k.as_str(), 0))
            .collect();
        let mut successors: HashMap<&str, Vec<&str>> = HashMap::new();
        for net in &self.shared.nets {
            if let Driver::Instance(driver) = &net.driver {
                for sink in &net.sinks {
                    if let Load::Instance(load) = &sink.load {
                        successors.entry(driver.as_str()).or_default().push(load);
                        *in_degree.get_mut(load.as_str()).expect("validated") += 1;
                    }
                }
            }
        }
        let mut queue: Vec<&str> = in_degree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&k, _)| k)
            .collect();
        queue.sort_unstable();
        let mut topo_order: Vec<&str> = Vec::with_capacity(self.shared.instances.len());
        let mut queue_idx = 0;
        while queue_idx < queue.len() {
            let inst = queue[queue_idx];
            queue_idx += 1;
            topo_order.push(inst);
            if let Some(next) = successors.get(inst) {
                for &succ in next {
                    let d = in_degree.get_mut(succ).expect("validated");
                    *d -= 1;
                    if *d == 0 {
                        queue.push(succ);
                    }
                }
            }
        }
        if topo_order.len() != self.shared.instances.len() {
            return Err(StaError::CombinationalCycle);
        }
        let topo_rank: HashMap<&str, usize> = topo_order
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();

        // Arrival windows at instance inputs (worst over all inputs) and the
        // path leading there.
        let mut input_arrival: HashMap<&str, (ArrivalWindow, Vec<String>)> = HashMap::new();
        let mut endpoints: Vec<EndpointTiming> = Vec::new();

        // Process nets in driver topological order so that a driver's input
        // arrival is final before its output net is evaluated.
        let mut net_order: Vec<usize> = (0..self.shared.nets.len()).collect();
        net_order.sort_by_key(|&i| match &self.shared.nets[i].driver {
            Driver::PrimaryInput => 0,
            Driver::Instance(inst) => 1 + topo_rank[inst.as_str()],
        });

        for &net_idx in &net_order {
            let net = &self.shared.nets[net_idx];
            // Arrival at the driver's output pin.
            let (driver_arrival, driver_path) = match &net.driver {
                Driver::PrimaryInput => (ArrivalWindow::ZERO, Vec::new()),
                Driver::Instance(inst) => {
                    let cell = self.shared.library.cell(&self.shared.instances[inst])?;
                    let (input, mut path) = input_arrival
                        .get(inst.as_str())
                        .cloned()
                        .unwrap_or((ArrivalWindow::ZERO, Vec::new()));
                    path.push(inst.clone());
                    (
                        ArrivalWindow {
                            min: input.min + cell.intrinsic_delay,
                            max: input.max + cell.intrinsic_delay,
                        },
                        path,
                    )
                }
            };

            for delay in &net_sink_delays[net_idx] {
                let window = ArrivalWindow {
                    min: driver_arrival.min + delay.window.0,
                    max: driver_arrival.max + delay.window.1,
                };
                match &delay.load {
                    Load::Instance(inst) => {
                        let inst_key = self
                            .shared
                            .instances
                            .keys()
                            .find(|k| k.as_str() == inst.as_str())
                            .expect("validated")
                            .as_str();
                        let entry = input_arrival
                            .entry(inst_key)
                            .or_insert((ArrivalWindow::ZERO, Vec::new()));
                        if window.max > entry.0.max {
                            *entry = (window, driver_path.clone());
                        }
                    }
                    Load::PrimaryOutput(name) => {
                        endpoints.push(EndpointTiming {
                            name: name.clone(),
                            arrival: window,
                            critical_path: driver_path.clone(),
                        });
                    }
                }
            }
        }

        endpoints.sort_by(|a, b| b.arrival.max.value().total_cmp(&a.arrival.max.value()));
        Ok(TimingReport {
            threshold,
            required_time,
            endpoints,
        })
    }

    /// Builds a single-stage-per-net design from extracted parasitics: the
    /// shape of a deck fresh out of a parasitic extractor, before gate-level
    /// connectivity is known.
    ///
    /// Every `(name, tree)` pair becomes one instance of `driver_cell`
    /// driving `tree`, fed from a primary input through a short feeder wire;
    /// every output node of `tree` becomes a primary output named
    /// `"{name}/{node}"`.  This is the bridge from
    /// `rctree_netlist::parse_spef_deck` to a [`Design`] that
    /// [`Design::analyze`] can shard across workers.
    ///
    /// # Errors
    ///
    /// * [`StaError::UnknownCell`] if `driver_cell` is not in `library`;
    /// * [`StaError::DuplicateInstance`] if two nets share a name.
    pub fn from_extracted<I>(library: CellLibrary, driver_cell: &str, nets: I) -> Result<Design>
    where
        I: IntoIterator<Item = (String, RcTree)>,
    {
        let mut design = Design::new(library);
        // Validate the driver cell up front so an empty deck still reports
        // a bad cell name.
        design.shared.library.cell(driver_cell)?;
        for (name, tree) in nets {
            let inst = format!("{name}_drv");
            design.add_instance(&inst, driver_cell)?;

            // Feeder: a primary input reaching the driver through a token
            // 10 Ω / 1 fF wire, so every stage has a real arrival window.
            let mut feeder = rctree_core::builder::RcTreeBuilder::new();
            feeder
                .add_line(
                    feeder.input(),
                    "pin",
                    rctree_core::units::Ohms::new(10.0),
                    Farads::from_femto(1.0),
                )
                .expect("static feeder wire is valid");
            design.add_net(Net {
                name: format!("{name}_pi"),
                driver: Driver::PrimaryInput,
                interconnect: feeder.build().expect("static feeder wire is valid"),
                sinks: vec![Sink {
                    node: "pin".into(),
                    load: Load::Instance(inst.clone()),
                }],
            })?;

            let sinks = tree
                .outputs()
                .map(|id| {
                    let node = tree.name(id).expect("output node exists").to_string();
                    Sink {
                        load: Load::PrimaryOutput(format!("{name}/{node}")),
                        node,
                    }
                })
                .collect();
            design.add_net(Net {
                name,
                driver: Driver::Instance(inst),
                interconnect: tree,
                sinks,
            })?;
        }
        Ok(design)
    }
}

impl DesignCore {
    /// Delay windows of every sink of one net: the unit of work that
    /// [`Design::analyze_with_jobs`] shards across the global pool's
    /// workers (it lives on the `Arc`-shared core so the jobs can own
    /// their state).
    fn net_sink_delays(&self, net: &Net, threshold: f64) -> Result<Vec<SinkDelay>> {
        let driver_resistance = match &net.driver {
            Driver::PrimaryInput => rctree_core::units::Ohms::ZERO,
            Driver::Instance(inst) => {
                let cell_name = &self.instances[inst];
                self.library.cell(cell_name)?.drive_resistance
            }
        };
        let mut sink_loads = Vec::with_capacity(net.sinks.len());
        for sink in &net.sinks {
            let node = net.interconnect.node_by_name(&sink.node)?;
            let load_cap = match &sink.load {
                Load::Instance(inst) => {
                    let cell_name = &self.instances[inst];
                    self.library.cell(cell_name)?.input_capacitance
                }
                Load::PrimaryOutput(_) => Farads::ZERO,
            };
            sink_loads.push((node, load_cap));
        }
        let stage = analyze_stage(driver_resistance, &net.interconnect, &sink_loads, threshold)?;
        Ok(net
            .sinks
            .iter()
            .zip(stage.sinks.iter())
            .map(|(sink, timing)| SinkDelay {
                load: sink.load.clone(),
                window: (timing.bounds.lower, timing.bounds.upper),
            })
            .collect())
    }
}

/// Resolves a name-based [`EcoEditKind`] against the current state of a
/// net's interconnect into an id-based [`TreeEdit`].
fn resolve_edit(net: &str, kind: &EcoEditKind, tree: &RcTree) -> Result<TreeEdit> {
    let lookup = |node: &str| {
        tree.node_by_name(node)
            .map_err(|_| StaError::UnknownEcoNode {
                net: net.to_string(),
                node: node.to_string(),
            })
    };
    Ok(match kind {
        EcoEditKind::SetCap { node, cap } => TreeEdit::SetCap {
            node: lookup(node)?,
            cap: *cap,
        },
        EcoEditKind::SetBranch { node, branch } => TreeEdit::SetBranch {
            node: lookup(node)?,
            branch: *branch,
        },
        EcoEditKind::Graft {
            parent,
            via,
            subtree,
        } => TreeEdit::GraftSubtree {
            parent: lookup(parent)?,
            via: *via,
            subtree: subtree.clone(),
        },
        EcoEditKind::Prune { node } => TreeEdit::PruneSubtree {
            node: lookup(node)?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_core::builder::RcTreeBuilder;
    use rctree_core::units::Ohms;

    /// A point-to-point wire: input -> one line -> one sink node "load".
    fn wire(r: f64, c_ff: f64) -> RcTree {
        let mut b = RcTreeBuilder::new();
        let n = b
            .add_line(b.input(), "load", Ohms::new(r), Farads::from_femto(c_ff))
            .unwrap();
        let _ = n;
        b.build().unwrap()
    }

    /// Two-stage buffer chain: PI -> wire -> u1 -> wire -> u2 -> wire -> PO.
    fn buffer_chain() -> Design {
        let mut d = Design::new(CellLibrary::nmos_1981());
        d.add_instance("u1", "inv_1x").unwrap();
        d.add_instance("u2", "inv_4x").unwrap();
        d.add_net(Net {
            name: "n_in".into(),
            driver: Driver::PrimaryInput,
            interconnect: wire(50.0, 5.0),
            sinks: vec![Sink {
                node: "load".into(),
                load: Load::Instance("u1".into()),
            }],
        })
        .unwrap();
        d.add_net(Net {
            name: "n_mid".into(),
            driver: Driver::Instance("u1".into()),
            interconnect: wire(200.0, 20.0),
            sinks: vec![Sink {
                node: "load".into(),
                load: Load::Instance("u2".into()),
            }],
        })
        .unwrap();
        d.add_net(Net {
            name: "n_out".into(),
            driver: Driver::Instance("u2".into()),
            interconnect: wire(400.0, 40.0),
            sinks: vec![Sink {
                node: "load".into(),
                load: Load::PrimaryOutput("out".into()),
            }],
        })
        .unwrap();
        d
    }

    #[test]
    fn buffer_chain_report_is_consistent() {
        let d = buffer_chain();
        assert_eq!(d.instance_count(), 2);
        assert_eq!(d.net_count(), 3);
        let report = d.analyze(0.5, Seconds::from_nano(50.0)).unwrap();
        assert_eq!(report.endpoints.len(), 1);
        let e = &report.endpoints[0];
        assert_eq!(e.name, "out");
        assert!(e.arrival.min <= e.arrival.max);
        // Both gate intrinsic delays must be included.
        assert!(e.arrival.min >= Seconds::from_nano(1.8));
        assert_eq!(e.critical_path, vec!["u1".to_string(), "u2".to_string()]);
        let text = report.to_string();
        assert!(text.contains("out"));
        assert!(text.contains("certification"));
    }

    #[test]
    fn certification_follows_required_time() {
        let d = buffer_chain();
        let generous = d.analyze(0.5, Seconds::from_nano(1000.0)).unwrap();
        assert_eq!(generous.certification(), Certification::Pass);
        assert!(generous.worst_slack().value() > 0.0);

        let impossible = d.analyze(0.5, Seconds::from_pico(1.0)).unwrap();
        assert_eq!(impossible.certification(), Certification::Fail);
        assert!(impossible.worst_slack().value() < 0.0);

        // A budget between the endpoint's min and max arrival cannot be
        // decided by bounds alone.
        let report = d.analyze(0.5, Seconds::from_nano(1000.0)).unwrap();
        let e = report.critical_endpoint().unwrap();
        let mid = Seconds::new((e.arrival.min.value() + e.arrival.max.value()) / 2.0);
        let undecided = d.analyze(0.5, mid).unwrap();
        assert_eq!(undecided.certification(), Certification::Indeterminate);
    }

    #[test]
    fn fanout_reports_every_endpoint() {
        let mut d = Design::new(CellLibrary::nmos_1981());
        d.add_instance("drv", "superbuffer").unwrap();
        d.add_net(Net {
            name: "n_in".into(),
            driver: Driver::PrimaryInput,
            interconnect: wire(10.0, 1.0),
            sinks: vec![Sink {
                node: "load".into(),
                load: Load::Instance("drv".into()),
            }],
        })
        .unwrap();
        // Fan-out net with two sinks at different depths.
        let mut b = RcTreeBuilder::new();
        let stem = b
            .add_line(
                b.input(),
                "stem",
                Ohms::new(100.0),
                Farads::from_femto(10.0),
            )
            .unwrap();
        b.add_line(stem, "near", Ohms::new(10.0), Farads::from_femto(1.0))
            .unwrap();
        b.add_line(stem, "far", Ohms::new(500.0), Farads::from_femto(50.0))
            .unwrap();
        let fanout = b.build().unwrap();
        d.add_net(Net {
            name: "n_fan".into(),
            driver: Driver::Instance("drv".into()),
            interconnect: fanout,
            sinks: vec![
                Sink {
                    node: "near".into(),
                    load: Load::PrimaryOutput("po_near".into()),
                },
                Sink {
                    node: "far".into(),
                    load: Load::PrimaryOutput("po_far".into()),
                },
            ],
        })
        .unwrap();
        let report = d.analyze(0.5, Seconds::from_nano(100.0)).unwrap();
        assert_eq!(report.endpoints.len(), 2);
        assert_eq!(report.critical_endpoint().unwrap().name, "po_far");
    }

    #[test]
    fn validation_errors() {
        let mut d = Design::new(CellLibrary::nmos_1981());
        assert!(matches!(
            d.add_instance("u1", "not_a_cell"),
            Err(StaError::UnknownCell { .. })
        ));
        d.add_instance("u1", "inv_1x").unwrap();
        assert!(matches!(
            d.add_instance("u1", "inv_1x"),
            Err(StaError::DuplicateInstance { .. })
        ));
        assert!(matches!(
            d.add_net(Net {
                name: "n".into(),
                driver: Driver::Instance("ghost".into()),
                interconnect: wire(1.0, 1.0),
                sinks: vec![],
            }),
            Err(StaError::UnknownInstance { .. })
        ));
        assert!(matches!(
            d.add_net(Net {
                name: "n".into(),
                driver: Driver::PrimaryInput,
                interconnect: wire(1.0, 1.0),
                sinks: vec![Sink {
                    node: "nope".into(),
                    load: Load::Instance("u1".into())
                }],
            }),
            Err(StaError::UnknownSinkNode { .. })
        ));
        assert!(matches!(
            d.add_net(Net {
                name: "n".into(),
                driver: Driver::PrimaryInput,
                interconnect: wire(1.0, 1.0),
                sinks: vec![Sink {
                    node: "load".into(),
                    load: Load::Instance("ghost".into())
                }],
            }),
            Err(StaError::UnknownInstance { .. })
        ));
        assert!(matches!(
            d.analyze(0.5, Seconds::from_nano(1.0)),
            Err(StaError::EmptyDesign)
        ));
    }

    #[test]
    fn empty_report_semantics_are_pinned() {
        // A report with no endpoints is a legitimate outcome (nets that feed
        // only instance inputs), not a panic or an error: the critical
        // endpoint is absent, the whole budget is slack, and certification
        // passes vacuously.
        let empty = TimingReport {
            threshold: 0.5,
            required_time: Seconds::from_nano(10.0),
            endpoints: Vec::new(),
        };
        assert!(empty.critical_endpoint().is_none());
        assert_eq!(empty.worst_slack(), Seconds::from_nano(10.0));
        assert_eq!(empty.certification(), Certification::Pass);
        assert!(empty.to_string().contains("worst slack"));
    }

    #[test]
    fn design_without_primary_outputs_yields_an_empty_report() {
        let mut d = Design::new(CellLibrary::nmos_1981());
        d.add_instance("u1", "inv_1x").unwrap();
        d.add_net(Net {
            name: "n_in".into(),
            driver: Driver::PrimaryInput,
            interconnect: wire(50.0, 5.0),
            sinks: vec![Sink {
                node: "load".into(),
                load: Load::Instance("u1".into()),
            }],
        })
        .unwrap();
        let report = d.analyze(0.5, Seconds::from_nano(7.0)).unwrap();
        assert!(report.endpoints.is_empty());
        assert!(report.critical_endpoint().is_none());
        assert_eq!(report.worst_slack(), Seconds::from_nano(7.0));
        assert_eq!(report.certification(), Certification::Pass);
    }

    #[test]
    fn analysis_is_bit_identical_for_any_worker_count() {
        let d = buffer_chain();
        let serial = d
            .analyze_with_jobs(0.5, Seconds::from_nano(50.0), 1)
            .unwrap();
        for jobs in [2, 7, rctree_par::available_parallelism()] {
            let parallel = d
                .analyze_with_jobs(0.5, Seconds::from_nano(50.0), jobs)
                .unwrap();
            assert_eq!(parallel, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn from_extracted_builds_an_analyzable_deck_design() {
        // Like `wire`, but with the far node marked as an output the way an
        // extractor marks load pins.
        let tapped_wire = |r: f64| {
            let mut b = RcTreeBuilder::new();
            let n = b
                .add_line(b.input(), "load", Ohms::new(r), Farads::from_femto(10.0))
                .unwrap();
            b.mark_output(n).unwrap();
            b.build().unwrap()
        };
        let nets: Vec<(String, RcTree)> = (0..5)
            .map(|i| (format!("net{i}"), tapped_wire(100.0 * (i + 1) as f64)))
            .collect();
        let d = Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", nets).unwrap();
        assert_eq!(d.instance_count(), 5);
        assert_eq!(d.net_count(), 10); // feeder + payload per extracted net
        let report = d.analyze(0.5, Seconds::from_nano(100.0)).unwrap();
        assert_eq!(report.endpoints.len(), 5);
        assert!(report.endpoints.iter().any(|e| e.name == "net4/load"));
        // The longest wire is the critical endpoint.
        assert_eq!(report.critical_endpoint().unwrap().name, "net4/load");

        // Duplicate net names collide on the instance name.
        let dup = vec![
            ("x".to_string(), wire(1.0, 1.0)),
            ("x".to_string(), wire(2.0, 1.0)),
        ];
        assert!(matches!(
            Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", dup),
            Err(StaError::DuplicateInstance { .. })
        ));
        // Unknown driver cells are rejected up front.
        assert!(matches!(
            Design::from_extracted(CellLibrary::nmos_1981(), "nand_999x", Vec::new()),
            Err(StaError::UnknownCell { .. })
        ));
    }

    #[test]
    fn combinational_cycle_is_detected() {
        let mut d = Design::new(CellLibrary::nmos_1981());
        d.add_instance("a", "inv_1x").unwrap();
        d.add_instance("b", "inv_1x").unwrap();
        for (driver, load, name) in [("a", "b", "n1"), ("b", "a", "n2")] {
            d.add_net(Net {
                name: name.into(),
                driver: Driver::Instance(driver.into()),
                interconnect: wire(1.0, 1.0),
                sinks: vec![Sink {
                    node: "load".into(),
                    load: Load::Instance(load.into()),
                }],
            })
            .unwrap();
        }
        assert!(matches!(
            d.analyze(0.5, Seconds::from_nano(1.0)),
            Err(StaError::CombinationalCycle)
        ));
    }

    #[test]
    fn apply_eco_matches_full_reanalysis() {
        let mut d = buffer_chain();
        let threshold = 0.5;
        let budget = Seconds::from_nano(50.0);
        let baseline = d.analyze(threshold, budget).unwrap();
        // A cache-warming empty batch reproduces the full analysis exactly.
        let warmed = d.apply_eco(&[], threshold, budget).unwrap();
        assert_eq!(warmed, baseline);

        // Fatten the load on the output net; the incremental report must be
        // bit-identical to a from-scratch analysis of the edited design.
        let report = d
            .apply_eco(
                &[EcoEdit {
                    net: "n_out".into(),
                    kind: EcoEditKind::SetCap {
                        node: "load".into(),
                        cap: Farads::from_femto(500.0),
                    },
                }],
                threshold,
                budget,
            )
            .unwrap();
        assert!(report.endpoints[0].arrival.max > baseline.endpoints[0].arrival.max);
        assert_eq!(report, d.analyze(threshold, budget).unwrap());

        // Structural edits: graft an extra stub, then prune it again.
        let mut gb = rctree_core::builder::RcTreeBuilder::with_input_name("stub");
        gb.add_capacitance(gb.input(), Farads::from_femto(40.0))
            .unwrap();
        let graft = EcoEdit {
            net: "n_out".into(),
            kind: EcoEditKind::Graft {
                parent: "load".into(),
                via: Branch::resistor(rctree_core::units::Ohms::new(50.0)),
                subtree: Box::new(gb.build().unwrap()),
            },
        };
        let grafted = d.apply_eco(&[graft], threshold, budget).unwrap();
        assert_eq!(grafted, d.analyze(threshold, budget).unwrap());
        let pruned = d
            .apply_eco(
                &[EcoEdit {
                    net: "n_out".into(),
                    kind: EcoEditKind::Prune {
                        node: "stub".into(),
                    },
                }],
                threshold,
                budget,
            )
            .unwrap();
        assert_eq!(pruned, d.analyze(threshold, budget).unwrap());
    }

    #[test]
    fn apply_eco_is_schedule_independent() {
        let budget = Seconds::from_nano(50.0);
        let edit = |ff: f64| {
            vec![EcoEdit {
                net: "n_mid".into(),
                kind: EcoEditKind::SetCap {
                    node: "load".into(),
                    cap: Farads::from_femto(ff),
                },
            }]
        };
        let mut serial = buffer_chain();
        let mut serial_reports = Vec::new();
        for step in 1..5 {
            serial_reports.push(
                serial
                    .apply_eco_with_jobs(&edit(step as f64 * 30.0), 0.5, budget, 1)
                    .unwrap(),
            );
        }
        for jobs in [2, 7, rctree_par::available_parallelism()] {
            let mut d = buffer_chain();
            for (step, want) in serial_reports.iter().enumerate() {
                let got = d
                    .apply_eco_with_jobs(&edit((step + 1) as f64 * 30.0), 0.5, budget, jobs)
                    .unwrap();
                assert_eq!(&got, want, "jobs = {jobs}, step {step}");
            }
        }
    }

    #[test]
    fn apply_eco_rejects_unknown_references_transactionally() {
        let mut d = buffer_chain();
        let budget = Seconds::from_nano(50.0);
        let before = d.analyze(0.5, budget).unwrap();
        assert!(matches!(
            d.apply_eco(
                &[EcoEdit {
                    net: "no_such_net".into(),
                    kind: EcoEditKind::Prune { node: "x".into() },
                }],
                0.5,
                budget,
            ),
            Err(StaError::UnknownNet { .. })
        ));
        assert!(matches!(
            d.apply_eco(
                &[EcoEdit {
                    net: "n_out".into(),
                    kind: EcoEditKind::SetCap {
                        node: "ghost".into(),
                        cap: Farads::from_femto(1.0),
                    },
                }],
                0.5,
                budget,
            ),
            Err(StaError::UnknownEcoNode { .. })
        ));
        // Pruning the node a sink hangs on is refused.
        assert!(matches!(
            d.apply_eco(
                &[EcoEdit {
                    net: "n_out".into(),
                    kind: EcoEditKind::Prune {
                        node: "load".into(),
                    },
                }],
                0.5,
                budget,
            ),
            Err(StaError::UnknownSinkNode { .. })
        ));
        // Nothing was committed.
        assert_eq!(d.analyze(0.5, budget).unwrap(), before);
    }

    #[test]
    fn apply_eco_rolls_back_edits_that_break_analysis() {
        // An edit batch can be valid at the tree level yet make a net
        // unanalysable: replacing the output wire (a distributed line, the
        // net's only capacitance) with a plain resistor leaves a
        // capacitance-free net whose sink is a zero-load primary output.
        // The failure surfaces during re-timing, *after* validation — the
        // batch must still roll back completely.
        let mut d = buffer_chain();
        let budget = Seconds::from_nano(50.0);
        let before = d.apply_eco(&[], 0.5, budget).unwrap();
        let err = d
            .apply_eco(
                &[EcoEdit {
                    net: "n_out".into(),
                    kind: EcoEditKind::SetBranch {
                        node: "load".into(),
                        branch: Branch::resistor(rctree_core::units::Ohms::new(400.0)),
                    },
                }],
                0.5,
                budget,
            )
            .unwrap_err();
        assert!(matches!(err, StaError::Core(_)), "{err:?}");
        // The design still analyses and matches the pre-edit report, both
        // through the cache and from scratch.
        assert_eq!(d.apply_eco(&[], 0.5, budget).unwrap(), before);
        assert_eq!(d.analyze(0.5, budget).unwrap(), before);
    }

    #[test]
    fn deeper_paths_arrive_later() {
        let d = buffer_chain();
        let report = d.analyze(0.5, Seconds::from_nano(100.0)).unwrap();
        let out = &report.endpoints[0];
        // The endpoint must arrive later than the sum of intrinsic delays
        // alone (wire delay is nonzero) and the window must be ordered.
        let intrinsic_sum = Seconds::from_nano(1.0) + Seconds::from_nano(0.8);
        assert!(out.arrival.max > intrinsic_sum);
        assert!(out.arrival.min >= intrinsic_sum);
    }
}
