//! Equivalence gates for the delay-algebra refactor and the symbolic
//! polynomial lane.
//!
//! Two contracts are pinned here, across every workloads generator:
//!
//! 1. **`f64` bit-identity** — the generic-kernel scalar path produces the
//!    exact bits of the independent per-net resolution path
//!    (`analyze_rebuild_with_jobs`), for every worker count and under
//!    seeded ECO streams.  `assert_eq!`, not tolerances.
//! 2. **Symbolic exactness** — evaluating the `Poly2` lane at any uniform
//!    `(r_scale, c_scale)` agrees with the materialized-corner analysis at
//!    that scale (delay scale 1, no per-net overrides) to 1e-9 relative,
//!    and `certify_over` finds the same continuum worst case a dense
//!    1e3-point sampling oracle finds.

use std::fmt::Write as _;

use rctree_core::corner::CornerSet;
use rctree_core::units::{Farads, Ohms, Seconds};
use rctree_sta::{CellLibrary, Design, EcoEdit, EcoEditKind, SymbolicAnalysis, TimingReport};
use rctree_workloads::dag::{eco_dag, EcoDagParams};
use rctree_workloads::deck::SpefDeckParams;
use rctree_workloads::fig3::{figure3_tree, Figure3Values};
use rctree_workloads::fig7::figure7_tree;
use rctree_workloads::htree::{h_tree, HTreeParams};
use rctree_workloads::interval_spec;
use rctree_workloads::ladder::{distributed_line, rc_ladder, repeated_chain};
use rctree_workloads::mos_net::representative_mos_fanout;
use rctree_workloads::pla::PlaLine;
use rctree_workloads::random::RandomTreeConfig;
use rctree_workloads::rng::Rng;

const THRESHOLD: f64 = 0.5;

/// Worker counts exercised by every gate (serial, even split, odd prime).
const JOBS: [usize; 3] = [1, 2, 7];

/// Relative tolerance of the symbolic-vs-materialized comparisons: the two
/// paths accumulate the same terms in different association orders.
const REL: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1e-30);
    (a - b).abs() <= REL * scale
}

/// One deck per workloads generator family, each with a budget on its own
/// time scale (the paper trees run in normalized seconds, the NMOS decks
/// in real nanoseconds).
fn generator_designs() -> Vec<(&'static str, Design, Seconds)> {
    let mut out = Vec::new();

    let dag = eco_dag(&EcoDagParams::default(), 0xA11CE);
    let budget = dag.budget();
    out.push(("eco_dag_default", dag.design, budget));

    let wide = EcoDagParams {
        chains: 6,
        depth: 3,
        cross_probability: 0.5,
        wire_nodes: 2,
        po_stride: 2,
    };
    let dag = eco_dag(&wide, 0xBEEF);
    let budget = dag.budget();
    out.push(("eco_dag_wide", dag.design, budget));

    let deck = SpefDeckParams {
        nets: 12,
        ..SpefDeckParams::default()
    };
    out.push((
        "spef_deck",
        Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", deck.trees(0xC0))
            .expect("deck builds"),
        Seconds::from_nano(500.0),
    ));

    // Every single-tree generator, one net each, in one extracted deck.
    let trees = vec![
        ("fig3".to_string(), figure3_tree(Figure3Values::default()).0),
        ("fig7".to_string(), figure7_tree().0),
        ("htree".to_string(), h_tree(HTreeParams::default()).0),
        (
            "ladder".to_string(),
            rc_ladder(Ohms::new(1000.0), Farads::new(1e-12), 8).0,
        ),
        (
            "line".to_string(),
            distributed_line(Ohms::new(400.0), Farads::new(0.5e-12)).0,
        ),
        (
            "chain".to_string(),
            repeated_chain(Ohms::new(200.0), Farads::from_femto(20.0), 6),
        ),
        (
            "random".to_string(),
            RandomTreeConfig::default().generate(0x5EED),
        ),
        ("mos".to_string(), representative_mos_fanout().0),
        ("pla".to_string(), PlaLine::new(8).tree().0),
    ];
    out.push((
        "paper_trees",
        Design::from_extracted(CellLibrary::nmos_1981(), "inv_1x", trees).expect("trees build"),
        Seconds::new(1e4),
    ));

    out
}

/// Per-endpoint comparison of a symbolic evaluation against a scalar
/// report, by name: same endpoint set, windows within `REL`.
fn assert_reports_close(name: &str, got: &TimingReport, want: &TimingReport) {
    assert_eq!(
        got.endpoints.len(),
        want.endpoints.len(),
        "{name}: endpoint count"
    );
    for e in &want.endpoints {
        let g = got
            .endpoints
            .iter()
            .find(|g| g.name == e.name)
            .unwrap_or_else(|| panic!("{name}: endpoint {} missing", e.name));
        assert!(
            close(g.arrival.max.value(), e.arrival.max.value()),
            "{name}/{}: max {:e} vs {:e}",
            e.name,
            g.arrival.max.value(),
            e.arrival.max.value()
        );
        assert!(
            close(g.arrival.min.value(), e.arrival.min.value()),
            "{name}/{}: min {:e} vs {:e}",
            e.name,
            g.arrival.min.value(),
            e.arrival.min.value()
        );
    }
    assert!(
        close(got.worst_slack().value(), want.worst_slack().value()),
        "{name}: worst slack {:e} vs {:e}",
        got.worst_slack().value(),
        want.worst_slack().value()
    );
}

/// A corner-set spec of uniform `(r, c)` scale points with delay scale 1
/// and no overrides — the materialized oracle of the symbolic lane.
fn uniform_corner_spec(points: &[(f64, f64)]) -> CornerSet {
    let mut spec = String::new();
    for (k, (r, c)) in points.iter().enumerate() {
        writeln!(spec, "p{k}={r:?},{c:?},1.0").unwrap();
    }
    CornerSet::parse(&spec).expect("generated spec parses")
}

/// Gate 1: the refactored scalar kernel is bit-identical across worker
/// counts and to the independent rebuild path, on every generator.
#[test]
fn scalar_reports_are_bit_identical_across_jobs_and_paths() {
    for (name, design, budget) in generator_designs() {
        let reference = design.analyze_with_jobs(THRESHOLD, budget, 1).unwrap();
        for jobs in JOBS {
            let report = design.analyze_with_jobs(THRESHOLD, budget, jobs).unwrap();
            assert_eq!(report, reference, "{name}: jobs {jobs}");
            let rebuilt = design
                .analyze_rebuild_with_jobs(THRESHOLD, budget, jobs)
                .unwrap();
            assert_eq!(rebuilt, reference, "{name}: rebuild, jobs {jobs}");
        }
    }
}

/// Gate 1b: bit-identity holds through seeded ECO streams — the warm
/// incremental path and a cold analysis of the edited design agree
/// exactly, for every worker count.
#[test]
fn scalar_bit_identity_survives_seeded_eco_streams() {
    for jobs in JOBS {
        let dag = eco_dag(&EcoDagParams::default(), 0xEC0);
        let budget = dag.budget();
        let mut design = dag.design;
        let mut rng = Rng::from_seed(0x57EAD ^ jobs as u64);
        for _round in 0..6 {
            let edits: Vec<EcoEdit> = (0..4)
                .map(|_| {
                    let net = &dag.nets[rng.index(dag.nets.len())];
                    EcoEdit {
                        net: net.name.clone(),
                        kind: EcoEditKind::SetCap {
                            node: net.nodes[rng.index(net.nodes.len())].clone(),
                            cap: Farads::from_femto(rng.range_f64(1.0, 40.0)),
                        },
                    }
                })
                .collect();
            let warm = design
                .apply_eco_with_jobs(&edits, THRESHOLD, budget, jobs)
                .unwrap();
            let cold = design.analyze_with_jobs(THRESHOLD, budget, jobs).unwrap();
            assert_eq!(warm, cold, "jobs {jobs}");
        }
    }
}

/// Gate 2: the symbolic lane is worker-count independent (bitwise) and
/// agrees with the nominal scalar report at `(1, 1)` to `REL`.
#[test]
fn symbolic_lane_is_jobs_independent_and_matches_nominal() {
    for (name, design, budget) in generator_designs() {
        let reference = design.analyze_symbolic(THRESHOLD, budget, 1).unwrap();
        let nominal = design.analyze_with_jobs(THRESHOLD, budget, 1).unwrap();
        for jobs in JOBS {
            let sym = design.analyze_symbolic(THRESHOLD, budget, jobs).unwrap();
            assert_eq!(
                sym.report_at(1.0, 1.0),
                reference.report_at(1.0, 1.0),
                "{name}: jobs {jobs}"
            );
            assert_eq!(
                sym.report_at(1.3, 0.8),
                reference.report_at(1.3, 0.8),
                "{name}: jobs {jobs} at (1.3, 0.8)"
            );
        }
        assert_reports_close(name, &reference.report_at(1.0, 1.0), &nominal);
        // The nominal evaluation also reproduces the critical paths.
        let at_nominal = reference.report_at(1.0, 1.0);
        for e in &nominal.endpoints {
            let g = at_nominal
                .endpoints
                .iter()
                .find(|g| g.name == e.name)
                .unwrap();
            assert_eq!(g.critical_path, e.critical_path, "{name}/{}", e.name);
        }
    }
}

/// Gate 2b: evaluating the symbolic lane at any uniform scale point agrees
/// with the **materialized-corner** analysis at that scale to `REL`, on
/// every generator.
#[test]
fn symbolic_evaluation_matches_materialized_corners() {
    let points = [(0.8, 0.9), (1.25, 1.1), (1.4, 1.2), (0.6, 1.3), (1.0, 1.0)];
    for (name, mut design, budget) in generator_designs() {
        let sym = design.analyze_symbolic(THRESHOLD, budget, 2).unwrap();
        design.set_corners(uniform_corner_spec(&points));
        for (k, &(r, c)) in points.iter().enumerate() {
            let oracle = design
                .materialize_corner(k + 1)
                .unwrap()
                .analyze_with_jobs(THRESHOLD, budget, 2)
                .unwrap();
            assert_reports_close(
                &format!("{name} at ({r}, {c})"),
                &sym.report_at(r, c),
                &oracle,
            );
        }
    }
}

/// Gate 2c: symbolic-vs-materialized agreement holds through seeded ECO
/// streams — after every batch the re-derived polynomials track the edited
/// design exactly.
#[test]
fn symbolic_evaluation_tracks_seeded_eco_streams() {
    let points = [(0.85, 1.15), (1.3, 0.75)];
    let dag = eco_dag(&EcoDagParams::default(), 0xD1CE);
    let budget = dag.budget();
    let mut design = dag.design;
    design.set_corners(uniform_corner_spec(&points));
    let mut rng = Rng::from_seed(0xEC0_57EA);
    for round in 0..4 {
        let edits: Vec<EcoEdit> = (0..5)
            .map(|_| {
                let net = &dag.nets[rng.index(dag.nets.len())];
                EcoEdit {
                    net: net.name.clone(),
                    kind: EcoEditKind::SetCap {
                        node: net.nodes[rng.index(net.nodes.len())].clone(),
                        cap: Farads::from_femto(rng.range_f64(1.0, 40.0)),
                    },
                }
            })
            .collect();
        let warm = design
            .apply_eco_with_jobs(&edits, THRESHOLD, budget, 2)
            .unwrap();
        let sym = design.analyze_symbolic(THRESHOLD, budget, 2).unwrap();
        assert_reports_close(
            &format!("round {round} nominal"),
            &sym.report_at(1.0, 1.0),
            &warm,
        );
        for (k, &(r, c)) in points.iter().enumerate() {
            let oracle = design
                .materialize_corner(k + 1)
                .unwrap()
                .analyze_with_jobs(THRESHOLD, budget, 2)
                .unwrap();
            assert_reports_close(
                &format!("round {round} at ({r}, {c})"),
                &sym.report_at(r, c),
                &oracle,
            );
        }
    }
}

/// Gate 3: `certify_over` against a dense-sampling oracle — a ≥1e3-point
/// grid over the box, each point materialized and analysed through the
/// corner lanes.  The continuum worst case must dominate every sample and
/// agree with the grid's worst (the box corners are grid points, and each
/// candidate maximum lies on the box boundary) in location value and
/// slack to `REL`, on every generator.
#[test]
fn certify_over_matches_dense_sampling_oracle() {
    const STEPS: usize = 33; // 33 × 33 = 1089 sample points
    for (seed, (name, mut design, budget)) in generator_designs().into_iter().enumerate() {
        let spec = interval_spec(seed as u64);
        let sym = design.analyze_symbolic(THRESHOLD, budget, 2).unwrap();
        let cert = sym.certify_over(budget, spec.r, spec.c);

        let axis = |(lo, hi): (f64, f64), i: usize| {
            if i + 1 == STEPS {
                hi
            } else {
                lo + (hi - lo) * i as f64 / (STEPS - 1) as f64
            }
        };
        let mut grid = Vec::with_capacity(STEPS * STEPS);
        for i in 0..STEPS {
            for j in 0..STEPS {
                grid.push((axis(spec.r, i), axis(spec.c, j)));
            }
        }
        design.set_corners(uniform_corner_spec(&grid));
        let lanes = design.analyze_corners(THRESHOLD, budget, 4).unwrap();

        let mut grid_worst = f64::NEG_INFINITY;
        for (k, &(r, c)) in grid.iter().enumerate() {
            let report = lanes.report(k + 1).unwrap();
            let arrival = report
                .critical_endpoint()
                .map_or(0.0, |e| e.arrival.max.value());
            assert!(
                arrival <= cert.worst_arrival.value() * (1.0 + REL) + 1e-30,
                "{name}: sample ({r}, {c}) arrival {arrival:e} exceeds certified \
                 worst {:e}",
                cert.worst_arrival.value()
            );
            grid_worst = grid_worst.max(arrival);
        }
        assert!(
            close(grid_worst, cert.worst_arrival.value()),
            "{name}: grid worst {grid_worst:e} vs certified {:e}",
            cert.worst_arrival.value()
        );
        assert!(
            close(
                cert.worst_slack.value(),
                budget.value() - cert.worst_arrival.value()
            ),
            "{name}: slack consistency"
        );
        let (r, c) = cert.at;
        assert!(
            spec.r.0 <= r && r <= spec.r.1 && spec.c.0 <= c && c <= spec.c.1,
            "{name}: worst point ({r}, {c}) outside the box"
        );
        // The verdict is the certification of the evaluated report at the
        // worst point.
        assert_eq!(
            cert.verdict,
            sym.report_at(r, c).certification_against(budget),
            "{name}: verdict"
        );
    }
}

/// Gate 4: the snapshot-level lazy symbolic analysis — built from the
/// published net views, cached per revision, refreshed by ECO publishes.
#[test]
fn snapshot_symbolic_is_cached_and_tracks_eco_publishes() {
    let dag = eco_dag(&EcoDagParams::default(), 0xFACE);
    let budget = dag.budget();
    let mut design = dag.design;
    let snap1 = design.publish(THRESHOLD, budget, 2).unwrap();
    let sym1 = snap1.symbolic().unwrap();
    assert_reports_close(
        "snapshot nominal",
        &sym1.report_at(1.0, 1.0),
        snap1.report(),
    );
    // Cached: the second call returns the same analysis.
    assert!(std::sync::Arc::ptr_eq(&sym1, &snap1.symbolic().unwrap()));

    let edits = vec![EcoEdit {
        net: dag.nets[0].name.clone(),
        kind: EcoEditKind::SetCap {
            node: dag.nets[0].nodes[0].clone(),
            cap: Farads::from_femto(250.0),
        },
    }];
    let snap2 = design
        .publish_after_eco(&edits, THRESHOLD, budget, 2, &snap1)
        .unwrap();
    let sym2 = snap2.symbolic().unwrap();
    assert_reports_close(
        "snapshot after eco",
        &sym2.report_at(1.0, 1.0),
        snap2.report(),
    );
    // The successor's symbolic lane is exactly the design-level analysis
    // of the edited state — same coefficient tables, bitwise.
    let fresh: SymbolicAnalysis = design.analyze_symbolic(THRESHOLD, budget, 2).unwrap();
    assert_eq!(sym2.report_at(1.2, 0.9), fresh.report_at(1.2, 0.9));
    // The old snapshot's cached lane is untouched by the publish.
    assert_reports_close(
        "old snapshot",
        &snap1.symbolic().unwrap().report_at(1.0, 1.0),
        snap1.report(),
    );
}

/// Gate 5: node-level symbolic queries — the snapshot views' coefficient
/// tables evaluate to the scalar node bounds at nominal (bitwise) and
/// expose exact polynomial sensitivities.
#[test]
fn node_symbolic_queries_match_scalar_and_expose_sensitivities() {
    let deck = SpefDeckParams {
        nets: 4,
        ..SpefDeckParams::default()
    };
    let mut design =
        Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", deck.trees(0xFEED)).unwrap();
    let budget = Seconds::from_nano(500.0);
    let snap = design.publish(THRESHOLD, budget, 2).unwrap();
    let net = snap.net("net0").expect("deck net exists");
    let node = net.sinks()[0].node.clone();

    let (_, scalar_bounds) = net.node_times(&node, THRESHOLD).unwrap();
    let (times, bounds) = net.node_symbolic(&node, THRESHOLD).unwrap();
    assert_eq!(bounds.eval(1.0, 1.0), scalar_bounds);
    // The symbolic times evaluate to rc-scaled characteristic times: t_d
    // is an rc-monomial, so doubling both scales quadruples it.
    let t_d = times.t_d.eval(1.0, 1.0);
    assert!(close(times.t_d.eval(2.0, 2.0), 4.0 * t_d));

    let (dr, dc) = net.node_sens(&node, THRESHOLD).unwrap();
    // Exact polynomial derivatives: finite differences of the bound agree.
    let h = 1e-6;
    let fd_r = (bounds.upper.eval(1.0 + h, 1.0) - bounds.upper.eval(1.0 - h, 1.0)) / (2.0 * h);
    let fd_c = (bounds.upper.eval(1.0, 1.0 + h) - bounds.upper.eval(1.0, 1.0 - h)) / (2.0 * h);
    assert!((dr - fd_r).abs() <= 1e-6 * dr.abs().max(1e-30));
    assert!((dc - fd_c).abs() <= 1e-6 * dc.abs().max(1e-30));
    assert!(dr > 0.0 && dc > 0.0, "a real wire has positive sensitivity");
}

/// Gate 6: the interval slack accessor — consistent with worst slack, with
/// certification, and `(required, required)` on an empty report.
#[test]
fn slack_interval_brackets_certification() {
    let dag = eco_dag(&EcoDagParams::default(), 0x51AC);
    let budget = dag.budget();
    let design = dag.design;
    let report = design.analyze_with_jobs(THRESHOLD, budget, 2).unwrap();
    let (lo, hi) = report.slack_interval();
    assert_eq!(lo, report.worst_slack());
    assert!(lo <= hi);
    // An in-between budget is exactly the indeterminate region.
    let worst_max = budget - lo;
    let worst_min = budget - hi;
    let mid = Seconds::new((worst_max.value() + worst_min.value()) / 2.0);
    if worst_min < worst_max {
        assert_eq!(
            report.certification_against(mid),
            rctree_core::cert::Certification::Indeterminate
        );
    }
    let empty = TimingReport {
        threshold: THRESHOLD,
        required_time: Seconds::from_nano(3.0),
        endpoints: Vec::new(),
    };
    assert_eq!(
        empty.slack_interval(),
        (Seconds::from_nano(3.0), Seconds::from_nano(3.0))
    );
}
