//! SPICE-subset deck parser and writer for RC trees.
//!
//! The accepted deck format covers exactly the element set of the paper's
//! RC-tree model:
//!
//! ```text
//! * Figure 7 example network (comment)
//! R1   in  n1  15
//! C1   n1  0   2
//! RB   n1  ns  8
//! CB   ns  0   7
//! U1   n1  n2  3 4        ; uniform RC line, total R then total C
//! C2   n2  0   9
//! .input  in
//! .output n2
//! .end
//! ```
//!
//! * `R` cards are lumped resistors, `C` cards grounded capacitors (one
//!   terminal must be node `0`/`gnd`), `U` cards uniform distributed RC
//!   lines with total resistance and capacitance.
//! * Values accept SPICE engineering suffixes (`15`, `0.04p`, `1.5k`, …).
//! * `.input` names the driven root (default: a node literally named `in`);
//!   `.output` marks one or more observation nodes.
//! * Comments start with `*` or `;`; everything after `;` on a line is
//!   ignored.
//!
//! The parser verifies that the resistive elements form a tree rooted at the
//! input (single drive point, no loops, everything connected), mirroring the
//! paper's definition of an RC tree.

use std::collections::{HashMap, HashSet};

use rctree_core::builder::RcTreeBuilder;
use rctree_core::element::Branch;
use rctree_core::tree::RcTree;
use rctree_core::units::{Farads, Ohms};

use crate::error::{NetlistError, Result};
use crate::value::{format_value, parse_value};

/// Default name of the input node when no `.input` directive is present.
pub const DEFAULT_INPUT: &str = "in";

/// A parsed resistive branch card (resistor or uniform line) shared between
/// the SPICE and SPEF parsers.
#[derive(Debug, Clone)]
pub(crate) struct BranchCard {
    line: usize,
    node_a: String,
    node_b: String,
    resistance: f64,
    capacitance: f64,
    distributed: bool,
}

/// Parses a SPICE-subset deck into an [`RcTree`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for syntax errors,
/// [`NetlistError::NotATree`] if the resistive elements do not form a tree
/// rooted at the input, [`NetlistError::FloatingCapacitor`] for capacitors
/// not connected to ground, and [`NetlistError::Empty`] for decks without
/// elements.
pub fn parse_spice(deck: &str) -> Result<RcTree> {
    let mut branches: Vec<BranchCard> = Vec::new();
    let mut caps: Vec<(usize, String, f64)> = Vec::new();
    let mut input: Option<String> = None;
    let mut outputs: Vec<(usize, String)> = Vec::new();

    for (idx, raw_line) in deck.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.split(';').next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let head = tokens[0].to_ascii_lowercase();

        if head == ".end" {
            break;
        }
        if head == ".input" {
            let name = tokens.get(1).ok_or_else(|| {
                NetlistError::parse_at(line_no, tokens[0], ".input requires a node name")
            })?;
            input = Some((*name).to_string());
            continue;
        }
        if head == ".output" {
            if tokens.len() < 2 {
                return Err(NetlistError::parse_at(
                    line_no,
                    tokens[0],
                    ".output requires at least one node name",
                ));
            }
            outputs.extend(tokens[1..].iter().map(|s| (line_no, s.to_string())));
            continue;
        }
        if head.starts_with('.') {
            // Unknown directives are ignored for forward compatibility.
            continue;
        }

        match head.chars().next() {
            Some('r') => {
                let (a, b, v) = three_fields(&tokens, line_no)?;
                branches.push(BranchCard {
                    line: line_no,
                    node_a: a,
                    node_b: b,
                    resistance: v,
                    capacitance: 0.0,
                    distributed: false,
                });
            }
            Some('c') => {
                let (a, b, v) = three_fields(&tokens, line_no)?;
                let (node, other) = (a.clone(), b.clone());
                if is_ground(&other) {
                    caps.push((line_no, node, v));
                } else if is_ground(&node) {
                    caps.push((line_no, other, v));
                } else {
                    return Err(NetlistError::FloatingCapacitor { line: line_no });
                }
            }
            Some('u') => {
                if tokens.len() < 5 {
                    return Err(NetlistError::parse_at(
                        line_no,
                        tokens[0],
                        "U card requires: name node node R C",
                    ));
                }
                let r = parse_value(tokens[3], line_no)?;
                let c = parse_value(tokens[4], line_no)?;
                branches.push(BranchCard {
                    line: line_no,
                    node_a: tokens[1].to_string(),
                    node_b: tokens[2].to_string(),
                    resistance: r,
                    capacitance: c,
                    distributed: true,
                });
            }
            _ => {
                return Err(NetlistError::parse_at(
                    line_no,
                    tokens[0],
                    format!("unknown element card `{}`", tokens[0]),
                ));
            }
        }
    }

    if branches.is_empty() && caps.is_empty() {
        return Err(NetlistError::Empty);
    }

    let input_name = input.unwrap_or_else(|| DEFAULT_INPUT.to_string());
    build_tree(&input_name, &branches, &caps, &outputs)
}

fn three_fields(tokens: &[&str], line: usize) -> Result<(String, String, f64)> {
    if tokens.len() < 4 {
        return Err(NetlistError::parse_at(
            line,
            tokens[0],
            format!("`{}` card requires: name node node value", tokens[0]),
        ));
    }
    let v = parse_value(tokens[3], line)?;
    Ok((tokens[1].to_string(), tokens[2].to_string(), v))
}

fn is_ground(name: &str) -> bool {
    name == "0" || name.eq_ignore_ascii_case("gnd") || name.eq_ignore_ascii_case("vss")
}

impl BranchCard {
    pub(crate) fn new(
        line: usize,
        node_a: String,
        node_b: String,
        resistance: f64,
        capacitance: f64,
        distributed: bool,
    ) -> Self {
        BranchCard {
            line,
            node_a,
            node_b,
            resistance,
            capacitance,
            distributed,
        }
    }
}

/// Assembles branch and capacitor cards into a validated [`RcTree`].
///
/// Shared between the SPICE and SPEF parsers.
pub(crate) fn build_tree(
    input_name: &str,
    branches: &[BranchCard],
    caps: &[(usize, String, f64)],
    outputs: &[(usize, String)],
) -> Result<RcTree> {
    // Adjacency of resistive branches.
    let mut adjacency: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, b) in branches.iter().enumerate() {
        if is_ground(&b.node_a) || is_ground(&b.node_b) {
            return Err(NetlistError::NotATree {
                message: format!(
                    "line {}: resistive element connects to ground, which an RC tree forbids",
                    b.line
                ),
            });
        }
        adjacency.entry(&b.node_a).or_default().push(i);
        adjacency.entry(&b.node_b).or_default().push(i);
    }

    if !branches.is_empty() && !adjacency.contains_key(input_name) {
        return Err(NetlistError::UnknownInput {
            name: input_name.to_string(),
        });
    }

    let mut builder = RcTreeBuilder::with_input_name(input_name);
    let mut visited: HashSet<String> = HashSet::new();
    let mut used = vec![false; branches.len()];
    visited.insert(input_name.to_string());

    // Breadth-first elaboration from the input.
    let mut frontier = vec![input_name.to_string()];
    while let Some(node) = frontier.pop() {
        let parent_id = builder
            .node_by_name(&node)
            .expect("visited nodes are in the builder");
        let Some(edges) = adjacency.get(node.as_str()) else {
            continue;
        };
        for &edge in edges {
            if used[edge] {
                continue;
            }
            let b = &branches[edge];
            let other = if b.node_a == node {
                &b.node_b
            } else {
                &b.node_a
            };
            used[edge] = true;
            if visited.contains(other) {
                return Err(NetlistError::NotATree {
                    message: format!(
                        "line {}: element between `{}` and `{}` closes a loop",
                        b.line, b.node_a, b.node_b
                    ),
                });
            }
            let child = if b.distributed {
                builder.add_line(
                    parent_id,
                    other.clone(),
                    Ohms::new(b.resistance),
                    Farads::new(b.capacitance),
                )?
            } else {
                builder.add_resistor(parent_id, other.clone(), Ohms::new(b.resistance))?
            };
            let _ = child;
            visited.insert(other.clone());
            frontier.push(other.clone());
        }
    }

    if let Some(unused) = used.iter().position(|u| !u) {
        let b = &branches[unused];
        return Err(NetlistError::NotATree {
            message: format!(
                "line {}: element between `{}` and `{}` is not reachable from the input `{}`",
                b.line, b.node_a, b.node_b, input_name
            ),
        });
    }

    // Grounded capacitors.
    for (line, node, value) in caps {
        let id = builder.node_by_name(node).map_err(|_| {
            NetlistError::parse_at(
                *line,
                node.as_str(),
                format!("capacitor references unknown node `{node}`"),
            )
        })?;
        builder.add_capacitance(id, Farads::new(*value))?;
    }

    // Outputs (default: every leaf if none specified).
    if outputs.is_empty() {
        let leaf_names: Vec<String> = {
            // A leaf is a node that appears in exactly one branch and is not
            // the input.
            let mut degree: HashMap<&str, usize> = HashMap::new();
            for b in branches {
                *degree.entry(b.node_a.as_str()).or_default() += 1;
                *degree.entry(b.node_b.as_str()).or_default() += 1;
            }
            degree
                .iter()
                .filter(|(name, &d)| d == 1 && **name != input_name)
                .map(|(name, _)| name.to_string())
                .collect()
        };
        for name in leaf_names {
            let id = builder.node_by_name(&name).expect("leaves were visited");
            builder.mark_output(id)?;
        }
    } else {
        for (line, name) in outputs {
            let id = builder.node_by_name(name).map_err(|_| {
                NetlistError::parse_at(
                    *line,
                    name.as_str(),
                    format!("output references unknown node `{name}`"),
                )
            })?;
            builder.mark_output(id)?;
        }
    }

    Ok(builder.build()?)
}

/// Writes an [`RcTree`] as a SPICE-subset deck accepted by [`parse_spice`].
pub fn write_spice(tree: &RcTree, title: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("* {title}\n"));
    let input_name = tree.name(tree.input()).expect("input exists").to_string();
    let mut r_count = 0usize;
    let mut u_count = 0usize;
    let mut c_count = 0usize;

    for id in tree.preorder() {
        if id == tree.input() {
            continue;
        }
        let name = tree.name(id).expect("valid node");
        let parent = tree.parent(id).expect("valid node").expect("non-input");
        let parent_name = tree.name(parent).expect("valid node");
        match tree.branch(id).expect("valid node").expect("non-input") {
            Branch::Resistor { resistance } => {
                r_count += 1;
                out.push_str(&format!(
                    "R{r_count} {parent_name} {name} {}\n",
                    format_value(resistance.value(), "")
                ));
            }
            Branch::Line {
                resistance,
                capacitance,
            } => {
                u_count += 1;
                out.push_str(&format!(
                    "U{u_count} {parent_name} {name} {} {}\n",
                    format_value(resistance.value(), ""),
                    format_value(capacitance.value(), "")
                ));
            }
        }
    }
    for id in tree.preorder() {
        let cap = tree.capacitance(id).expect("valid node");
        if !cap.is_zero() {
            c_count += 1;
            let name = tree.name(id).expect("valid node");
            out.push_str(&format!(
                "C{c_count} {name} 0 {}\n",
                format_value(cap.value(), "")
            ));
        }
    }
    out.push_str(&format!(".input {input_name}\n"));
    let outputs: Vec<String> = tree
        .outputs()
        .map(|id| tree.name(id).expect("valid").to_string())
        .collect();
    if !outputs.is_empty() {
        out.push_str(&format!(".output {}\n", outputs.join(" ")));
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_core::moments::characteristic_times;

    const FIG7_DECK: &str = r"
* Figure 7 example network
R1   in  n1  15
C1   n1  0   2
RB   n1  ns  8
CB   ns  0   7
U1   n1  n2  3 4
C2   n2  0   9
.input  in
.output n2
.end
";

    #[test]
    fn parses_figure7_deck() {
        let tree = parse_spice(FIG7_DECK).unwrap();
        assert_eq!(tree.node_count(), 4);
        assert_eq!(tree.total_capacitance(), Farads::new(22.0));
        let out = tree.node_by_name("n2").unwrap();
        assert!(tree.is_output(out).unwrap());
        let t = characteristic_times(&tree, out).unwrap();
        assert!((t.t_p.value() - 419.0).abs() < 1e-9);
        assert!((t.t_d.value() - 363.0).abs() < 1e-9);
    }

    #[test]
    fn engineering_suffixes_in_deck() {
        let deck = r"
Rdrv in  a  380
Cdrv a   0  0.04p
Rw   a   b  1.5k
Cl   b   0  10f
.output b
";
        let tree = parse_spice(deck).unwrap();
        let b = tree.node_by_name("b").unwrap();
        assert!((tree.total_capacitance().value() - (0.04e-12 + 10e-15)).abs() < 1e-20);
        assert_eq!(tree.resistance_from_input(b).unwrap(), Ohms::new(1880.0));
    }

    #[test]
    fn default_outputs_are_leaves() {
        let deck = r"
R1 in a 10
R2 a  b 20
R3 a  c 30
C1 b 0 1
C2 c 0 1
";
        let tree = parse_spice(deck).unwrap();
        let outs: Vec<String> = tree
            .outputs()
            .map(|id| tree.name(id).unwrap().to_string())
            .collect();
        assert_eq!(outs.len(), 2);
        assert!(outs.contains(&"b".to_string()));
        assert!(outs.contains(&"c".to_string()));
    }

    #[test]
    fn ground_aliases_for_capacitors() {
        for gnd in ["0", "gnd", "GND", "vss"] {
            let deck = format!("R1 in a 10\nC1 a {gnd} 2\n.output a\n");
            let tree = parse_spice(&deck).unwrap();
            assert_eq!(tree.total_capacitance(), Farads::new(2.0));
        }
    }

    #[test]
    fn floating_capacitor_rejected() {
        let deck = "R1 in a 10\nC1 a b 2\n";
        assert!(matches!(
            parse_spice(deck),
            Err(NetlistError::FloatingCapacitor { line: 2 })
        ));
    }

    #[test]
    fn loops_are_rejected() {
        let deck = "R1 in a 10\nR2 a b 10\nR3 b in 10\nC1 b 0 1\n";
        assert!(matches!(
            parse_spice(deck),
            Err(NetlistError::NotATree { .. })
        ));
    }

    #[test]
    fn disconnected_elements_are_rejected() {
        let deck = "R1 in a 10\nR2 x y 10\nC1 a 0 1\n";
        assert!(matches!(
            parse_spice(deck),
            Err(NetlistError::NotATree { .. })
        ));
    }

    #[test]
    fn resistor_to_ground_is_rejected() {
        let deck = "R1 in a 10\nR2 a 0 10\nC1 a 0 1\n";
        assert!(matches!(
            parse_spice(deck),
            Err(NetlistError::NotATree { .. })
        ));
    }

    #[test]
    fn unknown_cards_and_missing_fields_rejected() {
        assert!(matches!(
            parse_spice("X1 a b 5\n"),
            Err(NetlistError::Parse { .. })
        ));
        assert!(matches!(
            parse_spice("R1 a b\n"),
            Err(NetlistError::Parse { .. })
        ));
        assert!(matches!(
            parse_spice("U1 a b 5\n"),
            Err(NetlistError::Parse { .. })
        ));
        assert!(matches!(
            parse_spice(".output\nR1 in a 1\nC1 a 0 1\n"),
            Err(NetlistError::Parse { .. })
        ));
        assert!(matches!(
            parse_spice(".input\nR1 in a 1\n"),
            Err(NetlistError::Parse { .. })
        ));
        assert!(matches!(
            parse_spice("* only a comment\n"),
            Err(NetlistError::Empty)
        ));
    }

    #[test]
    fn unknown_input_node_rejected() {
        let deck = "R1 in a 10\nC1 a 0 1\n.input vdd\n";
        assert!(matches!(
            parse_spice(deck),
            Err(NetlistError::UnknownInput { .. })
        ));
    }

    #[test]
    fn unknown_output_node_rejected() {
        let deck = "R1 in a 10\nC1 a 0 1\n.output zzz\n";
        assert!(matches!(parse_spice(deck), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn parse_errors_carry_line_and_token() {
        // A bad numeric literal deep in the deck is reported with the exact
        // 1-based line number and the offending token.
        let deck = "R1 in a 10\nC1 a 0 1\nR2 a b bogus\nC2 b 0 1\n.output b\n";
        match parse_spice(deck) {
            Err(NetlistError::Parse { line, token, .. }) => {
                assert_eq!(line, 3);
                assert_eq!(token.as_deref(), Some("bogus"));
            }
            other => panic!("unexpected: {other:?}"),
        }
        // An unknown `.output` node is reported at the directive's line (it
        // used to surface as line 0 once the deck had been tokenized).
        match parse_spice("R1 in a 10\nC1 a 0 1\n.output zzz\n") {
            Err(NetlistError::Parse { line, token, .. }) => {
                assert_eq!(line, 3);
                assert_eq!(token.as_deref(), Some("zzz"));
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Unknown element cards name the card itself.
        match parse_spice("X1 a b 5\n") {
            Err(NetlistError::Parse { line, token, .. }) => {
                assert_eq!(line, 1);
                assert_eq!(token.as_deref(), Some("X1"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn round_trip_through_writer() {
        let tree = parse_spice(FIG7_DECK).unwrap();
        let deck2 = write_spice(&tree, "round trip");
        let tree2 = parse_spice(&deck2).unwrap();
        assert_eq!(tree2.node_count(), tree.node_count());
        assert!(
            (tree2.total_capacitance().value() - tree.total_capacitance().value()).abs() < 1e-18
        );
        let out1 = tree.node_by_name("n2").unwrap();
        let out2 = tree2.node_by_name("n2").unwrap();
        let t1 = characteristic_times(&tree, out1).unwrap();
        let t2 = characteristic_times(&tree2, out2).unwrap();
        assert!((t1.t_p.value() - t2.t_p.value()).abs() < 1e-9);
        assert!((t1.t_d.value() - t2.t_d.value()).abs() < 1e-9);
        assert!((t1.t_r.value() - t2.t_r.value()).abs() < 1e-9);
    }

    #[test]
    fn semicolon_comments_are_stripped() {
        let deck = "R1 in a 10 ; driver\nC1 a 0 1 ; load\n.output a\n";
        let tree = parse_spice(deck).unwrap();
        assert_eq!(tree.node_count(), 2);
    }
}
