//! Textual form of the paper's wiring-algebra expressions (Eq. 18).
//!
//! The paper denotes the Figure 7 network as
//!
//! ```text
//! (URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9
//! ```
//!
//! This module parses and prints that notation, mapping it onto
//! [`NetworkExpr`].  Grammar (APL's right-to-left evaluation order is
//! replaced by conventional parenthesised infix, which is how the expression
//! in the paper reads once the APL quirks are normalised):
//!
//! ```text
//! expr    :=  term ( "WC" term )*                 // left-associative cascade
//! term    :=  "WB" term                           // side branch of the following term
//!          |  "(" expr ")"
//!          |  "URC" number number
//! number  :=  decimal literal with optional SPICE suffix
//! ```

use rctree_core::expr::NetworkExpr;
use rctree_core::units::{Farads, Ohms};

use crate::error::{NetlistError, Result};
use crate::value::parse_value;

/// Parses the textual wiring-algebra notation into a [`NetworkExpr`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] with a token position for any syntax
/// error.
pub fn parse_expr(text: &str) -> Result<NetworkExpr> {
    let tokens = tokenize(text)?;
    let mut parser = Parser { tokens, pos: 0 };
    let expr = parser.parse_expr()?;
    if parser.pos != parser.tokens.len() {
        let token = parser.tokens[parser.pos].text.clone();
        return Err(NetlistError::parse_at(
            1,
            token.clone(),
            format!("unexpected trailing token `{token}`"),
        ));
    }
    Ok(expr)
}

/// Renders a [`NetworkExpr`] in the textual wiring-algebra notation; the
/// output round-trips through [`parse_expr`].
pub fn format_expr(expr: &NetworkExpr) -> String {
    match expr {
        NetworkExpr::Urc {
            resistance,
            capacitance,
        } => format!("(URC {} {})", resistance.value(), capacitance.value()),
        NetworkExpr::Cascade(a, b) => format!("{} WC {}", format_expr(a), format_expr(b)),
        // The inner expression is parenthesised so that `WB` unambiguously
        // covers the whole subtree even when it is itself a cascade.
        NetworkExpr::Branch(inner) => format!("(WB ({}))", format_expr(inner)),
    }
}

#[derive(Debug, Clone)]
struct Token {
    text: String,
}

fn tokenize(text: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        match ch {
            '(' | ')' => {
                if !current.is_empty() {
                    tokens.push(Token {
                        text: std::mem::take(&mut current),
                    });
                }
                tokens.push(Token {
                    text: ch.to_string(),
                });
            }
            c if c.is_whitespace() => {
                if !current.is_empty() {
                    tokens.push(Token {
                        text: std::mem::take(&mut current),
                    });
                }
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(Token { text: current });
    }
    if tokens.is_empty() {
        return Err(NetlistError::parse(1, "empty expression"));
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(|t| t.text.as_str())
    }

    fn bump(&mut self) -> Option<String> {
        let t = self.tokens.get(self.pos).map(|t| t.text.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, what: &str) -> Result<String> {
        self.bump().ok_or_else(|| {
            NetlistError::parse(1, format!("unexpected end of expression, expected {what}"))
        })
    }

    fn parse_expr(&mut self) -> Result<NetworkExpr> {
        let mut expr = self.parse_term()?;
        while let Some(tok) = self.peek() {
            if tok.eq_ignore_ascii_case("wc") {
                self.bump();
                let rhs = self.parse_term()?;
                expr = expr.cascade(rhs);
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn parse_term(&mut self) -> Result<NetworkExpr> {
        let tok = self.expect("a term")?;
        if tok.eq_ignore_ascii_case("wb") {
            let inner = self.parse_term()?;
            return Ok(inner.side_branch());
        }
        if tok == "(" {
            let inner = self.parse_expr()?;
            let close = self.expect("`)`")?;
            if close != ")" {
                return Err(NetlistError::parse_at(
                    1,
                    close.clone(),
                    format!("expected `)`, found `{close}`"),
                ));
            }
            return Ok(inner);
        }
        if tok.eq_ignore_ascii_case("urc") {
            let r_tok = self.expect("a resistance value")?;
            let c_tok = self.expect("a capacitance value")?;
            let r = parse_value(&r_tok, 1)?;
            let c = parse_value(&c_tok, 1)?;
            return Ok(NetworkExpr::line(Ohms::new(r), Farads::new(c)));
        }
        Err(NetlistError::parse_at(
            1,
            tok.clone(),
            format!("unexpected token `{tok}`"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 7 network exactly as written in Eq. (18) (with the side
    /// branch parenthesised).
    const FIG7: &str =
        "(URC 15 0) WC (URC 0 2) WC (WB ((URC 8 0) WC (URC 0 7))) WC (URC 3 4) WC (URC 0 9)";

    #[test]
    fn parses_figure7_expression() {
        let expr = parse_expr(FIG7).unwrap();
        assert_eq!(expr.primitive_count(), 6);
        let state = expr.evaluate();
        assert!((state.t_p().value() - 419.0).abs() < 1e-9);
        assert!((state.t_d2().value() - 363.0).abs() < 1e-9);
        assert_eq!(state.r22().value(), 18.0);
    }

    #[test]
    fn wb_binds_to_the_following_term() {
        // "WB (URC 8 0) WC (URC 0 7)" in the paper's linear notation means the
        // branch is the cascade of both; with explicit parentheses both
        // readings can be expressed.  Check the tight-binding reading too.
        let tight = parse_expr("(URC 1 0) WC (WB (URC 8 0)) WC (URC 0 7)").unwrap();
        let state = tight.evaluate();
        // Here the 7 F capacitor stays on the main path after the branch.
        assert!((state.total_cap().value() - 7.0).abs() < 1e-12);
        assert!((state.t_d2().value() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn round_trip_format_parse() {
        let expr = parse_expr(FIG7).unwrap();
        let text = format_expr(&expr);
        let reparsed = parse_expr(&text).unwrap();
        let a = expr.evaluate();
        let b = reparsed.evaluate();
        assert!((a.t_p().value() - b.t_p().value()).abs() < 1e-12);
        assert!((a.t_d2().value() - b.t_d2().value()).abs() < 1e-12);
        assert!((a.t_r2_r22().value() - b.t_r2_r22().value()).abs() < 1e-12);
        assert_eq!(a.total_cap(), b.total_cap());
        assert_eq!(a.r22(), b.r22());
    }

    #[test]
    fn engineering_suffixes_allowed() {
        let expr = parse_expr("(URC 1.5k 0.04p) WC (URC 0 10f)").unwrap();
        let s = expr.evaluate();
        assert!((s.r22().value() - 1500.0).abs() < 1e-9);
        assert!((s.total_cap().value() - (0.04e-12 + 10e-15)).abs() < 1e-24);
    }

    #[test]
    fn case_insensitive_keywords() {
        let expr = parse_expr("(urc 1 2) wc (wb (urc 3 4)) wc (urc 0 5)").unwrap();
        assert_eq!(expr.primitive_count(), 3);
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse_expr("").is_err());
        assert!(parse_expr("URC 1").is_err());
        assert!(parse_expr("(URC 1 2").is_err());
        assert!(parse_expr("URC 1 2 garbage").is_err());
        assert!(parse_expr("WC URC 1 2").is_err());
        assert!(parse_expr("FOO 1 2").is_err());
        assert!(parse_expr("(URC 1 2) WC").is_err());
        assert!(parse_expr("(URC one 2)").is_err());
    }
}
