//! SPEF-lite parasitic parser.
//!
//! Modern parasitic extractors emit IEEE 1481 SPEF; static timing tools read
//! the `*D_NET` sections and build exactly the RC trees this library
//! analyses.  This module accepts a practical subset ("SPEF-lite") that is
//! sufficient to exchange single-net parasitics:
//!
//! ```text
//! *SPEF "IEEE 1481-1998"          // header lines are ignored
//! *T_UNIT 1 NS                    // units: only *R_UNIT / *C_UNIT are used
//! *R_UNIT 1 OHM
//! *C_UNIT 1 PF
//!
//! *D_NET clk_leaf 0.022
//! *CONN
//! *I buf:Z I                      // driver pin = the tree's input
//! *P ff1:CK O                     // load pins  = outputs
//! *P ff2:CK O
//! *CAP
//! 1 n1 0.010
//! 2 ff1:CK 0.007
//! 3 ff2:CK 0.005
//! *RES
//! 1 buf:Z n1 15.0
//! 2 n1 ff1:CK 8.0
//! 3 n1 ff2:CK 3.0
//! *END
//! ```
//!
//! Only grounded caps (two-field `*CAP` entries) are supported; coupling
//! caps (three node fields) are rejected with a clear error, since an RC
//! *tree* cannot represent them.  Resistance and capacitance unit scales
//! default to ohms and picofarads as in the SPEF standard.

use crate::error::{NetlistError, Result};
use crate::spice::{build_tree, BranchCard};
use crate::value::parse_value;
use rctree_core::tree::RcTree;

/// A single `*D_NET` parsed from a SPEF-lite file.
#[derive(Debug, Clone, PartialEq)]
pub struct SpefNet {
    /// Net name from the `*D_NET` line.
    pub name: String,
    /// Total capacitance declared on the `*D_NET` line (farads).
    pub declared_total_cap: f64,
    /// The reconstructed RC tree.
    pub tree: RcTree,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Preamble,
    Conn,
    Cap,
    Res,
}

/// Parses every `*D_NET` section of a SPEF-lite document.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for syntax errors, the tree-structure
/// errors of the SPICE parser for malformed nets, and
/// [`NetlistError::Empty`] if the document holds no `*D_NET` at all.
pub fn parse_spef(text: &str) -> Result<Vec<SpefNet>> {
    let mut nets = Vec::new();
    let mut units = Units::default();

    let mut lines = text.lines().enumerate();
    while let Some((idx, raw)) = lines.next() {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        if let Some((name, total)) = units.scan_top_level(line, line_no)? {
            let net = parse_d_net(&mut lines, name, line_no, total, units.r, units.c)?;
            nets.push(net);
        }
    }

    if nets.is_empty() {
        return Err(NetlistError::Empty);
    }
    Ok(nets)
}

/// The `*R_UNIT`/`*C_UNIT` scales in effect at a point of the document,
/// plus the recognition of top-level directives.  Shared verbatim between
/// the serial parser and the deck splitter so the two scanners cannot
/// drift apart (their bit-identity is a documented guarantee of
/// [`parse_spef_deck`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Units {
    pub(crate) r: f64,
    pub(crate) c: f64,
}

impl Default for Units {
    fn default() -> Self {
        Units {
            r: 1.0,   // ohms
            c: 1e-12, // SPEF default: picofarads
        }
    }
}

impl Units {
    /// Processes one top-level (outside any `*D_NET` body) line: unit
    /// directives update the scales in place; a `*D_NET` header returns the
    /// net name and its declared total capacitance (already scaled); any
    /// other line is ignored.
    pub(crate) fn scan_top_level(
        &mut self,
        line: &str,
        line_no: usize,
    ) -> Result<Option<(String, f64)>> {
        let upper = line.to_ascii_uppercase();
        if upper.starts_with("*R_UNIT") {
            self.r = unit_scale(line, line_no, &["OHM", "KOHM"])?;
        } else if upper.starts_with("*C_UNIT") {
            self.c = unit_scale(line, line_no, &["FF", "PF", "NF", "UF", "F"])?;
        } else if upper.starts_with("*D_NET") {
            let tokens: Vec<&str> = line.split_whitespace().collect();
            if tokens.len() < 3 {
                return Err(NetlistError::parse_at(
                    line_no,
                    tokens[0],
                    "*D_NET requires a name and a total capacitance",
                ));
            }
            let name = tokens[1].to_string();
            let total = parse_value(tokens[2], line_no)? * self.c;
            return Ok(Some((name, total)));
        }
        Ok(None)
    }
}

/// Parses a SPEF-lite document and returns the net with the given name.
///
/// # Errors
///
/// In addition to [`parse_spef`]'s errors, returns
/// [`NetlistError::UnknownInput`] if no net carries the requested name.
pub fn parse_spef_net(text: &str, net_name: &str) -> Result<SpefNet> {
    parse_spef(text)?
        .into_iter()
        .find(|n| n.name == net_name)
        .ok_or_else(|| NetlistError::UnknownInput {
            name: net_name.to_string(),
        })
}

/// One `*D_NET` section located by the deck splitter: the parsed header
/// plus the absolute **byte** range of the section body (and the header's
/// line number), so the section can be parsed independently of the rest of
/// the document — straight off a subslice of the original text — with
/// correct line numbers in every error.
#[derive(Debug, Clone)]
struct DeckSection {
    name: String,
    declared_total_cap: f64,
    /// Unit scales in effect where the section starts (unit directives are
    /// processed in document order, exactly as in the serial parser).
    r_unit: f64,
    c_unit: f64,
    /// 1-based line number of the `*D_NET` header.
    header_line: usize,
    /// Byte range of the body, from the byte after the header line through
    /// the end of the `*END` line (or end of input when `*END` is
    /// missing).
    body: (usize, usize),
}

/// Locates every `*D_NET` section and the unit scales in effect at each,
/// without parsing section bodies.
///
/// One sequential pass over the raw bytes (`split_inclusive('\n')` with a
/// running offset — no intermediate `Vec` of line slices, so a
/// multi-hundred-MB deck costs the scan and nothing else).  Line contents
/// are interpreted exactly as `str::lines` would hand them to the serial
/// parser: the trailing `\n` and any `\r` before it are stripped.
fn split_deck(text: &str) -> Result<Vec<DeckSection>> {
    let mut sections = Vec::new();
    let mut units = Units::default();
    let mut offset = 0usize;
    let mut line_no = 0usize;
    // The section currently awaiting its `*END` line, if any.  While one
    // is open every line — stray `*D_NET` headers and unit directives
    // included — belongs to its body, exactly as the serial parser
    // consumes them.
    let mut open: Option<DeckSection> = None;
    for seg in text.split_inclusive('\n') {
        line_no += 1;
        offset += seg.len();
        let raw = seg
            .strip_suffix('\n')
            .map(|s| s.strip_suffix('\r').unwrap_or(s))
            .unwrap_or(seg);
        let line = strip_comment(raw);
        if let Some(section) = open.as_mut() {
            if line.to_ascii_uppercase().starts_with("*END") {
                section.body.1 = offset;
                sections.push(open.take().expect("section is open"));
            }
            continue;
        }
        if line.is_empty() {
            continue;
        }
        if let Some((name, declared_total_cap)) = units.scan_top_level(line, line_no)? {
            open = Some(DeckSection {
                name,
                declared_total_cap,
                r_unit: units.r,
                c_unit: units.c,
                header_line: line_no,
                // The body starts right after the header line; a missing
                // `*END` leaves it running to the end of input, where
                // `parse_d_net` reports the error at the header.
                body: (offset, text.len()),
            });
        }
    }
    sections.extend(open);
    Ok(sections)
}

/// Parses every `*D_NET` section of a SPEF-lite document, fanning the
/// sections out over `jobs` worker threads.
///
/// This is the deck-scale entry point: the document is first split on
/// `*D_NET` section boundaries in one cheap sequential **byte-offset**
/// scan (which also resolves the `*R_UNIT`/`*C_UNIT` scales in effect at
/// each section, and never materialises a line table), and the sections —
/// where all the real parsing work is — are then parsed independently in
/// parallel, each straight off its subslice of the input.  The result is
/// **bit-identical** to [`parse_spef`] for every `jobs` value: nets are
/// returned in document order and each section sees exactly the lines and
/// unit scales the serial parser would give it, with absolute line numbers
/// in every error.
///
/// On an invalid document the error returned is the first failing section
/// in document order (a malformed unit directive or `*D_NET` header found
/// during the scan is reported before any section error).
///
/// # Errors
///
/// The same errors as [`parse_spef`], including [`NetlistError::Empty`]
/// when the document holds no `*D_NET` at all.
pub fn parse_spef_deck(text: &str, jobs: usize) -> Result<Vec<SpefNet>> {
    let sections = split_deck(text)?;
    if sections.is_empty() {
        return Err(NetlistError::Empty);
    }
    rctree_par::par_map_indexed(jobs, &sections, |_, sec| {
        // The header is line `header_line` (1-based), so the body's first
        // line has 0-based index `header_line` — `parse_d_net` reports
        // `idx + 1`, giving absolute document line numbers.
        let mut body = text[sec.body.0..sec.body.1]
            .lines()
            .enumerate()
            .map(|(k, raw)| (sec.header_line + k, raw));
        parse_d_net(
            &mut body,
            sec.name.clone(),
            sec.header_line,
            sec.declared_total_cap,
            sec.r_unit,
            sec.c_unit,
        )
    })
    .into_iter()
    .collect()
}

pub(crate) fn strip_comment(raw: &str) -> &str {
    raw.split("//").next().unwrap_or("").trim()
}

fn unit_scale(line: &str, line_no: usize, accepted: &[&str]) -> Result<f64> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() < 3 {
        return Err(NetlistError::parse_at(
            line_no,
            tokens[0],
            format!("unit directive `{line}` requires a scale and a unit"),
        ));
    }
    let scale = parse_value(tokens[1], line_no)?;
    let unit = tokens[2].to_ascii_uppercase();
    if !accepted.contains(&unit.as_str()) {
        return Err(NetlistError::parse_at(
            line_no,
            tokens[2],
            format!("unsupported unit `{}`", tokens[2]),
        ));
    }
    let unit_factor = match unit.as_str() {
        "OHM" => 1.0,
        "KOHM" => 1e3,
        "FF" => 1e-15,
        "PF" => 1e-12,
        "NF" => 1e-9,
        "UF" => 1e-6,
        "F" => 1.0,
        _ => 1.0,
    };
    Ok(scale * unit_factor)
}

pub(crate) fn parse_d_net<'a, I>(
    lines: &mut I,
    name: String,
    header_line: usize,
    declared_total_cap: f64,
    r_unit: f64,
    c_unit: f64,
) -> Result<SpefNet>
where
    I: Iterator<Item = (usize, &'a str)>,
{
    let mut section = Section::Preamble;
    let mut driver: Option<String> = None;
    let mut outputs: Vec<(usize, String)> = Vec::new();
    let mut caps: Vec<(usize, String, f64)> = Vec::new();
    let mut branches: Vec<BranchCard> = Vec::new();

    for (idx, raw) in lines.by_ref() {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let upper = line.to_ascii_uppercase();
        if upper.starts_with("*END") {
            let input = driver.ok_or_else(|| {
                NetlistError::parse_at(
                    line_no,
                    name.as_str(),
                    format!("net `{name}` has no *I driver pin"),
                )
            })?;
            let tree = build_tree(&input, &branches, &caps, &outputs)?;
            return Ok(SpefNet {
                name,
                declared_total_cap,
                tree,
            });
        }
        if upper.starts_with("*CONN") {
            section = Section::Conn;
            continue;
        }
        if upper.starts_with("*CAP") {
            section = Section::Cap;
            continue;
        }
        if upper.starts_with("*RES") {
            section = Section::Res;
            continue;
        }
        if upper.starts_with("*I ") || upper.starts_with("*P ") {
            let tokens: Vec<&str> = line.split_whitespace().collect();
            if section != Section::Conn {
                return Err(NetlistError::parse_at(
                    line_no,
                    tokens[0],
                    "pin declarations must appear inside *CONN",
                ));
            }
            if tokens.len() < 3 {
                return Err(NetlistError::parse_at(
                    line_no,
                    tokens[0],
                    "pin declaration requires a name and a direction",
                ));
            }
            let pin = tokens[1].to_string();
            match tokens[2].to_ascii_uppercase().as_str() {
                "I" => {
                    if driver.replace(pin).is_some() {
                        return Err(NetlistError::NotATree {
                            message: format!("net `{name}` declares more than one driver"),
                        });
                    }
                }
                "O" => outputs.push((line_no, pin)),
                other => {
                    return Err(NetlistError::parse_at(
                        line_no,
                        other,
                        format!("unknown pin direction `{other}`"),
                    ));
                }
            }
            continue;
        }

        match section {
            Section::Cap => {
                let tokens: Vec<&str> = line.split_whitespace().collect();
                match tokens.len() {
                    3 => {
                        let value = parse_value(tokens[2], line_no)? * c_unit;
                        caps.push((line_no, tokens[1].to_string(), value));
                    }
                    4 => {
                        return Err(NetlistError::FloatingCapacitor { line: line_no });
                    }
                    _ => {
                        return Err(NetlistError::parse_at(
                            line_no,
                            tokens.first().copied().unwrap_or(""),
                            "*CAP entry requires: index node value",
                        ));
                    }
                }
            }
            Section::Res => {
                let tokens: Vec<&str> = line.split_whitespace().collect();
                if tokens.len() < 4 {
                    return Err(NetlistError::parse_at(
                        line_no,
                        tokens[0],
                        "*RES entry requires: index node node value",
                    ));
                }
                let value = parse_value(tokens[3], line_no)? * r_unit;
                branches.push(BranchCard::new(
                    line_no,
                    tokens[1].to_string(),
                    tokens[2].to_string(),
                    value,
                    0.0,
                    false,
                ));
            }
            Section::Conn | Section::Preamble => {
                return Err(NetlistError::parse_at(
                    line_no,
                    line.split_whitespace().next().unwrap_or(""),
                    format!("unexpected line `{line}` in D_NET section"),
                ));
            }
        }
    }

    // Reported at the `*D_NET` header (the old behaviour was a useless
    // "line 0" once the rest of the document had been consumed).
    Err(NetlistError::parse_at(
        header_line,
        name.as_str(),
        format!("net `{name}` is missing its *END line"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_core::moments::characteristic_times;

    const SAMPLE: &str = r#"
*SPEF "IEEE 1481-1998"
*DESIGN "repro"
*R_UNIT 1 OHM
*C_UNIT 1 PF

*D_NET net1 0.022
*CONN
*I buf:Z I
*P ff1:CK O
*P ff2:CK O
*CAP
1 n1 0.002
2 ff1:CK 0.007
3 ff2:CK 0.013
*RES
1 buf:Z n1 15.0
2 n1 ff1:CK 8.0
3 n1 ff2:CK 3.0
*END
"#;

    #[test]
    fn parses_sample_net() {
        let nets = parse_spef(SAMPLE).unwrap();
        assert_eq!(nets.len(), 1);
        let net = &nets[0];
        assert_eq!(net.name, "net1");
        assert!((net.declared_total_cap - 0.022e-12).abs() < 1e-20);
        assert_eq!(net.tree.node_count(), 4);
        let total = net.tree.total_capacitance().value();
        assert!((total - 0.022e-12).abs() < 1e-20);
        let outs: Vec<String> = net
            .tree
            .outputs()
            .map(|id| net.tree.name(id).unwrap().to_string())
            .collect();
        assert!(outs.contains(&"ff1:CK".to_string()));
        assert!(outs.contains(&"ff2:CK".to_string()));
    }

    #[test]
    fn characteristic_times_computable_from_spef() {
        let net = parse_spef_net(SAMPLE, "net1").unwrap();
        let out = net.tree.node_by_name("ff1:CK").unwrap();
        let t = characteristic_times(&net.tree, out).unwrap();
        assert!(t.satisfies_ordering());
        assert!(t.t_d.value() > 0.0);
    }

    #[test]
    fn missing_net_name_is_reported() {
        assert!(matches!(
            parse_spef_net(SAMPLE, "does_not_exist"),
            Err(NetlistError::UnknownInput { .. })
        ));
    }

    #[test]
    fn kohm_and_ff_units_are_scaled() {
        let text = r#"
*R_UNIT 1 KOHM
*C_UNIT 1 FF
*D_NET n 10
*CONN
*I drv I
*P load O
*CAP
1 load 10
*RES
1 drv load 2
*END
"#;
        let net = parse_spef_net(text, "n").unwrap();
        let load = net.tree.node_by_name("load").unwrap();
        assert!((net.tree.resistance_from_input(load).unwrap().value() - 2000.0).abs() < 1e-9);
        assert!((net.tree.total_capacitance().value() - 10e-15).abs() < 1e-26);
    }

    #[test]
    fn coupling_caps_are_rejected() {
        let text = r#"
*D_NET n 1
*CONN
*I drv I
*P load O
*CAP
1 load other:pin 0.5
*RES
1 drv load 2
*END
"#;
        assert!(matches!(
            parse_spef(text),
            Err(NetlistError::FloatingCapacitor { .. })
        ));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let text = r#"
*D_NET n 1
*CONN
*I a I
*I b I
*CAP
1 x 1
*RES
1 a x 2
*END
"#;
        assert!(matches!(
            parse_spef(text),
            Err(NetlistError::NotATree { .. })
        ));
    }

    #[test]
    fn missing_driver_rejected() {
        let text = r#"
*D_NET n 1
*CONN
*P load O
*CAP
1 load 1
*RES
1 drv load 2
*END
"#;
        assert!(matches!(parse_spef(text), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn missing_end_rejected() {
        let text = r#"
*D_NET n 1
*CONN
*I drv I
*CAP
1 load 1
*RES
1 drv load 2
"#;
        assert!(matches!(parse_spef(text), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn empty_document_rejected() {
        assert!(matches!(
            parse_spef("// nothing here\n"),
            Err(NetlistError::Empty)
        ));
    }

    #[test]
    fn multiple_nets_parse_independently() {
        let text = format!("{SAMPLE}\n{}", SAMPLE.replace("net1", "net2"));
        let nets = parse_spef(&text).unwrap();
        assert_eq!(nets.len(), 2);
        assert_eq!(nets[1].name, "net2");
    }

    /// A deck of `n` copies of [`SAMPLE`]'s net under distinct names.
    fn replicated_deck(n: usize) -> String {
        let mut text = String::new();
        for i in 0..n {
            text.push_str(&SAMPLE.replace("net1", &format!("net{i}")));
        }
        text
    }

    #[test]
    fn deck_parse_is_bit_identical_to_serial_for_any_job_count() {
        let text = replicated_deck(33);
        let serial = parse_spef(&text).unwrap();
        assert_eq!(serial.len(), 33);
        for jobs in [1, 2, 7, rctree_par::available_parallelism()] {
            let parallel = parse_spef_deck(&text, jobs).unwrap();
            assert_eq!(parallel, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn deck_parse_applies_units_in_document_order() {
        // The second net is parsed under KOHM/FF scales declared between
        // the sections; the splitter must hand each section the scales in
        // effect where it starts.
        let text = "\
*D_NET a 1\n*CONN\n*I drv I\n*P x O\n*CAP\n1 x 1\n*RES\n1 drv x 5\n*END\n\
*R_UNIT 1 KOHM\n*C_UNIT 1 FF\n\
*D_NET b 1\n*CONN\n*I drv I\n*P y O\n*CAP\n1 y 2\n*RES\n1 drv y 7\n*END\n";
        let serial = parse_spef(text).unwrap();
        let parallel = parse_spef_deck(text, 2).unwrap();
        assert_eq!(parallel, serial);
        let y = parallel[1].tree.node_by_name("y").unwrap();
        assert!((parallel[1].tree.resistance_from_input(y).unwrap().value() - 7000.0).abs() < 1e-9);
        assert!((parallel[1].tree.total_capacitance().value() - 2e-15).abs() < 1e-26);
    }

    #[test]
    fn parse_errors_carry_line_and_token() {
        // A bad `*CAP` value inside the second net: the error names the
        // absolute 1-based line and the offending token, from both the
        // serial and the deck parser.
        let text = "\
*D_NET a 1\n*CONN\n*I drv I\n*CAP\n1 x 1\n*RES\n1 drv x 5\n*END\n\
*D_NET b 1\n*CONN\n*I drv I\n*CAP\n1 y bogus\n*RES\n1 drv y 7\n*END\n";
        for result in [parse_spef(text), parse_spef_deck(text, 2)] {
            match result {
                Err(NetlistError::Parse { line, token, .. }) => {
                    assert_eq!(line, 13);
                    assert_eq!(token.as_deref(), Some("bogus"));
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
    }

    #[test]
    fn missing_end_is_reported_at_the_net_header() {
        let text = "// preamble\n*D_NET n 1\n*CONN\n*I drv I\n*CAP\n1 load 1\n";
        for result in [parse_spef(text), parse_spef_deck(text, 2)] {
            match result {
                Err(NetlistError::Parse { line, token, .. }) => {
                    assert_eq!(line, 2, "reported at the *D_NET header");
                    assert_eq!(token.as_deref(), Some("n"));
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
    }

    #[test]
    fn deck_parser_rejects_empty_documents() {
        assert!(matches!(
            parse_spef_deck("// nothing\n", 4),
            Err(NetlistError::Empty)
        ));
    }

    #[test]
    fn byte_splitter_handles_crlf_and_missing_trailing_newline() {
        // CRLF line endings: the byte scanner must strip `\r` exactly like
        // `str::lines` does for the serial parser.
        let crlf = SAMPLE.replace('\n', "\r\n");
        assert_eq!(
            parse_spef_deck(&crlf, 2).unwrap(),
            parse_spef(&crlf).unwrap()
        );

        // A document whose final `*END` lacks a trailing newline still
        // closes the last section.
        let trimmed = replicated_deck(3);
        let trimmed = trimmed.trim_end_matches('\n');
        assert_eq!(
            parse_spef_deck(trimmed, 2).unwrap(),
            parse_spef(trimmed).unwrap()
        );

        // Section followed by trailing top-level noise only.
        let noisy = format!("{SAMPLE}\n// trailing comment\n\n");
        assert_eq!(
            parse_spef_deck(&noisy, 2).unwrap(),
            parse_spef(&noisy).unwrap()
        );
    }

    #[test]
    fn byte_splitter_treats_in_body_headers_as_body_lines() {
        // A stray `*D_NET`-looking line inside an unterminated body belongs
        // to that body; both parsers agree the document is one broken net,
        // reported at the first header.
        let text = "*D_NET outer 1\n*CONN\n*I drv I\n*D_NET inner 2\n*CAP\n1 x 1\n";
        let serial = parse_spef(text).unwrap_err();
        let deck = parse_spef_deck(text, 2).unwrap_err();
        assert_eq!(format!("{serial}"), format!("{deck}"));
    }
}
