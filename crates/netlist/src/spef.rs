//! SPEF-lite parasitic parser.
//!
//! Modern parasitic extractors emit IEEE 1481 SPEF; static timing tools read
//! the `*D_NET` sections and build exactly the RC trees this library
//! analyses.  This module accepts a practical subset ("SPEF-lite") that is
//! sufficient to exchange single-net parasitics:
//!
//! ```text
//! *SPEF "IEEE 1481-1998"          // header lines are ignored
//! *T_UNIT 1 NS                    // units: only *R_UNIT / *C_UNIT are used
//! *R_UNIT 1 OHM
//! *C_UNIT 1 PF
//!
//! *D_NET clk_leaf 0.022
//! *CONN
//! *I buf:Z I                      // driver pin = the tree's input
//! *P ff1:CK O                     // load pins  = outputs
//! *P ff2:CK O
//! *CAP
//! 1 n1 0.010
//! 2 ff1:CK 0.007
//! 3 ff2:CK 0.005
//! *RES
//! 1 buf:Z n1 15.0
//! 2 n1 ff1:CK 8.0
//! 3 n1 ff2:CK 3.0
//! *END
//! ```
//!
//! Only grounded caps (two-field `*CAP` entries) are supported; coupling
//! caps (three node fields) are rejected with a clear error, since an RC
//! *tree* cannot represent them.  Resistance and capacitance unit scales
//! default to ohms and picofarads as in the SPEF standard.

use crate::error::{NetlistError, Result};
use crate::spice::{build_tree, BranchCard};
use crate::value::parse_value;
use rctree_core::tree::RcTree;

/// A single `*D_NET` parsed from a SPEF-lite file.
#[derive(Debug, Clone)]
pub struct SpefNet {
    /// Net name from the `*D_NET` line.
    pub name: String,
    /// Total capacitance declared on the `*D_NET` line (farads).
    pub declared_total_cap: f64,
    /// The reconstructed RC tree.
    pub tree: RcTree,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Preamble,
    Conn,
    Cap,
    Res,
}

/// Parses every `*D_NET` section of a SPEF-lite document.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for syntax errors, the tree-structure
/// errors of the SPICE parser for malformed nets, and
/// [`NetlistError::Empty`] if the document holds no `*D_NET` at all.
pub fn parse_spef(text: &str) -> Result<Vec<SpefNet>> {
    let mut nets = Vec::new();
    let mut r_unit = 1.0; // ohms
    let mut c_unit = 1e-12; // SPEF default: picofarads

    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let upper = line.to_ascii_uppercase();
        if upper.starts_with("*R_UNIT") {
            r_unit = unit_scale(line, line_no, &["OHM", "KOHM"])?;
        } else if upper.starts_with("*C_UNIT") {
            c_unit = unit_scale(line, line_no, &["FF", "PF", "NF", "UF", "F"])?;
        } else if upper.starts_with("*D_NET") {
            let tokens: Vec<&str> = line.split_whitespace().collect();
            if tokens.len() < 3 {
                return Err(NetlistError::Parse {
                    line: line_no,
                    message: "*D_NET requires a name and a total capacitance".into(),
                });
            }
            let name = tokens[1].to_string();
            let total = parse_value(tokens[2], line_no)? * c_unit;
            let net = parse_d_net(&mut lines, name, total, r_unit, c_unit)?;
            nets.push(net);
        }
    }

    if nets.is_empty() {
        return Err(NetlistError::Empty);
    }
    Ok(nets)
}

/// Parses a SPEF-lite document and returns the net with the given name.
///
/// # Errors
///
/// In addition to [`parse_spef`]'s errors, returns
/// [`NetlistError::UnknownInput`] if no net carries the requested name.
pub fn parse_spef_net(text: &str, net_name: &str) -> Result<SpefNet> {
    parse_spef(text)?
        .into_iter()
        .find(|n| n.name == net_name)
        .ok_or_else(|| NetlistError::UnknownInput {
            name: net_name.to_string(),
        })
}

fn strip_comment(raw: &str) -> &str {
    raw.split("//").next().unwrap_or("").trim()
}

fn unit_scale(line: &str, line_no: usize, accepted: &[&str]) -> Result<f64> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() < 3 {
        return Err(NetlistError::Parse {
            line: line_no,
            message: format!("unit directive `{line}` requires a scale and a unit"),
        });
    }
    let scale = parse_value(tokens[1], line_no)?;
    let unit = tokens[2].to_ascii_uppercase();
    if !accepted.contains(&unit.as_str()) {
        return Err(NetlistError::Parse {
            line: line_no,
            message: format!("unsupported unit `{}`", tokens[2]),
        });
    }
    let unit_factor = match unit.as_str() {
        "OHM" => 1.0,
        "KOHM" => 1e3,
        "FF" => 1e-15,
        "PF" => 1e-12,
        "NF" => 1e-9,
        "UF" => 1e-6,
        "F" => 1.0,
        _ => 1.0,
    };
    Ok(scale * unit_factor)
}

fn parse_d_net<'a, I>(
    lines: &mut std::iter::Peekable<I>,
    name: String,
    declared_total_cap: f64,
    r_unit: f64,
    c_unit: f64,
) -> Result<SpefNet>
where
    I: Iterator<Item = (usize, &'a str)>,
{
    let mut section = Section::Preamble;
    let mut driver: Option<String> = None;
    let mut outputs: Vec<String> = Vec::new();
    let mut caps: Vec<(usize, String, f64)> = Vec::new();
    let mut branches: Vec<BranchCard> = Vec::new();

    for (idx, raw) in lines.by_ref() {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let upper = line.to_ascii_uppercase();
        if upper.starts_with("*END") {
            let input = driver.ok_or(NetlistError::Parse {
                line: line_no,
                message: format!("net `{name}` has no *I driver pin"),
            })?;
            let tree = build_tree(&input, &branches, &caps, &outputs)?;
            return Ok(SpefNet {
                name,
                declared_total_cap,
                tree,
            });
        }
        if upper.starts_with("*CONN") {
            section = Section::Conn;
            continue;
        }
        if upper.starts_with("*CAP") {
            section = Section::Cap;
            continue;
        }
        if upper.starts_with("*RES") {
            section = Section::Res;
            continue;
        }
        if upper.starts_with("*I ") || upper.starts_with("*P ") {
            if section != Section::Conn {
                return Err(NetlistError::Parse {
                    line: line_no,
                    message: "pin declarations must appear inside *CONN".into(),
                });
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            if tokens.len() < 3 {
                return Err(NetlistError::Parse {
                    line: line_no,
                    message: "pin declaration requires a name and a direction".into(),
                });
            }
            let pin = tokens[1].to_string();
            match tokens[2].to_ascii_uppercase().as_str() {
                "I" => {
                    if driver.replace(pin).is_some() {
                        return Err(NetlistError::NotATree {
                            message: format!("net `{name}` declares more than one driver"),
                        });
                    }
                }
                "O" => outputs.push(pin),
                other => {
                    return Err(NetlistError::Parse {
                        line: line_no,
                        message: format!("unknown pin direction `{other}`"),
                    });
                }
            }
            continue;
        }

        match section {
            Section::Cap => {
                let tokens: Vec<&str> = line.split_whitespace().collect();
                match tokens.len() {
                    3 => {
                        let value = parse_value(tokens[2], line_no)? * c_unit;
                        caps.push((line_no, tokens[1].to_string(), value));
                    }
                    4 => {
                        return Err(NetlistError::FloatingCapacitor { line: line_no });
                    }
                    _ => {
                        return Err(NetlistError::Parse {
                            line: line_no,
                            message: "*CAP entry requires: index node value".into(),
                        });
                    }
                }
            }
            Section::Res => {
                let tokens: Vec<&str> = line.split_whitespace().collect();
                if tokens.len() < 4 {
                    return Err(NetlistError::Parse {
                        line: line_no,
                        message: "*RES entry requires: index node node value".into(),
                    });
                }
                let value = parse_value(tokens[3], line_no)? * r_unit;
                branches.push(BranchCard::new(
                    line_no,
                    tokens[1].to_string(),
                    tokens[2].to_string(),
                    value,
                    0.0,
                    false,
                ));
            }
            Section::Conn | Section::Preamble => {
                return Err(NetlistError::Parse {
                    line: line_no,
                    message: format!("unexpected line `{line}` in D_NET section"),
                });
            }
        }
    }

    Err(NetlistError::Parse {
        line: 0,
        message: format!("net `{name}` is missing its *END line"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_core::moments::characteristic_times;

    const SAMPLE: &str = r#"
*SPEF "IEEE 1481-1998"
*DESIGN "repro"
*R_UNIT 1 OHM
*C_UNIT 1 PF

*D_NET net1 0.022
*CONN
*I buf:Z I
*P ff1:CK O
*P ff2:CK O
*CAP
1 n1 0.002
2 ff1:CK 0.007
3 ff2:CK 0.013
*RES
1 buf:Z n1 15.0
2 n1 ff1:CK 8.0
3 n1 ff2:CK 3.0
*END
"#;

    #[test]
    fn parses_sample_net() {
        let nets = parse_spef(SAMPLE).unwrap();
        assert_eq!(nets.len(), 1);
        let net = &nets[0];
        assert_eq!(net.name, "net1");
        assert!((net.declared_total_cap - 0.022e-12).abs() < 1e-20);
        assert_eq!(net.tree.node_count(), 4);
        let total = net.tree.total_capacitance().value();
        assert!((total - 0.022e-12).abs() < 1e-20);
        let outs: Vec<String> = net
            .tree
            .outputs()
            .map(|id| net.tree.name(id).unwrap().to_string())
            .collect();
        assert!(outs.contains(&"ff1:CK".to_string()));
        assert!(outs.contains(&"ff2:CK".to_string()));
    }

    #[test]
    fn characteristic_times_computable_from_spef() {
        let net = parse_spef_net(SAMPLE, "net1").unwrap();
        let out = net.tree.node_by_name("ff1:CK").unwrap();
        let t = characteristic_times(&net.tree, out).unwrap();
        assert!(t.satisfies_ordering());
        assert!(t.t_d.value() > 0.0);
    }

    #[test]
    fn missing_net_name_is_reported() {
        assert!(matches!(
            parse_spef_net(SAMPLE, "does_not_exist"),
            Err(NetlistError::UnknownInput { .. })
        ));
    }

    #[test]
    fn kohm_and_ff_units_are_scaled() {
        let text = r#"
*R_UNIT 1 KOHM
*C_UNIT 1 FF
*D_NET n 10
*CONN
*I drv I
*P load O
*CAP
1 load 10
*RES
1 drv load 2
*END
"#;
        let net = parse_spef_net(text, "n").unwrap();
        let load = net.tree.node_by_name("load").unwrap();
        assert!((net.tree.resistance_from_input(load).unwrap().value() - 2000.0).abs() < 1e-9);
        assert!((net.tree.total_capacitance().value() - 10e-15).abs() < 1e-26);
    }

    #[test]
    fn coupling_caps_are_rejected() {
        let text = r#"
*D_NET n 1
*CONN
*I drv I
*P load O
*CAP
1 load other:pin 0.5
*RES
1 drv load 2
*END
"#;
        assert!(matches!(
            parse_spef(text),
            Err(NetlistError::FloatingCapacitor { .. })
        ));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let text = r#"
*D_NET n 1
*CONN
*I a I
*I b I
*CAP
1 x 1
*RES
1 a x 2
*END
"#;
        assert!(matches!(
            parse_spef(text),
            Err(NetlistError::NotATree { .. })
        ));
    }

    #[test]
    fn missing_driver_rejected() {
        let text = r#"
*D_NET n 1
*CONN
*P load O
*CAP
1 load 1
*RES
1 drv load 2
*END
"#;
        assert!(matches!(parse_spef(text), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn missing_end_rejected() {
        let text = r#"
*D_NET n 1
*CONN
*I drv I
*CAP
1 load 1
*RES
1 drv load 2
"#;
        assert!(matches!(parse_spef(text), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn empty_document_rejected() {
        assert!(matches!(
            parse_spef("// nothing here\n"),
            Err(NetlistError::Empty)
        ));
    }

    #[test]
    fn multiple_nets_parse_independently() {
        let text = format!("{SAMPLE}\n{}", SAMPLE.replace("net1", "net2"));
        let nets = parse_spef(&text).unwrap();
        assert_eq!(nets.len(), 2);
        assert_eq!(nets[1].name, "net2");
    }
}
