//! # rctree-netlist
//!
//! Interchange formats for RC trees: a SPICE-subset deck parser/writer, a
//! SPEF-lite parasitic parser (how a modern flow would feed extracted nets
//! into the Penfield–Rubinstein analysis), and a parser/printer for the
//! paper's own `URC`/`WB`/`WC` wiring-algebra notation (Eq. 18).
//!
//! ```
//! use rctree_netlist::spice::parse_spice;
//! use rctree_core::moments::characteristic_times;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let deck = "\
//! R1 in  n1 15
//! C1 n1  0  2
//! RB n1  ns 8
//! CB ns  0  7
//! U1 n1  n2 3 4
//! C2 n2  0  9
//! .output n2
//! ";
//! let tree = parse_spice(deck)?;
//! let out = tree.node_by_name("n2")?;
//! let times = characteristic_times(&tree, out)?;
//! assert!((times.t_p.value() - 419.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod error;
pub mod exprfmt;
pub mod spef;
pub mod spice;
pub mod stream;
pub mod value;

pub use crate::error::{NetlistError, Result};
pub use crate::exprfmt::{format_expr, parse_expr};
pub use crate::spef::{parse_spef, parse_spef_deck, parse_spef_net, SpefNet};
pub use crate::spice::{parse_spice, write_spice};
pub use crate::stream::{parse_spef_read, SpefReader};

#[cfg(test)]
mod tests {
    #[test]
    fn error_type_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::NetlistError>();
        assert_send_sync::<crate::SpefNet>();
    }
}
