//! Error types for netlist parsing and writing.

use std::fmt;

/// Errors produced while parsing or emitting netlists.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A syntax error at a specific line of the input.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// The offending token, when one can be singled out.  Kept as a
        /// structured field (not just interpolated into `message`) so that
        /// tools wrapping the parser can point at the exact text span.
        token: Option<String>,
        /// Description of the problem.
        message: String,
    },
    /// The element graph described by the netlist is not an RC tree rooted
    /// at the input (cycle, disconnected node, or multiple drivers).
    NotATree {
        /// Description of the structural violation.
        message: String,
    },
    /// A capacitor was connected between two non-ground nodes, which an RC
    /// tree cannot represent.
    FloatingCapacitor {
        /// 1-based line number of the offending element.
        line: usize,
    },
    /// The netlist did not define any elements.
    Empty,
    /// An I/O failure while reading a streamed netlist source.
    ///
    /// The underlying `std::io::Error` is captured as its display text so
    /// this type stays `Clone + PartialEq`.
    Io {
        /// Display text of the underlying I/O error.
        message: String,
    },
    /// The declared input node never appears in any element.
    UnknownInput {
        /// Name of the missing input node.
        name: String,
    },
    /// An error propagated from the core crate while building the tree.
    Core(rctree_core::CoreError),
}

impl NetlistError {
    /// A [`NetlistError::Parse`] with no offending token singled out.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        NetlistError::Parse {
            line,
            token: None,
            message: message.into(),
        }
    }

    /// A [`NetlistError::Parse`] pointing at a specific offending token.
    pub fn parse_at(line: usize, token: impl Into<String>, message: impl Into<String>) -> Self {
        NetlistError::Parse {
            line,
            token: Some(token.into()),
            message: message.into(),
        }
    }
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Parse {
                line,
                token: Some(token),
                message,
            } => write!(f, "line {line}: {message} (near `{token}`)"),
            NetlistError::Parse {
                line,
                token: None,
                message,
            } => write!(f, "line {line}: {message}"),
            NetlistError::NotATree { message } => write!(f, "not an RC tree: {message}"),
            NetlistError::FloatingCapacitor { line } => write!(
                f,
                "line {line}: capacitor must connect a node to ground in an RC tree"
            ),
            NetlistError::Empty => write!(f, "netlist contains no elements"),
            NetlistError::Io { message } => write!(f, "i/o error: {message}"),
            NetlistError::UnknownInput { name } => {
                write!(f, "input node `{name}` does not appear in any element")
            }
            NetlistError::Core(e) => write!(f, "tree construction failed: {e}"),
        }
    }
}

impl std::error::Error for NetlistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetlistError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rctree_core::CoreError> for NetlistError {
    fn from(e: rctree_core::CoreError) -> Self {
        NetlistError::Core(e)
    }
}

impl From<std::io::Error> for NetlistError {
    fn from(e: std::io::Error) -> Self {
        NetlistError::Io {
            message: e.to_string(),
        }
    }
}

/// Convenience alias used throughout the netlist crate.
pub type Result<T> = std::result::Result<T, NetlistError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_meaningful() {
        assert!(NetlistError::parse(3, "bad token")
            .to_string()
            .contains("line 3"));
        let at = NetlistError::parse_at(4, "0.0x", "invalid numeric literal");
        assert!(at.to_string().contains("line 4"));
        assert!(at.to_string().contains("`0.0x`"));
        assert!(NetlistError::Empty.to_string().contains("no elements"));
        assert!(NetlistError::FloatingCapacitor { line: 7 }
            .to_string()
            .contains("ground"));
        assert!(NetlistError::UnknownInput { name: "vin".into() }
            .to_string()
            .contains("vin"));
        assert!(NetlistError::NotATree {
            message: "cycle".into()
        }
        .to_string()
        .contains("cycle"));
    }

    #[test]
    fn core_error_converts_with_source() {
        let e: NetlistError = rctree_core::CoreError::NoCapacitance.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
