//! Numeric literals with SPICE-style engineering suffixes.
//!
//! SPICE decks write `1.5k`, `0.04p`, `3meg` and so on.  This module parses
//! such literals into plain `f64` values in base SI units.

use crate::error::{NetlistError, Result};

/// Parses a numeric literal with an optional SPICE engineering suffix.
///
/// Recognized suffixes (case-insensitive): `f` (1e-15), `p` (1e-12),
/// `n` (1e-9), `u` (1e-6), `m` (1e-3), `k` (1e3), `meg` (1e6), `g` (1e9),
/// `t` (1e12).  Any trailing unit letters after the suffix (e.g. `pF`,
/// `kOhm`) are ignored, matching SPICE behaviour.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] if the literal has no leading number.
pub fn parse_value(token: &str, line: usize) -> Result<f64> {
    let lower = token.trim().to_ascii_lowercase();
    // Split the leading numeric part from the suffix.
    let split = lower
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(lower.len());
    // Careful with scientific notation: an `e` followed by digits/sign is
    // part of the number, but a bare trailing `e` is not a valid suffix.
    let (mut num_part, mut suffix) = lower.split_at(split);
    // Handle the case where the numeric part ends with 'e' that actually
    // begins an exponent that was cut (e.g. "1e-3"): the find above only
    // triggers on the first non-numeric char, and '-'/'+' are allowed, so
    // "1e-3" stays intact.  But "1e" alone would leave a dangling 'e'.
    if num_part.ends_with('e') {
        num_part = &num_part[..num_part.len() - 1];
        suffix = &lower[split - 1..];
    }
    let base: f64 = num_part.parse().map_err(|_| {
        NetlistError::parse_at(
            line,
            token.trim(),
            format!("invalid numeric literal `{token}`"),
        )
    })?;
    let mult = if suffix.starts_with("meg") {
        1e6
    } else {
        match suffix.chars().next() {
            None => 1.0,
            Some('f') => 1e-15,
            Some('p') => 1e-12,
            Some('n') => 1e-9,
            Some('u') => 1e-6,
            Some('m') => 1e-3,
            Some('k') => 1e3,
            Some('g') => 1e9,
            Some('t') => 1e12,
            // Unknown suffix letters (e.g. a unit like "ohm") are ignored.
            Some(_) => 1.0,
        }
    };
    Ok(base * mult)
}

/// Formats a value in engineering notation with the given unit, choosing a
/// convenient SI prefix.
pub fn format_value(value: f64, unit: &str) -> String {
    let abs = value.abs();
    let (scaled, prefix) = if abs == 0.0 {
        (0.0, "")
    } else if abs >= 1e9 {
        (value / 1e9, "G")
    } else if abs >= 1e6 {
        (value / 1e6, "M")
    } else if abs >= 1e3 {
        (value / 1e3, "k")
    } else if abs >= 1.0 {
        (value, "")
    } else if abs >= 1e-3 {
        (value * 1e3, "m")
    } else if abs >= 1e-6 {
        (value * 1e6, "u")
    } else if abs >= 1e-9 {
        (value * 1e9, "n")
    } else if abs >= 1e-12 {
        (value * 1e12, "p")
    } else {
        (value * 1e15, "f")
    };
    format!("{scaled}{prefix}{unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_numbers() {
        assert_eq!(parse_value("15", 1).unwrap(), 15.0);
        assert_eq!(parse_value("0.04", 1).unwrap(), 0.04);
        assert_eq!(parse_value("-3.5", 1).unwrap(), -3.5);
        assert_eq!(parse_value("1e-3", 1).unwrap(), 1e-3);
        assert_eq!(parse_value("2.5e6", 1).unwrap(), 2.5e6);
    }

    /// Relative-error comparison for scaled literals (the multiplication by
    /// the suffix factor rounds in the last bit).
    fn close(a: f64, b: f64) {
        assert!((a - b).abs() <= 1e-12 * b.abs().max(1e-300), "{a} vs {b}");
    }

    #[test]
    fn engineering_suffixes() {
        close(parse_value("1k", 1).unwrap(), 1000.0);
        close(parse_value("0.04p", 1).unwrap(), 0.04e-12);
        close(parse_value("30n", 1).unwrap(), 30e-9);
        close(parse_value("2u", 1).unwrap(), 2e-6);
        close(parse_value("5m", 1).unwrap(), 5e-3);
        close(parse_value("3meg", 1).unwrap(), 3e6);
        close(parse_value("2G", 1).unwrap(), 2e9);
        close(parse_value("1T", 1).unwrap(), 1e12);
        close(parse_value("7f", 1).unwrap(), 7e-15);
    }

    #[test]
    fn unit_letters_after_suffix_are_ignored() {
        close(parse_value("0.01pF", 1).unwrap(), 0.01e-12);
        close(parse_value("180ohm", 1).unwrap(), 180.0);
        close(parse_value("1.5kOhm", 1).unwrap(), 1500.0);
    }

    #[test]
    fn invalid_literals_rejected() {
        assert!(parse_value("abc", 3).is_err());
        assert!(parse_value("", 3).is_err());
        match parse_value("xyz", 9) {
            Err(NetlistError::Parse { line, token, .. }) => {
                assert_eq!(line, 9);
                assert_eq!(token.as_deref(), Some("xyz"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn formatting_picks_prefixes() {
        assert_eq!(format_value(0.0, "F"), "0F");
        assert_eq!(format_value(1500.0, "Ohm"), "1.5kOhm");
        assert_eq!(format_value(0.05e-12, "F"), "50fF");
        assert_eq!(format_value(2e-9, "s"), "2ns");
        assert_eq!(format_value(3.0, "Ohm"), "3Ohm");
        assert_eq!(format_value(5e6, "Hz"), "5MHz");
        assert_eq!(format_value(7e9, "Hz"), "7GHz");
        assert_eq!(format_value(2e-6, "F"), "2uF");
        assert_eq!(format_value(4e-3, "F"), "4mF");
        assert_eq!(format_value(3e-15, "F"), "3fF");
    }
}
