//! Streaming SPEF-lite ingestion in bounded memory.
//!
//! [`crate::parse_spef_deck`] wants the whole document resident as one
//! `&str` before the byte-offset splitter can hand out section subslices.
//! At `10^6` nets that is hundreds of megabytes of text held alive for the
//! duration of the parse — pure overhead, since each `*D_NET` section is
//! parsed independently and discarded.  [`SpefReader`] removes it: the
//! document is consumed from any [`Read`] source in fixed-size chunks, a
//! carry-over buffer stitches the partial line at each chunk boundary, and
//! completed `*D_NET` sections are parsed (in parallel batches via
//! `rctree-par`) as soon as their `*END` arrives.  Peak memory is
//! `O(chunk + largest section + one parsed batch)` regardless of deck
//! size.
//!
//! # Equivalence with the whole-text parsers
//!
//! [`parse_spef_read`] is pinned **byte-identical** to
//! [`crate::parse_spef_deck`] on the same bytes (the `streaming_seams`
//! integration suite sweeps chunk sizes of 1–64 bytes so every seam —
//! mid-line, mid-section, mid-CRLF — is exercised):
//!
//! * the line splitter reproduces `str::lines` exactly (trailing `\n`
//!   stripped, a `\r` before it stripped, final unterminated line kept);
//! * absolute 1-based line numbers appear in every error;
//! * unit directives apply in document order, each section capturing the
//!   scales in effect at its header;
//! * a section left open at end of input is parsed anyway and reports its
//!   missing `*END` at the `*D_NET` header;
//! * error *ordering* matches: a malformed top-level line (unit directive
//!   or `*D_NET` header) anywhere in the document is reported in
//!   preference to any section-body error, because the whole-text path
//!   scans the full document before parsing any section.  The streaming
//!   path replicates this by continuing to scan (without parsing) to end
//!   of input once a section has failed.
//!
//! The only inputs the streaming path rejects that the `&str` entry points
//! cannot even express are non-UTF-8 bytes ([`NetlistError::Parse`] at the
//! offending line) and I/O failures ([`NetlistError::Io`]).

use std::collections::VecDeque;
use std::io::Read;

use crate::error::{NetlistError, Result};
use crate::spef::{parse_d_net, strip_comment, SpefNet, Units};

/// Default chunk size: large enough to amortise syscalls, small enough
/// that a reader never holds a meaningful fraction of a big deck.
const DEFAULT_CHUNK: usize = 1 << 20;

/// How many completed sections [`SpefReader::next_nets`] parses per batch.
/// Small enough to bound memory, large enough to keep the worker pool fed.
const PARSE_BATCH: usize = 512;

/// A completed `*D_NET` section awaiting parsing: the scanned header plus
/// the body text (every line after the header through `*END`, when
/// present), with the line numbering anchor needed for absolute error
/// positions.
#[derive(Debug, Clone)]
struct RawSection {
    name: String,
    declared_total_cap: f64,
    r_unit: f64,
    c_unit: f64,
    /// 1-based line number of the `*D_NET` header.
    header_line: usize,
    /// Body lines, newline-separated, `\r` already stripped.
    body: String,
}

impl RawSection {
    fn parse(&self) -> Result<SpefNet> {
        // The body's first line is document line `header_line + 1`;
        // `parse_d_net` reports `idx + 1`, so enumerate from the header.
        let mut lines = self
            .body
            .lines()
            .enumerate()
            .map(|(k, raw)| (self.header_line + k, raw));
        parse_d_net(
            &mut lines,
            self.name.clone(),
            self.header_line,
            self.declared_total_cap,
            self.r_unit,
            self.c_unit,
        )
    }
}

/// A chunked, bounded-memory reader of SPEF-lite decks.
///
/// Feed it any [`Read`] source and pull parsed nets in document order with
/// [`SpefReader::next_nets`], or use the one-shot [`parse_spef_read`].
/// See the module docs for the equivalence guarantees.
#[derive(Debug)]
pub struct SpefReader<R> {
    source: R,
    chunk_size: usize,
    /// Bytes of the line(s) not yet terminated by `\n` — the carry-over
    /// across chunk boundaries.  Never holds more than one line plus one
    /// chunk.
    carry: Vec<u8>,
    /// 1-based number of the last line handed to the scanner.
    line_no: usize,
    units: Units,
    /// The section currently accumulating body lines, if any.
    open: Option<RawSection>,
    /// Completed sections not yet returned.
    ready: VecDeque<RawSection>,
    /// End of input reached and fully processed.
    done: bool,
}

impl<R: Read> SpefReader<R> {
    /// A reader with the default chunk size (1 MiB).
    pub fn new(source: R) -> Self {
        Self::with_chunk_size(source, DEFAULT_CHUNK)
    }

    /// A reader with an explicit chunk size (minimum 1 byte).  Tiny sizes
    /// are only useful for seam tests; throughput wants the default.
    pub fn with_chunk_size(source: R, chunk_size: usize) -> Self {
        SpefReader {
            source,
            chunk_size: chunk_size.max(1),
            carry: Vec::new(),
            line_no: 0,
            units: Units::default(),
            open: None,
            ready: VecDeque::new(),
            done: false,
        }
    }

    /// Number of input lines consumed so far.
    pub fn lines_read(&self) -> usize {
        self.line_no
    }

    /// Scans one complete line, exactly as `split_deck` interprets it.
    fn scan_line(&mut self, raw: &str) -> Result<()> {
        self.line_no += 1;
        let line = strip_comment(raw);
        if let Some(section) = self.open.as_mut() {
            // Every line of an open section — stray headers and unit
            // directives included — belongs to its body.
            section.body.push_str(raw);
            section.body.push('\n');
            if line.to_ascii_uppercase().starts_with("*END") {
                self.ready
                    .push_back(self.open.take().expect("section is open"));
            }
            return Ok(());
        }
        if line.is_empty() {
            return Ok(());
        }
        if let Some((name, declared_total_cap)) = self.units.scan_top_level(line, self.line_no)? {
            self.open = Some(RawSection {
                name,
                declared_total_cap,
                r_unit: self.units.r,
                c_unit: self.units.c,
                header_line: self.line_no,
                body: String::new(),
            });
        }
        Ok(())
    }

    /// Drains every complete line out of the carry buffer.
    fn drain_carry_lines(&mut self) -> Result<()> {
        let mut start = 0usize;
        while let Some(nl) = self.carry[start..].iter().position(|&b| b == b'\n') {
            let end = start + nl;
            let mut line = &self.carry[start..end];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            let text = std::str::from_utf8(line)
                .map_err(|_| NetlistError::parse(self.line_no + 1, "input is not valid UTF-8"))?;
            // Borrow dance: the line borrows `carry`, so copy out the
            // (short) text before scanning mutates `self`.
            let owned;
            let text = if self.open.is_some() || !strip_comment(text).is_empty() {
                owned = text.to_string();
                owned.as_str()
            } else {
                ""
            };
            self.scan_line(text)?;
            start = end + 1;
        }
        self.carry.drain(..start);
        Ok(())
    }

    /// Pulls the next completed raw section, reading more chunks as
    /// needed.  `Ok(None)` at end of input.  Top-level scan errors, UTF-8
    /// errors and I/O errors are terminal.
    fn next_raw_section(&mut self) -> Result<Option<RawSection>> {
        loop {
            if let Some(section) = self.ready.pop_front() {
                return Ok(Some(section));
            }
            if self.done {
                return Ok(None);
            }
            let mut chunk_span = rctree_obs::span("spef.chunk");
            let mut buf = vec![0u8; self.chunk_size];
            let n = self.source.read(&mut buf).map_err(|e| {
                self.done = true;
                NetlistError::from(e)
            })?;
            chunk_span.attr_u64("bytes", n as u64);
            if n == 0 {
                // End of input: the carry holds the final unterminated
                // line, if any (exactly the line `str::lines` would still
                // yield), and an open section is parsed as-is so its
                // missing `*END` is reported at the header.
                if !self.carry.is_empty() {
                    // A trailing `\r` stays: `str::lines` strips `\r` only
                    // immediately before a `\n`.
                    let line = std::mem::take(&mut self.carry);
                    let text = String::from_utf8(line).map_err(|_| {
                        self.done = true;
                        NetlistError::parse(self.line_no + 1, "input is not valid UTF-8")
                    })?;
                    if let Err(e) = self.scan_line(&text) {
                        self.done = true;
                        return Err(e);
                    }
                }
                if let Some(section) = self.open.take() {
                    self.ready.push_back(section);
                }
                self.done = true;
                continue;
            }
            self.carry.extend_from_slice(&buf[..n]);
            if let Err(e) = self.drain_carry_lines() {
                self.done = true;
                return Err(e);
            }
        }
    }

    /// Parses and returns the next batch of nets, in document order;
    /// `Ok(None)` at end of input.  Batches are parsed in parallel over
    /// `jobs` workers (0 = default pool size).
    ///
    /// Errors follow the [`crate::parse_spef_deck`] ordering: when a
    /// section body fails to parse, the rest of the input is still scanned
    /// and a top-level scan error found there wins over the section error.
    /// Any error is terminal for the reader.
    pub fn next_nets(&mut self, jobs: usize) -> Result<Option<Vec<SpefNet>>> {
        let mut raws = Vec::new();
        while raws.len() < PARSE_BATCH {
            match self.next_raw_section()? {
                Some(raw) => raws.push(raw),
                None => break,
            }
        }
        if raws.is_empty() {
            return Ok(None);
        }
        let mut batch_span = rctree_obs::span("spef.parse_batch");
        batch_span.attr_u64("nets", raws.len() as u64);
        let parsed: Result<Vec<SpefNet>> =
            rctree_par::par_map_indexed(jobs, &raws, |_, raw| raw.parse())
                .into_iter()
                .collect();
        drop(batch_span);
        match parsed {
            Ok(nets) => Ok(Some(nets)),
            Err(section_error) => {
                // Keep scanning (not parsing) to end of input: the
                // whole-text path scans the full document before parsing
                // any section, so a later top-level error outranks this
                // section error.
                loop {
                    match self.next_raw_section() {
                        Ok(Some(_)) => continue,
                        Ok(None) => {
                            self.done = true;
                            return Err(section_error);
                        }
                        Err(scan_error) => return Err(scan_error),
                    }
                }
            }
        }
    }

    /// Parses the whole source, collecting every net in document order.
    ///
    /// Identical results and errors to [`crate::parse_spef_deck`] on the
    /// same bytes, including [`NetlistError::Empty`] when the input holds
    /// no `*D_NET` at all — but without ever holding the full text.
    pub fn parse_all(&mut self, jobs: usize) -> Result<Vec<SpefNet>> {
        let mut nets = Vec::new();
        while let Some(batch) = self.next_nets(jobs)? {
            nets.extend(batch);
        }
        if nets.is_empty() {
            return Err(NetlistError::Empty);
        }
        Ok(nets)
    }
}

/// Parses a SPEF-lite deck from any [`Read`] source in bounded memory —
/// the streaming drop-in for [`crate::parse_spef_deck`].
///
/// # Errors
///
/// The same errors in the same order as [`crate::parse_spef_deck`] on the
/// same bytes, plus [`NetlistError::Io`] for source failures and a
/// [`NetlistError::Parse`] for non-UTF-8 input.
pub fn parse_spef_read<R: Read>(source: R, jobs: usize) -> Result<Vec<SpefNet>> {
    SpefReader::new(source).parse_all(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
*SPEF \"IEEE 1481-1998\"\n\
*R_UNIT 1 OHM\n\
*C_UNIT 1 PF\n\
*D_NET net1 0.022\n\
*CONN\n\
*I buf:Z I\n\
*P ff1:CK O\n\
*CAP\n\
1 n1 0.002\n\
2 ff1:CK 0.020\n\
*RES\n\
1 buf:Z n1 15.0\n\
2 n1 ff1:CK 8.0\n\
*END\n";

    #[test]
    fn streams_match_whole_text_parse() {
        let want = crate::parse_spef_deck(SAMPLE, 1).unwrap();
        for chunk in [1, 2, 3, 7, 64, DEFAULT_CHUNK] {
            let mut reader = SpefReader::with_chunk_size(SAMPLE.as_bytes(), chunk);
            assert_eq!(reader.parse_all(1).unwrap(), want, "chunk {chunk}");
        }
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(matches!(
            parse_spef_read("// nothing\n".as_bytes(), 1),
            Err(NetlistError::Empty)
        ));
        assert!(matches!(
            parse_spef_read("".as_bytes(), 1),
            Err(NetlistError::Empty)
        ));
    }

    #[test]
    fn io_failures_surface_as_io_errors() {
        struct Broken;
        impl Read for Broken {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        match parse_spef_read(Broken, 1) {
            Err(NetlistError::Io { message }) => assert!(message.contains("disk on fire")),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn non_utf8_input_is_a_parse_error_at_the_line() {
        let mut bytes = SAMPLE.as_bytes().to_vec();
        bytes.extend_from_slice(b"*D_NET bad \xFF\n");
        match parse_spef_read(&bytes[..], 1) {
            Err(NetlistError::Parse { line, .. }) => assert_eq!(line, 15),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
