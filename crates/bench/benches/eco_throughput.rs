//! ECO edit throughput: incremental re-analysis versus rebuild-and-rerun.
//!
//! This is the tentpole measurement of the incremental engine: a
//! 2^12-node H-tree (the paper's clock-distribution workload) absorbs a
//! seeded stream of edits, and after every edit the timing of the deepest
//! sink is re-queried.  Two engines race on identical streams:
//!
//! * **incremental** — one `EditableTree`; each edit patches the traversal
//!   cache and repairs the live characteristic-time state in
//!   `O(depth · log n)` (`O(depth + |subtree|)` for structural edits);
//! * **rebuild** — the pre-ECO workflow; each edit is followed by
//!   `RcTree::rebuild()` (from-scratch derived state) plus a full
//!   `BatchTimes::of` sweep, `O(n)` per edit.
//!
//! Before timing, both engines run the stream once and their final states
//! are asserted equal to 1e-9 relative, so the speedup is never bought
//! with drift.  Two phases are measured: single-capacitor tweaks (the hot
//! ECO op, and the acceptance target of ≥10x) and a mixed stream with
//! branch resizes, grafts and prunes.
//!
//! Environment knobs:
//!
//! * `ECO_LEVELS` — H-tree branching levels (default 11 → 4096 nodes);
//! * `ECO_EDITS`  — edits per timed phase (default 512);
//! * `ECO_ITERS`  — timed repetitions per engine, best-of (default 3).
//!
//! A machine-readable summary is written to
//! `target/BENCH_eco_throughput.json`.

use std::time::Instant;

use rctree_core::batch::BatchTimes;
use rctree_core::incremental::EditableTree;
use rctree_core::tree::{NodeId, RcTree};
use rctree_workloads::eco::{EcoStream, EcoStreamParams};
use rctree_workloads::htree::{h_tree, HTreeParams};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn workload(levels: usize) -> (RcTree, NodeId) {
    let (tree, leaves) = h_tree(HTreeParams {
        levels,
        ..HTreeParams::default()
    });
    let sink = *leaves.last().expect("H-tree has leaves");
    (tree, sink)
}

/// Runs `edits` stream steps on the incremental engine, querying the sink
/// after every edit; returns the last Elmore delay seen.
fn run_incremental(
    tree: &RcTree,
    sink: NodeId,
    params: EcoStreamParams,
    seed: u64,
    edits: usize,
    query_sink: bool,
) -> (EditableTree, f64) {
    let mut eco = EditableTree::new(tree.clone());
    let mut stream = EcoStream::new(params, seed);
    let mut last = 0.0;
    for _ in 0..edits {
        let edit = stream.next_edit(eco.tree());
        eco.apply(&edit).expect("generated edits are valid");
        last = if query_sink {
            // Node ids are stable while the stream is value-only.
            eco.elmore_delay(sink).expect("sink exists").value()
        } else {
            eco.times().t_p().value()
        };
    }
    (eco, last)
}

/// The same stream on the rebuild-and-rerun baseline: the edit is applied
/// (cheap), then the derived state is rebuilt from scratch and a full
/// batch sweep answers the query — the pre-incremental workflow.
fn run_rebuild(
    tree: &RcTree,
    sink: NodeId,
    params: EcoStreamParams,
    seed: u64,
    edits: usize,
    query_sink: bool,
) -> (EditableTree, f64) {
    let mut eco = EditableTree::new(tree.clone());
    let mut stream = EcoStream::new(params, seed);
    let mut last = 0.0;
    for _ in 0..edits {
        let edit = stream.next_edit(eco.tree());
        eco.apply(&edit).expect("generated edits are valid");
        let rebuilt = eco.tree().rebuild();
        let batch = BatchTimes::of(&rebuilt).expect("edited trees stay analysable");
        last = if query_sink {
            batch.elmore_delay(sink).expect("sink exists").value()
        } else {
            batch.t_p().value()
        };
    }
    (eco, last)
}

fn best_of<F: FnMut() -> f64>(iters: usize, mut f: F) -> f64 {
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

struct Phase {
    name: &'static str,
    incremental_eps: f64,
    rebuild_eps: f64,
    speedup: f64,
}

/// One measured scenario: an edit-stream shape plus the query performed
/// after each edit.
struct Scenario {
    name: &'static str,
    params: EcoStreamParams,
    seed: u64,
    edits: usize,
    iters: usize,
    query_sink: bool,
}

fn measure(tree: &RcTree, sink: NodeId, sc: &Scenario) -> Phase {
    let (params, seed, edits, query_sink) = (sc.params, sc.seed, sc.edits, sc.query_sink);
    // Correctness gate: identical final state on both engines.
    let (inc_state, inc_last) = run_incremental(tree, sink, params, seed, edits, query_sink);
    let (reb_state, reb_last) = run_rebuild(tree, sink, params, seed, edits, query_sink);
    assert_eq!(
        inc_state.tree(),
        reb_state.tree(),
        "{}: engines diverged structurally",
        sc.name
    );
    let rel = (inc_last - reb_last).abs() / reb_last.abs().max(1e-30);
    assert!(
        rel < 1e-9,
        "{}: query drifted ({inc_last} vs {reb_last})",
        sc.name
    );

    let inc_s = best_of(sc.iters, || {
        run_incremental(tree, sink, params, seed, edits, query_sink).1
    });
    let reb_s = best_of(sc.iters, || {
        run_rebuild(tree, sink, params, seed, edits, query_sink).1
    });
    Phase {
        name: sc.name,
        incremental_eps: edits as f64 / inc_s,
        rebuild_eps: edits as f64 / reb_s,
        speedup: reb_s / inc_s,
    }
}

fn main() {
    let levels = env_usize("ECO_LEVELS", 11);
    let edits = env_usize("ECO_EDITS", 512);
    let iters = env_usize("ECO_ITERS", 3);
    let (tree, sink) = workload(levels);
    let nodes = tree.node_count();

    println!("eco_throughput: {nodes}-node H-tree, {edits} edits/phase, best of {iters}");

    let single = measure(
        &tree,
        sink,
        &Scenario {
            name: "single_cap",
            params: EcoStreamParams::caps_only(),
            seed: 0xEC0,
            edits,
            iters,
            query_sink: true,
        },
    );
    let mixed = measure(
        &tree,
        sink,
        &Scenario {
            name: "mixed",
            params: EcoStreamParams::default(),
            seed: 0xEC1,
            edits,
            iters,
            query_sink: false,
        },
    );

    for phase in [&single, &mixed] {
        println!(
            "  {:<10} incremental {:>12.0} edits/s   rebuild {:>10.0} edits/s   speedup {:>7.1}x",
            phase.name, phase.incremental_eps, phase.rebuild_eps, phase.speedup
        );
    }

    // The acceptance bar: ≥10x on single-cap edits at the 2^12-node scale.
    if nodes >= 2048 {
        assert!(
            single.speedup >= 10.0,
            "single-cap speedup {:.1}x fell below the 10x acceptance bar",
            single.speedup
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"eco_throughput\",\n  \"nodes\": {nodes},\n  \"edits\": {edits},\n  \
         \"iters\": {iters},\n  \
         \"single_cap\": {{ \"incremental_edits_per_s\": {}, \"rebuild_edits_per_s\": {}, \
         \"speedup\": {} }},\n  \
         \"mixed\": {{ \"incremental_edits_per_s\": {}, \"rebuild_edits_per_s\": {}, \
         \"speedup\": {} }},\n  \"equivalent_to_1e9_rel\": true\n}}\n",
        single.incremental_eps,
        single.rebuild_eps,
        single.speedup,
        mixed.incremental_eps,
        mixed.rebuild_eps,
        mixed.speedup,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/BENCH_eco_throughput.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("  summary written to {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}
