//! Figure 10 regeneration cost: producing both complete tables (nine delay
//! rows and eleven voltage rows) for the Figure 7 network, starting either
//! from the prebuilt tree or from the textual Eq. (18) expression.

use criterion::{criterion_group, criterion_main, Criterion};
use rctree_bench::{fig10_delay_rows, fig10_voltage_rows};
use rctree_core::moments::characteristic_times;
use rctree_netlist::parse_expr;
use rctree_workloads::fig7::figure7_tree;

const FIG7_EXPR: &str =
    "(URC 15 0) WC (URC 0 2) WC (WB ((URC 8 0) WC (URC 0 7))) WC (URC 3 4) WC (URC 0 9)";

fn bench_fig10(c: &mut Criterion) {
    let (tree, out) = figure7_tree();
    c.bench_function("fig10_tables_from_tree", |b| {
        b.iter(|| {
            let times = characteristic_times(&tree, out).expect("analysable");
            (fig10_delay_rows(&times), fig10_voltage_rows(&times))
        })
    });

    c.bench_function("fig10_tables_from_expression_text", |b| {
        b.iter(|| {
            let times = parse_expr(std::hint::black_box(FIG7_EXPR))
                .expect("valid expression")
                .evaluate()
                .characteristic_times()
                .expect("analysable");
            (fig10_delay_rows(&times), fig10_voltage_rows(&times))
        })
    });
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
