//! Figure 13 regeneration cost: the full minterm sweep of the PLA line
//! (bounds at 0.7·V_DD for 2 … 100 minterms), plus the cost of a single
//! 100-minterm analysis through each construction route.

use criterion::{criterion_group, criterion_main, Criterion};
use rctree_bench::fig13_minterm_sweep;
use rctree_core::moments::characteristic_times;
use rctree_workloads::pla::PlaLine;

fn bench_fig13(c: &mut Criterion) {
    c.bench_function("fig13_full_minterm_sweep", |b| {
        b.iter(|| {
            fig13_minterm_sweep()
                .into_iter()
                .map(|m| {
                    let (tree, out) = PlaLine::new(m).tree();
                    let t = characteristic_times(&tree, out).expect("analysable");
                    let bounds = t.delay_bounds(0.7).expect("valid threshold");
                    (m, bounds.lower.value(), bounds.upper.value())
                })
                .collect::<Vec<_>>()
        })
    });

    c.bench_function("pla_100_minterms_via_tree", |b| {
        b.iter(|| {
            let (tree, out) = PlaLine::new(100).tree();
            characteristic_times(&tree, out).expect("analysable")
        })
    });
    c.bench_function("pla_100_minterms_via_twoport", |b| {
        b.iter(|| {
            PlaLine::new(100)
                .expr()
                .evaluate()
                .characteristic_times()
                .expect("analysable")
        })
    });
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
