//! All-outputs analysis at scale: the batch engine versus the per-output
//! loop.
//!
//! The paper's pitch is that the characteristic times are cheap enough to
//! compute "for every output" of a large MOS net.  This bench measures that
//! claim on H-tree clock networks with every leaf marked as an output
//! (2^6 … 2^12 sinks): `BatchTimes::of` covers all n nodes in one O(n)
//! sweep, while looping `characteristic_times` over the m outputs costs
//! O(n·m).  Throughput is reported in nodes per second so the near-linear
//! scaling of the batch engine — and the collapsing throughput of the loop —
//! is visible directly in the numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rctree_core::batch::BatchTimes;
use rctree_core::moments::characteristic_times;
use rctree_workloads::htree::{h_tree, HTreeParams};

fn bench_all_outputs_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_outputs");
    for levels in [6usize, 8, 10, 12] {
        let (tree, leaves) = h_tree(HTreeParams {
            levels,
            ..HTreeParams::default()
        });
        let nodes = tree.node_count();
        group.throughput(Throughput::Elements(nodes as u64));

        group.bench_with_input(
            BenchmarkId::new("batch_engine", format!("{}sinks", leaves.len())),
            &tree,
            |b, tree| {
                b.iter(|| {
                    let batch = BatchTimes::of(tree).expect("analysable");
                    leaves
                        .iter()
                        .map(|&leaf| batch.times(leaf).expect("valid node"))
                        .collect::<Vec<_>>()
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("per_output_loop", format!("{}sinks", leaves.len())),
            &tree,
            |b, tree| {
                b.iter(|| {
                    leaves
                        .iter()
                        .map(|&leaf| characteristic_times(tree, leaf).expect("analysable"))
                        .collect::<Vec<_>>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_all_outputs_scaling);
criterion_main!(benches);
