//! Symbolic sweep amortization: one polynomial-lane analysis answering N
//! scale points versus N materialized re-analyses.
//!
//! The tentpole measurement of the delay-algebra refactor, framed as a
//! what-if loop: given a signed-off deck, evaluate the timing report at N
//! global wire-scale points `(r, c)` — a margining sweep over a process
//! box.  Two engines race on an identical seeded deck and point set:
//!
//! * **symbolic** — one `Design::analyze_symbolic` pass computes every
//!   endpoint bound as a degree-≤2 polynomial in `(r, c)`; each point is
//!   then a constant-time `SymbolicAnalysis::report_at` evaluation (no
//!   tree walk at all);
//! * **serial** — the pre-algebra workflow: each point's scaled design is
//!   reconstructed from the nominal one ([`Design::materialize_corner`]
//!   with the point installed as a corner lane) and fully re-analysed
//!   with `analyze_with_jobs`.
//!
//! Before timing, every point's symbolic evaluation is asserted to agree
//! with its materialized oracle to 1e-9 relative on every endpoint bound
//! (the coefficient-identity gate — graph-level evaluation reassociates
//! coefficient cells, so the guarantee is 1e-9, not bitwise), and the
//! nominal evaluation `report_at(1, 1)` is asserted against the plain
//! scalar analysis the same way.  The amortization is never bought with
//! drift.
//!
//! Environment knobs:
//!
//! * `SYMBOLIC_NETS`   — nets in the seeded deck (default 1024);
//! * `SYMBOLIC_POINTS` — scale points N in the sweep (default 8);
//! * `SYMBOLIC_ITERS`  — timed repetitions per engine, best-of (default 3);
//! * `SYMBOLIC_FLOOR`  — minimum accepted speedup at N=8 (default 2.0).
//!
//! A machine-readable summary is written to
//! `target/BENCH_symbolic_sweep.json`.

use std::collections::HashMap;
use std::time::Instant;

use rctree_core::corner::CornerSet;
use rctree_core::units::Seconds;
use rctree_sta::{CellLibrary, Design, TimingReport};
use rctree_workloads::SpefDeckParams;

const THRESHOLD: f64 = 0.5;
const BUDGET: Seconds = Seconds::new(150e-9);
const REL_TOL: f64 = 1e-9;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&x: &f64| x > 0.0)
        .unwrap_or(default)
}

fn workload(nets: usize) -> Design {
    let params = SpefDeckParams {
        nets,
        ..SpefDeckParams::default()
    };
    Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", params.trees(0xC0))
        .expect("seeded deck builds a design")
}

/// N deterministic scale points spread over the `[0.8, 1.4] × [0.85, 1.25]`
/// box, traversed in opposite directions so no point has `r == c`.
fn sweep_points(n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|i| {
            let t = if n > 1 {
                i as f64 / (n - 1) as f64
            } else {
                0.5
            };
            (0.8 + 0.6 * t, 1.25 - 0.4 * t)
        })
        .collect()
}

/// The sweep points installed as corner lanes 1..=N, so the serial
/// baseline can materialize each point with `Design::materialize_corner`.
fn points_as_corners(points: &[(f64, f64)]) -> CornerSet {
    let mut set = CornerSet::nominal();
    for (k, &(r, c)) in points.iter().enumerate() {
        set.push(&format!("p{}", k + 1), r, c, 1.0)
            .expect("sweep points are finite and positive");
    }
    set
}

fn assert_reports_close(sym: &TimingReport, oracle: &TimingReport, label: &str) {
    assert_eq!(
        sym.endpoints.len(),
        oracle.endpoints.len(),
        "{label}: endpoint count diverged"
    );
    let by_name: HashMap<&str, (f64, f64)> = oracle
        .endpoints
        .iter()
        .map(|e| {
            (
                e.name.as_str(),
                (e.arrival.min.value(), e.arrival.max.value()),
            )
        })
        .collect();
    let close = |a: f64, b: f64| (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1e-30);
    for e in &sym.endpoints {
        let &(min, max) = by_name
            .get(e.name.as_str())
            .unwrap_or_else(|| panic!("{label}: endpoint {} missing from oracle", e.name));
        assert!(
            close(e.arrival.min.value(), min) && close(e.arrival.max.value(), max),
            "{label}: endpoint {} diverged beyond {REL_TOL:e} rel: \
             symbolic [{:e}, {:e}] vs oracle [{min:e}, {max:e}]",
            e.name,
            e.arrival.min.value(),
            e.arrival.max.value()
        );
    }
}

fn best_of<F: FnMut() -> f64>(iters: usize, mut f: F) -> f64 {
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// One sweep on the symbolic engine: a single polynomial-lane analysis,
/// then one `report_at` evaluation per point.  Returns the worst slack
/// over all points.
fn sweep_symbolic(design: &Design, points: &[(f64, f64)], jobs: usize) -> f64 {
    let sym = design
        .analyze_symbolic(THRESHOLD, BUDGET, jobs)
        .expect("symbolic analysis succeeds");
    points
        .iter()
        .map(|&(r, c)| sym.report_at(r, c).slack_against(BUDGET).value())
        .fold(f64::INFINITY, f64::min)
}

/// One sweep on the serial baseline: every point's scaled design is
/// reconstructed and fully analysed, N independent runs.
fn sweep_serial(design: &Design, n: usize, jobs: usize) -> f64 {
    let mut worst = f64::INFINITY;
    for lane in 1..=n {
        let report = design
            .materialize_corner(lane)
            .expect("lane index in range")
            .analyze_with_jobs(THRESHOLD, BUDGET, jobs)
            .expect("materialized point analyses");
        worst = worst.min(report.slack_against(BUDGET).value());
    }
    worst
}

fn main() {
    let nets = env_usize("SYMBOLIC_NETS", 1024);
    let n = env_usize("SYMBOLIC_POINTS", 8);
    let iters = env_usize("SYMBOLIC_ITERS", 3);
    let floor = env_f64("SYMBOLIC_FLOOR", 2.0);
    let jobs = rctree_par::default_jobs();

    let points = sweep_points(n);
    let mut design = workload(nets);
    design.set_corners(points_as_corners(&points));
    println!("symbolic_sweep: {nets}-net deck, N={n} scale points, {jobs} jobs, best of {iters}");

    // Coefficient-identity gate: the polynomial lane evaluated at each
    // sweep point agrees with the fully materialized oracle at that point,
    // and at (1, 1) with the plain scalar analysis, to 1e-9 relative.
    let sym = design
        .analyze_symbolic(THRESHOLD, BUDGET, jobs)
        .expect("symbolic analysis succeeds");
    let scalar = design
        .analyze_with_jobs(THRESHOLD, BUDGET, jobs)
        .expect("scalar analysis succeeds");
    assert_reports_close(&sym.report_at(1.0, 1.0), &scalar, "nominal (1, 1)");
    for (lane, &(r, c)) in points.iter().enumerate() {
        let oracle = design
            .materialize_corner(lane + 1)
            .expect("lane index in range")
            .analyze_with_jobs(THRESHOLD, BUDGET, jobs)
            .expect("materialized point analyses");
        assert_reports_close(
            &sym.report_at(r, c),
            &oracle,
            &format!("point p{} (r={r}, c={c})", lane + 1),
        );
    }

    let symbolic_s = best_of(iters, || sweep_symbolic(&design, &points, jobs));
    let serial_s = best_of(iters, || sweep_serial(&design, n, jobs));
    let speedup = serial_s / symbolic_s;

    println!(
        "  symbolic {:>9.2} ms/sweep   serial {:>9.2} ms/sweep   amortization {:>5.2}x",
        symbolic_s * 1e3,
        serial_s * 1e3,
        speedup
    );

    // The acceptance bar: an N=8 sweep through one symbolic analysis must
    // amortize to at least `floor` (default 2x) over 8 re-analyses.
    assert!(
        speedup >= floor,
        "N={n} amortization {speedup:.2}x fell below the {floor}x acceptance bar"
    );

    let json = format!(
        "{{\n  \"bench\": \"symbolic_sweep\",\n  \"nets\": {nets},\n  \"points\": {n},\n  \
         \"jobs\": {jobs},\n  \"iters\": {iters},\n  \
         \"symbolic_s_per_sweep\": {symbolic_s},\n  \"serial_s_per_sweep\": {serial_s},\n  \
         \"amortization\": {speedup},\n  \"floor\": {floor},\n  \
         \"identity_rel_tol\": {REL_TOL:e}\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/BENCH_symbolic_sweep.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("  summary written to {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}
