//! Sharded write-path scaling: ECO edits/s versus writer shard count.
//!
//! Starts one in-process `rctree-serve` instance per shard count over the
//! same generated deck and drives it with an ECO-only shard-crossing mix
//! (every connection's consecutive edits hop shards, so all writers stay
//! busy).  Publication cost per edit is dominated by the successor
//! snapshot's O(nets) view rebuild and the O(E log E) endpoint re-sort —
//! both shrink with the shard's net count — so edits/s must *rise* with
//! shard count even on a single core: the bench asserts **≥1.5x at 4
//! shards vs 1** and writes the shard-count trajectory to
//! `target/BENCH_serve_sharded.json`.
//!
//! Environment knobs:
//!
//! * `SHARD_NETS`  — deck size (default 2048);
//! * `SHARD_CONNS` — concurrent connections (default 4);
//! * `SHARD_REQS`  — ECO requests per connection (default 120).

use rctree_core::units::Seconds;
use rctree_serve::{run_load, ServeConfig, Server};
use rctree_sta::{CellLibrary, Design};
use rctree_workloads::{shard_crossing_mix, RequestMixParams, SpefDeckParams};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

struct Lap {
    shards: usize,
    elapsed_s: f64,
    edits: u64,
    edits_per_s: f64,
    requests_per_s: f64,
    p50_us: f64,
    p99_us: f64,
}

fn main() {
    let nets = env_usize("SHARD_NETS", 2048);
    let connections = env_usize("SHARD_CONNS", 4);
    let requests = env_usize("SHARD_REQS", 120);

    let trees = SpefDeckParams {
        nets,
        ..SpefDeckParams::default()
    }
    .trees(0x5AAD);
    println!(
        "serve_sharded: {nets}-net deck, {connections} connections x {requests} ECO requests, \
         shards 1 -> 4"
    );

    let mut laps: Vec<Lap> = Vec::new();
    for shards in [1usize, 2, 4] {
        let design = Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", trees.clone())
            .expect("deck builds");
        let mut config = ServeConfig::new(0.5, Seconds::new(500e-9), 1);
        config.shards = shards;
        let server = Server::start(design, &config, ("127.0.0.1", 0)).expect("server starts");
        assert_eq!(server.shard_count(), shards, "deck has enough components");
        let addr = server.local_addr();

        let params = RequestMixParams {
            requests_per_connection: requests,
            eco_fraction: 1.0,
            certify_budget: 400e-9,
        };
        let scripts =
            shard_crossing_mix(&trees, connections, &params, shards, 0xEC0 + shards as u64);
        let report = run_load(addr, &scripts).expect("load run");
        assert_eq!(
            report.protocol_errors, 0,
            "generated ECO edits must all apply at {shards} shards"
        );
        let edits = server.revision();
        assert!(edits > 0, "the mix committed edits");
        server.shutdown();
        server.join();

        let edits_per_s = edits as f64 / report.elapsed_s.max(1e-12);
        println!(
            "  {shards} shard(s): {edits_per_s:>8.0} edits/s  ({edits} edits in {:.2} s, \
             p50 {:>6.0} us, p99 {:>6.0} us)",
            report.elapsed_s, report.p50_us, report.p99_us
        );
        laps.push(Lap {
            shards,
            elapsed_s: report.elapsed_s,
            edits,
            edits_per_s,
            requests_per_s: report.queries_per_s,
            p50_us: report.p50_us,
            p99_us: report.p99_us,
        });
    }

    let single = laps[0].edits_per_s;
    let quad = laps.last().expect("laps").edits_per_s;
    let speedup = quad / single;
    println!("  4-shard speedup over 1 shard: {speedup:.2}x");
    assert!(
        speedup >= 1.5,
        "sharded write path must scale: got {speedup:.2}x (need >= 1.5x)"
    );

    let mut trajectory = String::new();
    for (i, lap) in laps.iter().enumerate() {
        if i > 0 {
            trajectory.push_str(",\n");
        }
        trajectory.push_str(&format!(
            "    {{ \"shards\": {}, \"edits\": {}, \"elapsed_s\": {}, \"edits_per_s\": {}, \
             \"requests_per_s\": {}, \"p50_us\": {}, \"p99_us\": {} }}",
            lap.shards,
            lap.edits,
            lap.elapsed_s,
            lap.edits_per_s,
            lap.requests_per_s,
            lap.p50_us,
            lap.p99_us
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"serve_sharded\",\n  \"nets\": {nets},\n  \
         \"connections\": {connections},\n  \"requests_per_connection\": {requests},\n  \
         \"speedup_4_over_1\": {speedup},\n  \"trajectory\": [\n{trajectory}\n  ]\n}}\n",
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/BENCH_serve_sharded.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("  summary written to {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}
