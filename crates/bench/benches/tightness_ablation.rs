//! Ablation: how tight are the bounds, and where does the tightness come
//! from?
//!
//! The paper remarks that the bounds "are very tight in the case where most
//! of the resistance is in the pullup".  This bench sweeps the ratio of
//! driver resistance to wire resistance on a fixed fan-out net and reports
//! (via Criterion's measurement of the full evaluation plus an eprinted
//! summary) the relative uncertainty of the 50% delay bounds, alongside the
//! cost of tightening the answer with exact simulation instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rctree_core::builder::RcTreeBuilder;
use rctree_core::moments::characteristic_times;
use rctree_core::tree::RcTree;
use rctree_core::units::{Farads, Ohms};
use rctree_sim::modal::ModalStepResponse;
use rctree_sim::network::LumpedNetwork;

/// Fan-out net with a parameterized driver/wire resistance split.
fn fanout_net(driver_ohms: f64, wire_ohms: f64) -> (RcTree, rctree_core::tree::NodeId) {
    let mut b = RcTreeBuilder::new();
    let drv = b
        .add_resistor(b.input(), "drv", Ohms::new(driver_ohms))
        .expect("valid");
    let stem = b
        .add_line(drv, "stem", Ohms::new(wire_ohms), Farads::from_pico(0.05))
        .expect("valid");
    let near = b
        .add_line(
            stem,
            "near",
            Ohms::new(wire_ohms / 4.0),
            Farads::from_pico(0.01),
        )
        .expect("valid");
    b.add_capacitance(near, Farads::from_pico(0.013))
        .expect("valid");
    let far = b
        .add_line(stem, "far", Ohms::new(wire_ohms), Farads::from_pico(0.04))
        .expect("valid");
    b.add_capacitance(far, Farads::from_pico(0.013))
        .expect("valid");
    b.mark_output(far).expect("valid");
    let tree = b.build().expect("valid");
    let out = tree.outputs().next().expect("one output");
    (tree, out)
}

fn bench_tightness(c: &mut Criterion) {
    let mut group = c.benchmark_group("tightness_vs_driver_share");
    eprintln!("driver/wire resistance ratio -> relative uncertainty of the 50% delay bounds");
    for &ratio in &[0.1_f64, 1.0, 10.0, 100.0] {
        let wire = 1_000.0;
        let (tree, out) = fanout_net(wire * ratio, wire);
        let times = characteristic_times(&tree, out).expect("analysable");
        let bounds = times.delay_bounds(0.5).expect("valid");
        eprintln!(
            "  ratio {ratio:>6.1}: uncertainty {:.1}%",
            100.0 * bounds.relative_uncertainty()
        );

        group.bench_with_input(BenchmarkId::new("bounds", ratio), &ratio, |b, _| {
            b.iter(|| {
                characteristic_times(&tree, out)
                    .expect("analysable")
                    .delay_bounds(0.5)
                    .expect("valid")
            })
        });
        group.bench_with_input(BenchmarkId::new("exact_modal", ratio), &ratio, |b, _| {
            let net = LumpedNetwork::from_tree(&tree, 8).expect("convertible");
            b.iter(|| {
                let modal = ModalStepResponse::new(&net).expect("solvable");
                let idx = net.index_of(out).expect("known").expect("not the input");
                modal.crossing_time(idx, 0.5).expect("reached")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tightness);
criterion_main!(benches);
