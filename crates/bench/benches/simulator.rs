//! Cost of the exact-response substrate (the Figure 11 reference): modal
//! decomposition and transient integration of the Figure 7 network and of a
//! mid-size PLA line, compared with the bound evaluation they validate.
//!
//! The point of the paper is exactly this gap: the bounds cost microseconds
//! while the exact solution costs many orders of magnitude more.

use criterion::{criterion_group, criterion_main, Criterion};
use rctree_core::moments::characteristic_times;
use rctree_sim::modal::ModalStepResponse;
use rctree_sim::network::LumpedNetwork;
use rctree_sim::transient::{simulate, InputSource, Method, TransientOptions};
use rctree_workloads::fig7::figure7_tree;
use rctree_workloads::pla::PlaLine;

fn bench_simulator(c: &mut Criterion) {
    let (fig7, fig7_out) = figure7_tree();
    let fig7_net = LumpedNetwork::from_tree(&fig7, 16).expect("convertible");

    c.bench_function("fig7_bounds_only", |b| {
        b.iter(|| {
            characteristic_times(&fig7, fig7_out)
                .expect("analysable")
                .delay_bounds(0.5)
                .expect("valid")
        })
    });
    c.bench_function("fig7_modal_decomposition_16seg", |b| {
        b.iter(|| ModalStepResponse::new(&fig7_net).expect("solvable"))
    });
    c.bench_function("fig7_transient_trapezoidal_16seg", |b| {
        b.iter(|| {
            simulate(
                &fig7_net,
                InputSource::Step,
                TransientOptions::new(1.0, 1000.0),
            )
            .expect("stable")
        })
    });
    c.bench_function("fig7_transient_backward_euler_16seg", |b| {
        b.iter(|| {
            simulate(
                &fig7_net,
                InputSource::Step,
                TransientOptions::new(1.0, 1000.0).with_method(Method::BackwardEuler),
            )
            .expect("stable")
        })
    });

    let (pla, _) = PlaLine::new(40).tree();
    let pla_net = LumpedNetwork::from_tree(&pla, 4).expect("convertible");
    c.bench_function("pla40_modal_decomposition_4seg", |b| {
        b.iter(|| ModalStepResponse::new(&pla_net).expect("solvable"))
    });
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
