//! Observability overhead on the deck-pipeline analyze loop: proves the
//! disabled path is free and measures the enabled path honestly.
//!
//! **Disabled-path budget (asserted).**  With no [`rctree_obs::Obs`]
//! runtime entered, every instrumented site costs one thread-local read.
//! The bench bounds that cost from above without trying to resolve a
//! sub-nanosecond difference between two noisy end-to-end timings:
//!
//! 1. `T` — the analyze-loop time per call (best-of, runtime disabled);
//! 2. `E` — the number of span events one analyze call emits, counted
//!    exactly by running one call under an entered runtime and reading
//!    `rctree_phase_total`;
//! 3. `C` — the per-event disabled cost, micro-measured over a tight
//!    loop of `span()` + two attrs + drop with no runtime entered.
//!
//! The acceptance bar is `E * C <= 2% of T`: even charging every event
//! its full micro-measured cost, instrumentation cannot eat more than
//! 2% of the analyze loop.  In practice `E` is O(spans) ≈ a handful per
//! call while `T` is milliseconds, so the margin is orders of magnitude.
//!
//! **Enabled-path cost (reported, not asserted).**  The same loop runs
//! with a runtime entered and the overhead ratio is printed and written
//! to the JSON — an honest number, but too noise-prone for a hard gate.
//!
//! Environment knobs:
//!
//! * `OBS_NETS`  — deck size (default 2000);
//! * `OBS_ITERS` — timed repetitions per path, best-of (default 5);
//! * `OBS_JOBS`  — worker count (default: `RCTREE_JOBS`, else available
//!   parallelism).
//!
//! A machine-readable summary is written to
//! `target/BENCH_obs_overhead.json`.

use std::io::Write as _;
use std::time::Instant;

use rctree_core::units::Seconds;
use rctree_sta::{CellLibrary, Design};
use rctree_workloads::deck::SpefDeckParams;

const THRESHOLD: f64 = 0.5;
const DRIVER_CELL: &str = "inv_4x";
const SEED: u64 = 0x0B5;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn best_of<T, F: FnMut() -> T>(iters: usize, mut f: F) -> f64 {
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let nets = env_usize("OBS_NETS", 2000);
    let iters = env_usize("OBS_ITERS", 5);
    let jobs = env_usize("OBS_JOBS", rctree_par::default_jobs());
    let budget = Seconds::from_nano(50.0);

    let trees = SpefDeckParams {
        nets,
        ..SpefDeckParams::default()
    }
    .trees(SEED);
    let design = Design::from_extracted(CellLibrary::nmos_1981(), DRIVER_CELL, trees)
        .expect("generated deck builds a design");

    // T: the analyze loop with the runtime disabled (the default state —
    // nothing entered on this thread or the pool workers).
    let disabled_s = best_of(iters, || {
        design
            .analyze_with_jobs(THRESHOLD, budget, jobs)
            .expect("analysis")
    });

    // E: span events per analyze call, counted exactly under a runtime.
    let events = {
        let obs = rctree_obs::Obs::new(rctree_obs::ObsConfig::default());
        {
            let _scope = obs.enter();
            design
                .analyze_with_jobs(THRESHOLD, budget, jobs)
                .expect("analysis");
        }
        obs.registry()
            .histogram_series("rctree_phase_duration_us")
            .iter()
            .map(|(_, snap)| snap.count)
            .sum::<u64>()
    };
    assert!(events > 0, "the analyze loop must hit instrumented sites");

    // C: per-event disabled cost — span create + two attrs + drop with no
    // runtime entered, amortised over a tight loop.
    let micro_rounds: u64 = 4_000_000;
    let start = Instant::now();
    for i in 0..micro_rounds {
        let mut span = rctree_obs::span("obs.noop");
        span.attr_u64("a", i);
        span.attr_u64("b", i);
        std::hint::black_box(&span);
    }
    let per_event_s = start.elapsed().as_secs_f64() / micro_rounds as f64;

    let charged_s = events as f64 * per_event_s;
    let charged_frac = charged_s / disabled_s;

    // Honest enabled measurement: the same loop under an entered runtime
    // (spans recorded, histograms fed, ring pushed).
    let obs = rctree_obs::Obs::new(rctree_obs::ObsConfig::default());
    let enabled_s = {
        let _scope = obs.enter();
        best_of(iters, || {
            design
                .analyze_with_jobs(THRESHOLD, budget, jobs)
                .expect("analysis")
        })
    };
    let enabled_overhead = enabled_s / disabled_s - 1.0;

    println!("obs_overhead: {nets} nets, {jobs} jobs, best of {iters}");
    println!(
        "  analyze (runtime disabled)  {:>10.3} ms",
        disabled_s * 1e3
    );
    println!(
        "  span events per call        {events:>10}  x {:.1} ns disabled cost",
        per_event_s * 1e9
    );
    println!(
        "  charged disabled overhead   {:>10.4} % of the loop (bar: 2 %)",
        charged_frac * 100.0
    );
    println!(
        "  analyze (runtime enabled)   {:>10.3} ms  ({:+.2} % vs disabled)",
        enabled_s * 1e3,
        enabled_overhead * 100.0
    );

    // The acceptance bar: instrumentation on the disabled path must cost
    // at most 2% of the analyze loop even when every event is charged
    // its full micro-measured cost.
    assert!(
        charged_frac <= 0.02,
        "disabled-path instrumentation charge is {:.4}% of the analyze loop (bar: 2%)",
        charged_frac * 100.0
    );

    let dir = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target"));
    let _ = std::fs::create_dir_all(dir);
    let json = format!(
        "{{\n  \"nets\": {nets},\n  \"jobs\": {jobs},\n  \"iters\": {iters},\n  \
         \"disabled_s\": {disabled_s},\n  \"events_per_call\": {events},\n  \
         \"disabled_event_ns\": {},\n  \"charged_disabled_fraction\": {charged_frac},\n  \
         \"enabled_s\": {enabled_s},\n  \"enabled_overhead_fraction\": {enabled_overhead}\n}}\n",
        per_event_s * 1e9
    );
    let path = dir.join("BENCH_obs_overhead.json");
    let mut file = std::fs::File::create(&path).expect("create summary");
    file.write_all(json.as_bytes()).expect("write summary");
    println!("  summary written to {}", path.display());
}
