//! Cost of evaluating the closed-form bounds themselves (Eqs. 8–17) and of
//! a full multi-output tree analysis — the quantities a timing tool would
//! evaluate millions of times per run.

use criterion::{criterion_group, criterion_main, Criterion};
use rctree_core::analysis::TreeAnalysis;
use rctree_core::moments::characteristic_times;
use rctree_core::units::Seconds;
use rctree_workloads::fig7::figure7_tree;
use rctree_workloads::htree::{h_tree, HTreeParams};

fn bench_bound_evaluation(c: &mut Criterion) {
    let (tree, out) = figure7_tree();
    let times = characteristic_times(&tree, out).expect("analysable");

    c.bench_function("delay_bounds_single_threshold", |b| {
        b.iter(|| {
            times
                .delay_bounds(std::hint::black_box(0.5))
                .expect("valid")
        })
    });
    c.bench_function("voltage_bounds_single_time", |b| {
        b.iter(|| {
            times
                .voltage_bounds(std::hint::black_box(Seconds::new(100.0)))
                .expect("valid")
        })
    });
    c.bench_function("certify_single_output", |b| {
        b.iter(|| {
            times
                .certify(std::hint::black_box(0.9), Seconds::new(900.0))
                .expect("valid")
        })
    });

    let (clock, _) = h_tree(HTreeParams {
        levels: 6,
        ..HTreeParams::default()
    });
    c.bench_function("tree_analysis_htree_64_leaves", |b| {
        b.iter(|| TreeAnalysis::of(&clock).expect("analysable"))
    });
    let analysis = TreeAnalysis::of(&clock).expect("analysable");
    c.bench_function("certify_all_htree_64_leaves", |b| {
        b.iter(|| {
            analysis
                .certify_all(0.9, Seconds::from_nano(5.0))
                .expect("valid")
        })
    });
}

criterion_group!(benches, bench_bound_evaluation);
criterion_main!(benches);
