//! End-to-end deck pipeline at ingestion scale: stream-generate a SPEF
//! deck to disk, stream-parse it back (chunked reader, the document text
//! never fully in memory), build the design, and analyze — reporting
//! per-stage times, nets/s, and the process peak RSS at every deck size.
//!
//! Two analysis paths run on every deck:
//!
//! * **arena** — [`Design::analyze_with_jobs`]: augmentation pre-resolved
//!   at `add_net` through the name interner, per-net arrays packed into
//!   one contiguous SoA arena, cached propagation topology;
//! * **baseline** — [`Design::analyze_rebuild_with_jobs`]: the preserved
//!   pre-PR path that re-resolves every name and rebuilds every per-net
//!   array and the topology on each call.
//!
//! The two reports are asserted **bit-identical** before timing means
//! anything, and at `>= 100_000` nets the arena path must be at least
//! 1.5x the baseline's nets/s — the acceptance bar for this optimisation.
//!
//! Environment knobs:
//!
//! * `DECK_NETS`        — single deck size (default 1000);
//! * `DECK_NETS_LIST`   — comma-separated sizes overriding `DECK_NETS`
//!   (e.g. `10000,100000,1000000` for the ROADMAP trajectory);
//! * `DECK_JOBS`        — worker count (default: available parallelism,
//!   at least 4);
//! * `DECK_ITERS`       — timed repetitions per path, best-of (default 3);
//! * `DECK_RSS_CEILING_MB` — when set, assert the process peak RSS
//!   (`VmHWM`) stays below this many MiB (the CI smoke gate).
//!
//! A machine-readable summary (one entry per size) is written to
//! `target/BENCH_deck_pipeline.json`.

use std::io::{BufWriter, Write as _};
use std::time::Instant;

use rctree_core::units::Seconds;
use rctree_netlist::parse_spef_read;
use rctree_sta::{CellLibrary, Design, TimingReport};
use rctree_workloads::deck::{render_spef_deck, SpefDeckParams};

const THRESHOLD: f64 = 0.5;
const DRIVER_CELL: &str = "inv_4x";
const SEED: u64 = 0xDECC;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Deck sizes to sweep: `DECK_NETS_LIST` wins, else a single `DECK_NETS`.
fn sizes() -> Vec<usize> {
    if let Ok(list) = std::env::var("DECK_NETS_LIST") {
        let sizes: Vec<usize> = list
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&n| n > 0)
            .collect();
        if !sizes.is_empty() {
            return sizes;
        }
    }
    vec![env_usize("DECK_NETS", 1000)]
}

/// Peak resident set size of this process in MiB (`VmHWM`, monotonic over
/// the process lifetime), or 0.0 where `/proc` is unavailable.
fn peak_rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().trim_end_matches("kB").trim().parse::<f64>().ok())
        .map_or(0.0, |kib| kib / 1024.0)
}

fn best_of<T, F: FnMut() -> T>(iters: usize, mut f: F) -> f64 {
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

struct SizeResult {
    nets: usize,
    nodes: usize,
    bytes: u64,
    gen_s: f64,
    parse_s: f64,
    build_s: f64,
    arena_s: f64,
    baseline_s: f64,
    peak_rss_mib: f64,
}

fn run_size(
    nets: usize,
    jobs: usize,
    iters: usize,
    budget: Seconds,
    dir: &std::path::Path,
) -> SizeResult {
    let params = SpefDeckParams {
        nets,
        ..SpefDeckParams::default()
    };
    let path = dir.join(format!("deck_pipeline_{nets}.spef"));

    // Stage 1: stream-generate the deck to disk (constant memory).
    let start = Instant::now();
    {
        let file = std::fs::File::create(&path).expect("create deck file");
        let mut out = BufWriter::new(file);
        render_spef_deck(&params, SEED, &mut out).expect("render deck");
        out.flush().expect("flush deck");
    }
    let gen_s = start.elapsed().as_secs_f64();
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

    // Stage 2: stream-parse it back (chunked reader — the file text is
    // never fully resident).
    let start = Instant::now();
    let parsed = {
        let file = std::fs::File::open(&path).expect("open deck file");
        parse_spef_read(file, jobs).expect("generated deck parses")
    };
    let parse_s = start.elapsed().as_secs_f64();
    let nodes: usize = parsed.iter().map(|n| n.tree.node_count()).sum();

    // Stage 3: design build (augmentation pre-resolved, names interned).
    let start = Instant::now();
    let design = Design::from_extracted(
        CellLibrary::nmos_1981(),
        DRIVER_CELL,
        parsed.into_iter().map(|n| (n.name, n.tree)),
    )
    .expect("generated deck builds a design");
    let build_s = start.elapsed().as_secs_f64();

    // Correctness gate: the arena path must be bit-identical to the
    // preserved string-keyed baseline before its timing means anything.
    let arena_report: TimingReport = design
        .analyze_with_jobs(THRESHOLD, budget, jobs)
        .expect("arena analysis");
    let baseline_report = design
        .analyze_rebuild_with_jobs(THRESHOLD, budget, jobs)
        .expect("baseline analysis");
    assert!(
        arena_report == baseline_report,
        "arena analysis differs from the string-keyed baseline at {nets} nets"
    );

    // Stage 4: steady-state analysis throughput, both paths.
    let arena_s = best_of(iters, || {
        design
            .analyze_with_jobs(THRESHOLD, budget, jobs)
            .expect("arena analysis")
    });
    let baseline_s = best_of(iters, || {
        design
            .analyze_rebuild_with_jobs(THRESHOLD, budget, jobs)
            .expect("baseline analysis")
    });

    let _ = std::fs::remove_file(&path);
    SizeResult {
        nets,
        nodes,
        bytes,
        gen_s,
        parse_s,
        build_s,
        arena_s,
        baseline_s,
        peak_rss_mib: peak_rss_mib(),
    }
}

fn main() {
    let iters = env_usize("DECK_ITERS", 3);
    let avail = rctree_par::available_parallelism();
    let jobs = env_usize("DECK_JOBS", avail.max(4));
    let budget = Seconds::from_nano(50.0);
    let dir = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target"));
    let _ = std::fs::create_dir_all(dir);

    let mut entries = Vec::new();
    println!("deck_pipeline: {jobs} workers (hardware {avail}), best of {iters}");
    for nets in sizes() {
        let r = run_size(nets, jobs, iters, budget, dir);
        let speedup = r.baseline_s / r.arena_s;
        println!(
            "  {:>9} nets / {:>9} nodes  ({:.1} MiB SPEF)",
            r.nets,
            r.nodes,
            r.bytes as f64 / (1024.0 * 1024.0)
        );
        println!(
            "    gen {:>9.3} s   parse {:>9.3} s ({:>10.0} nets/s)   build {:>9.3} s",
            r.gen_s,
            r.parse_s,
            r.nets as f64 / r.parse_s,
            r.build_s
        );
        println!(
            "    analyze/arena    {:>9.4} s  {:>12.1} nets/s",
            r.arena_s,
            r.nets as f64 / r.arena_s
        );
        println!(
            "    analyze/baseline {:>9.4} s  {:>12.1} nets/s",
            r.baseline_s,
            r.nets as f64 / r.baseline_s
        );
        println!(
            "    speedup {speedup:>10.2}x   peak RSS {:>8.1} MiB",
            r.peak_rss_mib
        );
        // The acceptance bar: at 1e5+ nets the interned/arena path must
        // beat the string-keyed baseline by 1.5x.
        if r.nets >= 100_000 {
            assert!(
                speedup >= 1.5,
                "arena path is only {speedup:.2}x the baseline at {} nets (need >= 1.5x)",
                r.nets
            );
        }
        entries.push(format!(
            "    {{ \"nets\": {}, \"nodes\": {}, \"spef_bytes\": {}, \"gen_s\": {}, \
             \"parse_s\": {}, \"parse_nets_per_s\": {}, \"build_s\": {}, \
             \"analyze_arena_s\": {}, \"arena_nets_per_s\": {}, \
             \"analyze_baseline_s\": {}, \"baseline_nets_per_s\": {}, \
             \"speedup\": {}, \"peak_rss_mib\": {} }}",
            r.nets,
            r.nodes,
            r.bytes,
            r.gen_s,
            r.parse_s,
            r.nets as f64 / r.parse_s,
            r.build_s,
            r.arena_s,
            r.nets as f64 / r.arena_s,
            r.baseline_s,
            r.nets as f64 / r.baseline_s,
            speedup,
            r.peak_rss_mib
        ));
    }

    // CI smoke gate: bounded-memory ingestion means the peak RSS stays
    // under an explicit ceiling for the configured deck size.
    let final_rss = peak_rss_mib();
    if let Ok(ceiling) = std::env::var("DECK_RSS_CEILING_MB") {
        let ceiling: f64 = ceiling
            .trim()
            .parse()
            .expect("DECK_RSS_CEILING_MB is a number");
        println!("  peak RSS {final_rss:.1} MiB (ceiling {ceiling} MiB)");
        assert!(
            final_rss > 0.0,
            "VmHWM unavailable; cannot enforce the RSS ceiling"
        );
        assert!(
            final_rss <= ceiling,
            "peak RSS {final_rss:.1} MiB exceeds the {ceiling} MiB ceiling"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"deck_pipeline\",\n  \"workers\": {jobs},\n  \
         \"available_parallelism\": {avail},\n  \"iters\": {iters},\n  \
         \"bit_identical\": true,\n  \"peak_rss_mib\": {final_rss},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = dir.join("BENCH_deck_pipeline.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("  summary written to {}", path.display()),
        Err(e) => eprintln!("  could not write {}: {e}", path.display()),
    }
}
