//! End-to-end deck pipeline: SPEF parse → design build → batch STA →
//! certification, serial versus parallel.
//!
//! This is the ROADMAP's "SPEF-scale ingestion" benchmark: a generated
//! multi-thousand-net deck is pushed through the entire stack twice — once
//! with one worker, once with the work-stealing pool — and throughput is
//! reported in nets per second.  Before timing anything the two paths are
//! asserted **bit-identical** (parsed nets and timing reports compare equal
//! with exact `f64` equality), so the speedup is never bought with drift.
//!
//! Environment knobs:
//!
//! * `DECK_NETS`  — nets in the generated deck (default 1000);
//! * `DECK_JOBS`  — parallel worker count (default: available parallelism,
//!   but at least 4 so the configured shape matches the acceptance target);
//! * `DECK_ITERS` — timed repetitions per path, best-of reported (default 3).
//!
//! A machine-readable summary is written to
//! `target/BENCH_deck_pipeline.json`.

use std::time::Instant;

use rctree_core::cert::Certification;
use rctree_core::units::Seconds;
use rctree_netlist::{parse_spef, parse_spef_deck};
use rctree_sta::{CellLibrary, Design, TimingReport};
use rctree_workloads::deck::{spef_deck, SpefDeckParams};

const THRESHOLD: f64 = 0.5;
const DRIVER_CELL: &str = "inv_4x";

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Runs the whole pipeline with the given worker count and returns the
/// report plus the certification verdict.
fn pipeline(text: &str, budget: Seconds, jobs: usize) -> (TimingReport, Certification) {
    let nets = if jobs == 1 {
        parse_spef(text).expect("generated deck parses")
    } else {
        parse_spef_deck(text, jobs).expect("generated deck parses")
    };
    let design = Design::from_extracted(
        CellLibrary::nmos_1981(),
        DRIVER_CELL,
        nets.into_iter().map(|n| (n.name, n.tree)),
    )
    .expect("generated deck builds a design");
    let report = design
        .analyze_with_jobs(THRESHOLD, budget, jobs)
        .expect("generated deck analyses");
    let verdict = report.certification();
    (report, verdict)
}

fn best_of<F: FnMut() -> (TimingReport, Certification)>(iters: usize, mut f: F) -> f64 {
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let nets = env_usize("DECK_NETS", 1000);
    let iters = env_usize("DECK_ITERS", 3);
    let avail = rctree_par::available_parallelism();
    let jobs = env_usize("DECK_JOBS", avail.max(4));
    let budget = Seconds::from_nano(50.0);

    let params = SpefDeckParams {
        nets,
        ..SpefDeckParams::default()
    };
    let text = spef_deck(&params, 0xDECC);

    // Correctness gate: the parallel path must be bit-identical to the
    // serial one before its timing means anything.
    let serial_nets = parse_spef(&text).expect("deck parses");
    let parallel_nets = parse_spef_deck(&text, jobs).expect("deck parses");
    assert!(
        serial_nets == parallel_nets,
        "parse_spef_deck({jobs}) differs from parse_spef"
    );
    let nodes: usize = serial_nets.iter().map(|n| n.tree.node_count()).sum();
    let (serial_report, serial_verdict) = pipeline(&text, budget, 1);
    let (parallel_report, _) = pipeline(&text, budget, jobs);
    assert!(
        serial_report == parallel_report,
        "analyze_with_jobs({jobs}) differs from the serial analysis"
    );

    let serial_s = best_of(iters, || pipeline(&text, budget, 1));
    let parallel_s = best_of(iters, || pipeline(&text, budget, jobs));
    let speedup = serial_s / parallel_s;

    println!(
        "deck_pipeline: {nets} nets / {nodes} nodes, verdict {serial_verdict}, {jobs} workers \
         (hardware {avail})"
    );
    println!(
        "  serial   {serial_s:>10.4} s  {:>12.1} nets/s",
        nets as f64 / serial_s
    );
    println!(
        "  parallel {parallel_s:>10.4} s  {:>12.1} nets/s",
        nets as f64 / parallel_s
    );
    println!("  speedup  {speedup:>10.2}x  (bit-identical: true)");

    let json = format!(
        "{{\n  \"bench\": \"deck_pipeline\",\n  \"nets\": {nets},\n  \"nodes\": {nodes},\n  \
         \"workers\": {jobs},\n  \"available_parallelism\": {avail},\n  \"iters\": {iters},\n  \
         \"serial\": {{ \"total_s\": {serial_s}, \"nets_per_s\": {} }},\n  \
         \"parallel\": {{ \"total_s\": {parallel_s}, \"nets_per_s\": {} }},\n  \
         \"speedup\": {speedup},\n  \"bit_identical\": true\n}}\n",
        nets as f64 / serial_s,
        nets as f64 / parallel_s,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/BENCH_deck_pipeline.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("  summary written to {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}
