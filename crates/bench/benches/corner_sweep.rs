//! Multi-corner sweep amortization: K lanes in one traversal versus K
//! independent single-corner analyses.
//!
//! The tentpole measurement of the corner subsystem, framed as the
//! per-revision cost of a signoff loop: after every committed edit, all K
//! PVT corners must be re-timed before the next decision.  Two engines
//! race on an identical seeded deck and corner set:
//!
//! * **lanes** — one design with the corner set installed; each revision
//!   rebuilds the lane-vectorized SoA arena (one tree walk for the base
//!   columns, each extra corner a multiply-only lane appended to them) and
//!   `Design::analyze_corners` sweeps **all** K corners in one post-order
//!   + pre-order traversal per net;
//! * **serial** — the pre-corner workflow: each revision, every corner's
//!   scaled design is reconstructed from the edited nominal design
//!   ([`Design::materialize_corner`] — a scaled deck is a *derived*
//!   artifact, and without corner lanes there is no mechanism to keep K
//!   of them in sync with edits except rebuilding) and fully analysed
//!   with `analyze_with_jobs`.
//!
//! Before timing, every lane is asserted **bit-identical**
//! (`assert_eq!` on full reports) to its materialized single-corner
//! oracle, so the amortization is never bought with drift.
//!
//! Environment knobs:
//!
//! * `CORNER_NETS`  — nets in the seeded deck (default 1024);
//! * `CORNER_ITERS` — timed repetitions per engine, best-of (default 3);
//! * `CORNER_FLOOR` — minimum accepted speedup at K=4 (default 2.0).
//!
//! A machine-readable summary is written to
//! `target/BENCH_corner_sweep.json`.

use std::time::Instant;

use rctree_core::corner::CornerSet;
use rctree_core::units::Seconds;
use rctree_sta::{CellLibrary, Design};
use rctree_workloads::corners::{corner_set, CornerSpecParams};
use rctree_workloads::SpefDeckParams;

const THRESHOLD: f64 = 0.5;
const BUDGET: Seconds = Seconds::new(150e-9);

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&x: &f64| x > 0.0)
        .unwrap_or(default)
}

fn workload(nets: usize) -> (Design, CornerSet) {
    let params = SpefDeckParams {
        nets,
        ..SpefDeckParams::default()
    };
    let trees: Vec<(String, _)> = params.trees(0xC0).into_iter().collect();
    let names: Vec<String> = trees.iter().map(|(n, _)| n.clone()).collect();
    let design = Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", trees)
        .expect("seeded deck builds a design");
    let set = corner_set(&CornerSpecParams::default(), &names, 0xC0);
    (design, set)
}

fn best_of<F: FnMut() -> f64>(iters: usize, mut f: F) -> f64 {
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// One revision on the lane engine: invalidate the arena, sweep all K
/// corners in one traversal.  Returns the worst slack over all lanes.
fn revision_lanes(design: &mut Design, set: &CornerSet, jobs: usize) -> f64 {
    design.set_corners(set.clone());
    let analysis = design
        .analyze_corners(THRESHOLD, BUDGET, jobs)
        .expect("corner sweep analyses");
    let worst = analysis.worst_against(BUDGET);
    analysis.reports()[worst].slack_against(BUDGET).value()
}

/// One revision on the serial baseline: every corner's scaled design is
/// reconstructed from the (edited) nominal design and fully analysed,
/// K independent single-corner runs.  Returns the worst slack over all K.
fn revision_serial(design: &Design, k: usize, jobs: usize) -> f64 {
    let mut worst = f64::INFINITY;
    for lane in 0..k {
        let report = design
            .materialize_corner(lane)
            .expect("lane index in range")
            .analyze_with_jobs(THRESHOLD, BUDGET, jobs)
            .expect("materialized corner analyses");
        worst = worst.min(report.slack_against(BUDGET).value());
    }
    worst
}

fn main() {
    let nets = env_usize("CORNER_NETS", 1024);
    let iters = env_usize("CORNER_ITERS", 3);
    let floor = env_f64("CORNER_FLOOR", 2.0);
    let jobs = rctree_par::default_jobs();

    let (mut design, set) = workload(nets);
    let k = set.len();
    println!(
        "corner_sweep: {nets}-net deck, K={k} corners ({}), {jobs} jobs, best of {iters}",
        set.names_csv()
    );

    // Correctness gate: every lane of the one-traversal sweep is
    // bit-identical to its fully materialized single-corner oracle.
    design.set_corners(set.clone());
    let analysis = design
        .analyze_corners(THRESHOLD, BUDGET, jobs)
        .expect("corner sweep analyses");
    for lane in 0..k {
        let oracle = design
            .materialize_corner(lane)
            .expect("lane index in range")
            .analyze_with_jobs(THRESHOLD, BUDGET, jobs)
            .expect("materialized corner analyses");
        assert_eq!(
            analysis.report(lane),
            Some(&oracle),
            "lane {lane} ({}) diverged from its single-corner oracle",
            analysis.names()[lane]
        );
    }

    let lanes_s = best_of(iters, || revision_lanes(&mut design, &set, jobs));
    let serial_s = best_of(iters, || revision_serial(&design, k, jobs));
    let speedup = serial_s / lanes_s;

    println!(
        "  lanes  {:>9.2} ms/revision   serial {:>9.2} ms/revision   amortization {:>5.2}x",
        lanes_s * 1e3,
        serial_s * 1e3,
        speedup
    );

    // The acceptance bar: a K=4 one-traversal sweep must amortize to at
    // least `floor` (default 2x) over 4 independent analyses.
    assert!(
        speedup >= floor,
        "K={k} amortization {speedup:.2}x fell below the {floor}x acceptance bar"
    );

    let json = format!(
        "{{\n  \"bench\": \"corner_sweep\",\n  \"nets\": {nets},\n  \"corners\": {k},\n  \
         \"jobs\": {jobs},\n  \"iters\": {iters},\n  \
         \"lanes_s_per_revision\": {lanes_s},\n  \"serial_s_per_revision\": {serial_s},\n  \
         \"amortization\": {speedup},\n  \"floor\": {floor},\n  \"bit_identical\": true\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/BENCH_corner_sweep.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("  summary written to {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}
