//! ECO arrival-propagation throughput: cone-limited versus the PR-3 path.
//!
//! The PR-3 ECO engine only re-timed the dirty nets, but every call still
//! seeded a throwaway per-net engine and re-ran the **full** serial
//! arrival propagation — topology rebuild included — over the whole
//! design.  On deep multi-stage designs where propagation, not stage
//! timing, dominates, that full pass is the entire cost of an edit.  This
//! bench pits the two paths against each other on exactly that shape: a
//! DAG of `ECO_PROP_CHAINS` parallel chains, `ECO_PROP_DEPTH` stages deep
//! (`rctree_workloads::dag::eco_dag`), absorbing a seeded stream of
//! single-capacitor edits:
//!
//! * **cone** — [`Design::apply_eco_with_jobs`]: persistent per-net
//!   engines, cached Kahn topology and arrival windows, re-propagation
//!   limited to the edited net's fan-out cone;
//! * **rebuild** — `Design::apply_eco_rebuild_with_jobs`, the PR-3 cost
//!   model kept verbatim: throwaway engine seed per edit plus a full
//!   propagation with the topology rebuilt per call.
//!
//! Both engines run the identical edit sequence and their reports are
//! asserted **bit-identical** (to each other and to a from-scratch
//! `analyze`) before any timing, so the speedup is never bought with
//! drift.  Acceptance bar: **≥ 5x** edits/s at the default scale
//! (asserted whenever the design has at least 256 instances).
//!
//! Environment knobs:
//!
//! * `ECO_PROP_CHAINS` — parallel chains (default 8);
//! * `ECO_PROP_DEPTH`  — stages per chain (default 64);
//! * `ECO_PROP_EDITS`  — edits per timed run (default 256);
//! * `ECO_PROP_ITERS`  — timed repetitions per engine, best-of (default 3).
//!
//! A machine-readable summary is written to
//! `target/BENCH_eco_propagation.json`.

use std::time::Instant;

use rctree_core::units::{Farads, Seconds};
use rctree_sta::{Design, EcoEdit, EcoEditKind, TimingReport};
use rctree_workloads::dag::{eco_dag, EcoDag, EcoDagParams};
use rctree_workloads::rng::Rng;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Seeded single-capacitor edit stream over the DAG's advertised (net,
/// node) names.  Values are absolute, so replaying the same stream leaves
/// the design in the same state — which keeps best-of repetitions fair.
fn edit_stream(dag: &EcoDag, edits: usize, seed: u64) -> Vec<EcoEdit> {
    let mut rng = Rng::from_seed(seed);
    (0..edits)
        .map(|_| {
            let net = &dag.nets[rng.index(dag.nets.len())];
            let node = net.nodes[rng.index(net.nodes.len())].clone();
            EcoEdit {
                net: net.name.clone(),
                kind: EcoEditKind::SetCap {
                    node,
                    cap: Farads::from_femto(rng.range_f64(1.0, 40.0)),
                },
            }
        })
        .collect()
}

/// Applies the stream one edit at a time through `apply`, returning the
/// final report.  `jobs = 1` on both sides: the comparison targets the
/// propagation algorithms, not pool scheduling.
fn run_stream(
    design: &mut Design,
    edits: &[EcoEdit],
    threshold: f64,
    budget: Seconds,
    rebuild: bool,
) -> TimingReport {
    let mut last = None;
    for edit in edits {
        let report = if rebuild {
            design.apply_eco_rebuild_with_jobs(std::slice::from_ref(edit), threshold, budget, 1)
        } else {
            design.apply_eco_with_jobs(std::slice::from_ref(edit), threshold, budget, 1)
        }
        .expect("generated edits apply");
        last = Some(report);
    }
    last.expect("stream is non-empty")
}

fn best_of<F: FnMut() -> f64>(iters: usize, mut f: F) -> f64 {
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let chains = env_usize("ECO_PROP_CHAINS", 8);
    let depth = env_usize("ECO_PROP_DEPTH", 64);
    let edits = env_usize("ECO_PROP_EDITS", 256);
    let iters = env_usize("ECO_PROP_ITERS", 3);
    let params = EcoDagParams {
        chains,
        depth,
        cross_probability: 0.15,
        wire_nodes: 3,
        po_stride: 4,
    };
    let threshold = 0.5;
    let budget = Seconds::from_nano(2000.0 * depth as f64);

    let dag = eco_dag(&params, 0xEC0);
    let instances = dag.instance_count();
    let nets = dag.nets.len();
    let stream = edit_stream(&dag, edits, 0x5EED);
    println!(
        "eco_propagation: {chains}x{depth} DAG ({instances} instances, {nets} nets), \
         {edits} edits, best of {iters}"
    );

    // Correctness gate first: identical reports after the full stream, on
    // both engines, and equal to a from-scratch analysis.
    let mut cone = eco_dag(&params, 0xEC0).design;
    let mut rebuild = eco_dag(&params, 0xEC0).design;
    cone.apply_eco_with_jobs(&[], threshold, budget, 1)
        .expect("warm-up");
    rebuild
        .apply_eco_rebuild_with_jobs(&[], threshold, budget, 1)
        .expect("warm-up");
    let a = run_stream(&mut cone, &stream, threshold, budget, false);
    let b = run_stream(&mut rebuild, &stream, threshold, budget, true);
    assert_eq!(a, b, "engines diverged");
    assert_eq!(
        a,
        cone.analyze(threshold, budget).expect("analyzable"),
        "cone path drifted from a full analysis"
    );

    // Timed runs on the warmed designs (state is identical at the start of
    // every repetition: the stream's cap values are absolute).
    let cone_s = best_of(iters, || {
        run_stream(&mut cone, &stream, threshold, budget, false)
            .worst_slack()
            .value()
    });
    let rebuild_s = best_of(iters, || {
        run_stream(&mut rebuild, &stream, threshold, budget, true)
            .worst_slack()
            .value()
    });
    let cone_eps = edits as f64 / cone_s;
    let rebuild_eps = edits as f64 / rebuild_s;
    let speedup = rebuild_s / cone_s;
    println!(
        "  cone-limited {cone_eps:>12.0} edits/s   full-propagate {rebuild_eps:>10.0} edits/s   \
         speedup {speedup:>7.1}x"
    );

    // The acceptance bar: ≥5x once propagation dominates.
    if instances >= 256 {
        assert!(
            speedup >= 5.0,
            "cone-limited speedup {speedup:.1}x fell below the 5x acceptance bar"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"eco_propagation\",\n  \"chains\": {chains},\n  \"depth\": {depth},\n  \
         \"instances\": {instances},\n  \"nets\": {nets},\n  \"edits\": {edits},\n  \
         \"iters\": {iters},\n  \
         \"cone_edits_per_s\": {cone_eps},\n  \"rebuild_edits_per_s\": {rebuild_eps},\n  \
         \"speedup\": {speedup},\n  \"bit_identical\": true\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/BENCH_eco_propagation.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("  summary written to {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}
