//! Timing-server throughput: K concurrent connections against an
//! in-process `rctree-serve` instance.
//!
//! Measures the read path end to end — TCP, request parse, snapshot load,
//! render — with a seeded read-only mix (queries dominate, plus REPORT
//! and CERTIFY), then repeats with a mixed read/write load to show that
//! ECO writes serialize without starving readers.  Every response is
//! validated by the load generator (reads to the final `OK`/`ERR` line);
//! the read-only run must produce **zero** protocol errors.
//!
//! Environment knobs:
//!
//! * `SERVE_NETS`  — deck size (default 64);
//! * `SERVE_CONNS` — concurrent connections (default 4);
//! * `SERVE_REQS`  — requests per connection (default 250);
//!
//! A machine-readable summary is written to
//! `target/BENCH_serve_throughput.json` (the `rcdelay bench-client`
//! command writes the equivalent `BENCH_serve.json` against an external
//! server).

use rctree_core::units::Seconds;
use rctree_serve::{run_load, LoadReport, ServeConfig, Server};
use rctree_sta::{CellLibrary, Design};
use rctree_workloads::{request_mix, RequestMixParams, SpefDeckParams};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn main() {
    let nets = env_usize("SERVE_NETS", 64);
    let connections = env_usize("SERVE_CONNS", 4);
    let requests = env_usize("SERVE_REQS", 250);

    let trees = SpefDeckParams {
        nets,
        ..SpefDeckParams::default()
    }
    .trees(0x5E17E);
    let design = Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", trees.clone())
        .expect("deck builds");
    let config = ServeConfig::new(0.5, Seconds::new(500e-9), rctree_par::default_jobs());
    let server = Server::start(design, &config, ("127.0.0.1", 0)).expect("server starts");
    let addr = server.local_addr();
    println!(
        "serve_throughput: {nets}-net deck on {addr}, {connections} connections x \
         {requests} requests"
    );

    let run = |eco_fraction: f64, seed: u64| -> LoadReport {
        let params = RequestMixParams {
            requests_per_connection: requests,
            eco_fraction,
            certify_budget: 400e-9,
        };
        let scripts = request_mix(&trees, connections, &params, seed);
        run_load(addr, &scripts).expect("load run")
    };

    let read_only = run(0.0, 11);
    assert_eq!(
        read_only.protocol_errors, 0,
        "read-only mix produced protocol errors"
    );
    assert!(read_only.queries_per_s > 0.0);
    println!(
        "  read-only {:>10.0} queries/s   p50 {:>7.0} us   p90 {:>7.0} us   p99 {:>7.0} us",
        read_only.queries_per_s, read_only.p50_us, read_only.p90_us, read_only.p99_us
    );

    let mixed = run(0.2, 12);
    assert_eq!(
        mixed.protocol_errors, 0,
        "generated ECO edits must all apply"
    );
    println!(
        "  20% ECO   {:>10.0} requests/s  p50 {:>7.0} us   p90 {:>7.0} us   p99 {:>7.0} us \
         (revision {})",
        mixed.queries_per_s,
        mixed.p50_us,
        mixed.p90_us,
        mixed.p99_us,
        server.revision()
    );
    assert!(server.revision() > 0, "mixed run committed edits");

    server.shutdown();
    server.join();

    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"nets\": {nets},\n  \
         \"connections\": {connections},\n  \"requests_per_connection\": {requests},\n  \
         \"read_only_queries_per_s\": {},\n  \"read_only_p50_us\": {},\n  \
         \"read_only_p99_us\": {},\n  \"mixed_requests_per_s\": {},\n  \
         \"mixed_p50_us\": {},\n  \"mixed_p99_us\": {},\n  \"protocol_errors\": 0\n}}\n",
        read_only.queries_per_s,
        read_only.p50_us,
        read_only.p99_us,
        mixed.queries_per_s,
        mixed.p50_us,
        mixed.p99_us
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/BENCH_serve_throughput.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("  summary written to {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}
