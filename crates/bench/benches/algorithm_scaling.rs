//! Section IV complexity claim: the direct per-capacitor method costs time
//! "proportional to the square of the number of elements" per output on a
//! chain, while the single-traversal / constructive methods are linear.
//!
//! Benchmarks both tree algorithms and the two-port algebra on RC chains of
//! growing length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rctree_core::moments::{characteristic_times, characteristic_times_direct};
use rctree_core::twoport::TwoPort;
use rctree_core::units::{Farads, Ohms};
use rctree_workloads::ladder::rc_ladder;

fn bench_algorithm_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("characteristic_times_scaling");
    for &n in &[10usize, 100, 1000] {
        let (tree, out) = rc_ladder(Ohms::new(100.0), Farads::new(1e-12), n);
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("linear_traversal", n), &n, |b, _| {
            b.iter(|| characteristic_times(&tree, out).expect("analysable"))
        });
        group.bench_with_input(BenchmarkId::new("direct_quadratic", n), &n, |b, _| {
            b.iter(|| characteristic_times_direct(&tree, out).expect("analysable"))
        });
        group.bench_with_input(BenchmarkId::new("twoport_constructive", n), &n, |b, _| {
            b.iter(|| {
                let seg_r = Ohms::new(100.0 / n as f64);
                let seg_c = Farads::new(1e-12 / n as f64);
                let mut state = TwoPort::EMPTY;
                for _ in 0..n {
                    state = state
                        .cascade(TwoPort::resistor(seg_r))
                        .cascade(TwoPort::capacitor(seg_c));
                }
                state.characteristic_times().expect("analysable")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithm_scaling);
criterion_main!(benches);
