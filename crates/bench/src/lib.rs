//! Shared helpers for the benchmark harness and the figure/table
//! regeneration binaries.
//!
//! The binaries in `src/bin/` regenerate the *contents* of every table and
//! figure in the paper's evaluation (Figures 10, 11 and 13); the Criterion
//! benches in `benches/` measure the *computational* claims of Section IV
//! (linear-time constructive algorithm vs. the quadratic direct method) and
//! the cost of the surrounding machinery (bound evaluation, exact
//! simulation), plus a tightness ablation.

use rctree_core::moments::CharacteristicTimes;

/// Formats a bound pair the way the paper's Figure 10 prints them.
pub fn format_bound_row(x: f64, lower: f64, upper: f64) -> String {
    format!("{x:>8.3}  {lower:>12.5}  {upper:>12.5}")
}

/// Produces the Figure 10 delay-bound rows for the supplied characteristic
/// times at the paper's nine thresholds.
///
/// # Panics
///
/// Panics only if the characteristic times are degenerate (zero Elmore
/// delay), which cannot happen for the Figure 7 network.
pub fn fig10_delay_rows(times: &CharacteristicTimes) -> Vec<(f64, f64, f64)> {
    (1..=9)
        .map(|i| {
            let v = i as f64 / 10.0;
            let b = times.delay_bounds(v).expect("valid threshold");
            (v, b.lower.value(), b.upper.value())
        })
        .collect()
}

/// Produces the Figure 10 voltage-bound rows for the supplied characteristic
/// times at the paper's eleven sample times.
///
/// # Panics
///
/// Panics only for degenerate characteristic times.
pub fn fig10_voltage_rows(times: &CharacteristicTimes) -> Vec<(f64, f64, f64)> {
    [
        20.0, 40.0, 60.0, 80.0, 100.0, 200.0, 300.0, 400.0, 500.0, 1000.0, 2000.0,
    ]
    .iter()
    .map(|&t| {
        let b = times
            .voltage_bounds(rctree_core::units::Seconds::new(t))
            .expect("valid time");
        (t, b.lower, b.upper)
    })
    .collect()
}

/// The minterm counts swept in Figure 13 (2 … 100 on a log-like grid).
pub fn fig13_minterm_sweep() -> Vec<usize> {
    vec![2, 4, 6, 8, 10, 14, 20, 28, 40, 56, 70, 86, 100]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rctree_workloads::fig7::figure7_tree;

    #[test]
    fn rows_cover_the_paper_grid() {
        let (tree, out) = figure7_tree();
        let times = rctree_core::moments::characteristic_times(&tree, out).unwrap();
        assert_eq!(fig10_delay_rows(&times).len(), 9);
        assert_eq!(fig10_voltage_rows(&times).len(), 11);
        assert_eq!(*fig13_minterm_sweep().last().unwrap(), 100);
    }

    #[test]
    fn formatting_is_stable() {
        let row = format_bound_row(0.5, 184.23, 314.15);
        assert!(row.contains("184.23"));
        assert!(row.contains("314.15"));
    }
}
