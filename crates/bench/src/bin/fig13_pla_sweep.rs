//! Regenerates Figure 13: upper and lower bounds on the response time of the
//! PLA polysilicon line (threshold 0.7·V_DD) as a function of the number of
//! minterms, 2 through 100.
//!
//! Prints a CSV table (nanoseconds) followed by a log-log summary of the
//! growth exponent and the paper's 10 ns headline check.
//!
//! Run with `cargo run -p rctree-bench --bin fig13_pla_sweep`.

use rctree_bench::fig13_minterm_sweep;
use rctree_core::moments::characteristic_times;
use rctree_workloads::pla::PlaLine;

fn main() {
    println!("minterms,t_min_ns,t_max_ns,elmore_ns");
    let mut rows = Vec::new();
    for minterms in fig13_minterm_sweep() {
        let (tree, out) = PlaLine::new(minterms).tree();
        let times = characteristic_times(&tree, out).expect("PLA line is analysable");
        let bounds = times.delay_bounds(0.7).expect("valid threshold");
        println!(
            "{minterms},{:.5},{:.5},{:.5}",
            bounds.lower.as_nano(),
            bounds.upper.as_nano(),
            times.elmore_delay().as_nano()
        );
        rows.push((
            minterms as f64,
            bounds.lower.as_nano(),
            bounds.upper.as_nano(),
        ));
    }

    // Growth exponent between 20 and 100 minterms (paper: "the quadratic
    // dependence of delay on number of minterms ... is evident").
    let pick = |n: f64| {
        rows.iter()
            .find(|r| (r.0 - n).abs() < 0.5)
            .expect("in sweep")
    };
    let (a, b) = (pick(20.0), pick(100.0));
    let slope_upper = (b.2 / a.2).ln() / (100.0_f64 / 20.0).ln();
    let slope_lower = (b.1 / a.1).ln() / (100.0_f64 / 20.0).ln();
    eprintln!("log-log slope 20->100 minterms: lower bound {slope_lower:.2}, upper bound {slope_upper:.2} (paper: ~2, i.e. quadratic)");
    eprintln!(
        "upper bound at 100 minterms: {:.2} ns (paper: \"guaranteed to be no worse than 10 nsec\")",
        b.2
    );
}
