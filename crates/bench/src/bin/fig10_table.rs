//! Regenerates both tables of Figure 10: delay bounds vs threshold and
//! voltage bounds vs time for the Figure 7 example network, alongside the
//! values printed in the paper.
//!
//! Run with `cargo run -p rctree-bench --bin fig10_table`.

use rctree_bench::{fig10_delay_rows, fig10_voltage_rows};
use rctree_core::moments::characteristic_times;
use rctree_workloads::fig7::{figure7_tree, FIG10_DELAY_TABLE, FIG10_VOLTAGE_TABLE};

fn main() {
    let (tree, out) = figure7_tree();
    let times = characteristic_times(&tree, out).expect("Figure 7 network is analysable");

    println!("Figure 7 network characteristic times:");
    println!(
        "  T_P = {} s   T_D = {} s   T_R = {:.4} s   R_ee = {}\n",
        times.t_p.value(),
        times.t_d.value(),
        times.t_r.value(),
        times.r_ee
    );

    println!("Figure 10 (upper table): delay bounds vs threshold");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "V", "TMIN (ours)", "TMIN(paper)", "TMAX (ours)", "TMAX(paper)"
    );
    for ((v, lo, hi), &(pv, plo, phi)) in fig10_delay_rows(&times).iter().zip(FIG10_DELAY_TABLE) {
        assert!((v - pv).abs() < 1e-12);
        println!("{v:>6.1} {lo:>12.3} {plo:>12.3} {hi:>12.3} {phi:>12.3}");
    }

    println!("\nFigure 10 (lower table): voltage bounds vs time");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "T", "VMIN (ours)", "VMIN(paper)", "VMAX (ours)", "VMAX(paper)"
    );
    for ((t, lo, hi), &(pt, plo, phi)) in fig10_voltage_rows(&times).iter().zip(FIG10_VOLTAGE_TABLE)
    {
        assert!((t - pt).abs() < 1e-12);
        println!("{t:>6.0} {lo:>12.5} {plo:>12.5} {hi:>12.5} {phi:>12.5}");
    }
}
