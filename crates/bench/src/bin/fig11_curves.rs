//! Regenerates the data of Figure 11: lower bound, exact step response and
//! upper bound of the Figure 7 network from 0 to 600 seconds, as CSV.
//!
//! Run with `cargo run -p rctree-bench --bin fig11_curves [> fig11.csv]`.

use rctree_core::moments::characteristic_times;
use rctree_core::units::Seconds;
use rctree_sim::modal::exact_step_response;
use rctree_workloads::fig7::figure7_tree;

fn main() {
    let (tree, out) = figure7_tree();
    let times = characteristic_times(&tree, out).expect("Figure 7 network is analysable");
    let exact = exact_step_response(&tree, out, 64, 600.0, 601)
        .expect("modal decomposition of the Figure 7 network");

    println!("time_s,v_lower_bound,v_exact,v_upper_bound");
    let mut worst_violation = 0.0_f64;
    for i in 0..=120 {
        let t = 5.0 * i as f64;
        let b = times
            .voltage_bounds(Seconds::new(t))
            .expect("non-negative time");
        let v = exact.value_at(t);
        worst_violation = worst_violation.max(b.lower - v).max(v - b.upper);
        println!("{t},{:.6},{:.6},{:.6}", b.lower, v, b.upper);
    }
    eprintln!("max violation of v_min <= v_exact <= v_max: {worst_violation:.3e}");
    eprintln!(
        "(small positive values reflect only the {}-segment discretization of the distributed line)",
        64
    );
}
