//! The Penfield–Rubinstein upper and lower bounds (Eqs. 8–17).
//!
//! Given the three characteristic times of an output (see
//! [`CharacteristicTimes`](crate::moments::CharacteristicTimes)), the paper
//! derives closed-form bounds on the unit-step response voltage and, by
//! inversion, on the time at which the response crosses a threshold.
//!
//! With `T_P`, `T_D = T_De`, `T_R = T_Re`:
//!
//! **Voltage bounds** (response normalized to a 0 → 1 step):
//!
//! ```text
//! v_max(t) = min( 1 − (T_D − t)/T_P ,                       Eq. (8)
//!                 1 − (T_D/T_P)·exp(−t/T_R) )               Eq. (9)
//!
//! v_min(t) = max( 0 ,                                       Eq. (10)
//!                 1 − T_D/(t + T_R) ,                       Eq. (11)
//!                 1 − (T_D/T_P)·exp(−(t − T_P + T_R)/T_P) ) Eq. (12), t ≥ T_P − T_R
//! ```
//!
//! **Delay bounds** for a threshold `v ∈ (0, 1)`:
//!
//! ```text
//! t_min(v) = max( 0 ,                                       Eq. (13)
//!                 T_D − T_P·(1 − v) ,                       Eq. (14)
//!                 T_R·ln( T_D/(T_P·(1 − v)) ) )             Eq. (15)
//!
//! t_max(v) = min( T_D/(1 − v) − T_R ,                       Eq. (16)
//!                 T_P − T_R + max(0, T_P·ln( T_D/(T_P·(1 − v)) )) )   Eq. (17)
//! ```
//!
//! The formulas are exactly the ones implemented by the paper's APL
//! functions `VMIN`, `VMAX`, `TMIN`, `TMAX` (Figure 9); the regression test
//! `tests/fig10_regression.rs` checks them against every number printed in
//! Figure 10.
//!
//! ```
//! use rctree_core::builder::RcTreeBuilder;
//! use rctree_core::moments::characteristic_times;
//! use rctree_core::units::{Ohms, Farads, Seconds};
//!
//! # fn main() -> rctree_core::error::Result<()> {
//! let mut b = RcTreeBuilder::new();
//! let n = b.add_resistor(b.input(), "n", Ohms::new(1000.0))?;
//! b.add_capacitance(n, Farads::from_pico(1.0))?;
//! b.mark_output(n)?;
//! let tree = b.build()?;
//! let times = characteristic_times(&tree, n)?;
//! let bounds = times.delay_bounds(0.5)?;
//! assert!(bounds.lower <= bounds.upper);
//! # Ok(())
//! # }
//! ```

use crate::algebra::{DelayValue, Poly2, SymbolicTimes};
use crate::cert::Certification;
use crate::error::{CoreError, Result};
use crate::moments::CharacteristicTimes;
use crate::units::Seconds;

/// Lower and upper bounds on the normalized step-response voltage at a given
/// time.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VoltageBounds {
    /// Guaranteed minimum normalized voltage (Eqs. 10–12).
    pub lower: f64,
    /// Guaranteed maximum normalized voltage (Eqs. 8–9).
    pub upper: f64,
}

impl VoltageBounds {
    /// Width of the bound interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Returns `true` if a value lies within the bounds (inclusive).
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lower && v <= self.upper
    }
}

/// Lower and upper bounds on the delay to a threshold voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DelayBounds {
    /// Guaranteed minimum delay (Eqs. 13–15).
    pub lower: Seconds,
    /// Guaranteed maximum delay (Eqs. 16–17).
    pub upper: Seconds,
}

impl DelayBounds {
    /// Width of the bound interval.
    pub fn width(&self) -> Seconds {
        self.upper - self.lower
    }

    /// Returns `true` if a delay lies within the bounds (inclusive).
    pub fn contains(&self, t: Seconds) -> bool {
        t >= self.lower && t <= self.upper
    }

    /// Relative uncertainty `(upper − lower) / upper`, a tightness metric
    /// used by the ablation benchmarks (0 means the bounds coincide).
    pub fn relative_uncertainty(&self) -> f64 {
        if self.upper.is_zero() {
            0.0
        } else {
            (self.upper - self.lower) / self.upper
        }
    }
}

/// The delay bounds of one output as polynomials in the uniform `(r, c)`
/// scale factors — the symbolic analogue of [`DelayBounds`].
///
/// Produced by [`symbolic_delay_bounds`]; evaluate at a concrete scale
/// point with [`SymbolicDelayBounds::eval`], or read sensitivities
/// (`∂bound/∂r`, `∂bound/∂c`) straight off the coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymbolicDelayBounds {
    /// Guaranteed minimum delay as a polynomial in `(r, c)` (Eqs. 13–15).
    pub lower: Poly2,
    /// Guaranteed maximum delay as a polynomial in `(r, c)` (Eqs. 16–17).
    pub upper: Poly2,
}

impl SymbolicDelayBounds {
    /// Symbolic bounds that are identically zero (a zero-Elmore output).
    pub const ZERO: SymbolicDelayBounds = SymbolicDelayBounds {
        lower: Poly2::ZERO,
        upper: Poly2::ZERO,
    };

    /// The concrete [`DelayBounds`] at one scale point.
    pub fn eval(&self, r: f64, c: f64) -> DelayBounds {
        DelayBounds {
            lower: Seconds::new(self.lower.eval(r, c)),
            upper: Seconds::new(self.upper.eval(r, c)),
        }
    }

    /// `(∂upper/∂r, ∂upper/∂c)` at one scale point — the delay
    /// sensitivities of the certified (worst-case) bound.
    pub fn upper_sens_at(&self, r: f64, c: f64) -> (f64, f64) {
        (self.upper.eval_dr(r, c), self.upper.eval_dc(r, c))
    }

    /// `(∂lower/∂r, ∂lower/∂c)` at one scale point.
    pub fn lower_sens_at(&self, r: f64, c: f64) -> (f64, f64) {
        (self.lower.eval_dr(r, c), self.lower.eval_dc(r, c))
    }
}

/// The delay bounds of one output, **symbolically** over the uniform scale
/// factors: for every `r, c > 0`, `symbolic_delay_bounds(t, v).eval(r, c)`
/// equals the scalar [`CharacteristicTimes::delay_bounds`] of the network
/// with every resistance multiplied by `r` and every capacitance by `c`
/// (to rounding).
///
/// This is exact, not an approximation, because uniform scaling turns every
/// characteristic time into a single shared monomial `m(r, c)` (for a full
/// sweep, `m = r·c`) with `m > 0` on positive scales: the log argument
/// `T_D/(T_P·(1−v))` is scale-invariant, and every `max`/`min` in
/// Eqs. 13–17 commutes with multiplication by a positive `m`, so
/// `bounds(r, c) = bounds(1, 1) · m(r, c)` identically.
///
/// # Errors
///
/// * [`CoreError::ThresholdOutOfRange`] unless `0 < threshold < 1`;
/// * [`CoreError::InvalidValue`] if the characteristic times do not share a
///   single monomial shape (unreachable for values produced by the
///   symbolic kernel, which scales uniformly by construction).
pub fn symbolic_delay_bounds(times: &SymbolicTimes, threshold: f64) -> Result<SymbolicDelayBounds> {
    check_threshold(threshold)?;
    if times.t_d.is_zero() {
        return Ok(SymbolicDelayBounds::ZERO);
    }
    let non_uniform = || CoreError::InvalidValue {
        what: "symbolic characteristic-time shape",
        value: f64::NAN,
    };
    let (di, dj, t_d) = times.t_d.as_monomial().ok_or_else(non_uniform)?;
    let (pi, pj, t_p) = times.t_p.as_monomial().ok_or_else(non_uniform)?;
    if (pi, pj) != (di, dj) {
        return Err(non_uniform());
    }
    let t_r = if times.t_r.is_zero() {
        0.0
    } else {
        let (ri, rj, t_r) = times.t_r.as_monomial().ok_or_else(non_uniform)?;
        if (ri, rj) != (di, dj) {
            return Err(non_uniform());
        }
        t_r
    };
    // The nominal bounds, computed with the exact float sequence of
    // `delay_lower_bound` / `delay_upper_bound` on the coefficient values
    // (which are the nominal characteristic times bit-for-bit).
    let one_minus_v = 1.0 - threshold;
    let ln_arg = t_d / (t_p * one_minus_v);
    let mut lower = 0.0_f64;
    lower = lower.max(t_d - t_p * one_minus_v);
    lower = lower.max(t_r * ln_arg.ln());
    let hyperbolic = t_d / one_minus_v - t_r;
    let logarithmic = t_p - t_r + (t_p * ln_arg.ln()).max(0.0);
    let upper = hyperbolic.min(logarithmic).max(lower);
    Ok(SymbolicDelayBounds {
        lower: Poly2::monomial(di, dj, lower),
        upper: Poly2::monomial(di, dj, upper),
    })
}

impl CharacteristicTimes {
    /// Upper bound on the normalized step-response voltage at time `t`
    /// (Eqs. 8–9, tightest of the two, clamped to `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NegativeTime`] if `t` is negative or not finite.
    pub fn voltage_upper_bound(&self, t: Seconds) -> Result<f64> {
        check_time(t)?;
        if self.t_d.is_zero() {
            // No capacitance shares resistance with this output: the output
            // follows the input instantaneously.
            return Ok(1.0);
        }
        let (t_p, t_d, t_r, tv) = self.raw(t);
        // Eq. (8): 1 − (T_D − t)/T_P — tight for small t.
        let linear = 1.0 - (t_d - tv) / t_p;
        // Eq. (9): 1 − (T_D/T_P)·e^{−t/T_R} — tight for large t.
        let exponential = 1.0 - (t_d / t_p) * (-tv / t_r).exp();
        Ok(linear.min(exponential).clamp(0.0, 1.0))
    }

    /// Lower bound on the normalized step-response voltage at time `t`
    /// (Eqs. 10–12, tightest of the three, clamped to `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NegativeTime`] if `t` is negative or not finite.
    pub fn voltage_lower_bound(&self, t: Seconds) -> Result<f64> {
        check_time(t)?;
        if self.t_d.is_zero() {
            return Ok(1.0);
        }
        let (t_p, t_d, t_r, tv) = self.raw(t);
        // Eq. (10): v ≥ 0.
        let mut best = 0.0_f64;
        // Eq. (11): v ≥ 1 − T_D/(t + T_R).
        best = best.max(1.0 - t_d / (tv + t_r));
        // Eq. (12): v ≥ 1 − (T_D/T_P)·e^{−(t − T_P + T_R)/T_P}, for t ≥ T_P − T_R.
        if tv >= t_p - t_r {
            best = best.max(1.0 - (t_d / t_p) * (-(tv - t_p + t_r) / t_p).exp());
        }
        Ok(best.clamp(0.0, 1.0))
    }

    /// Both voltage bounds at time `t`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NegativeTime`] if `t` is negative or not finite.
    pub fn voltage_bounds(&self, t: Seconds) -> Result<VoltageBounds> {
        let lower = self.voltage_lower_bound(t)?;
        let upper = self.voltage_upper_bound(t)?;
        Ok(VoltageBounds {
            lower: lower.min(upper),
            upper,
        })
    }

    /// Lower bound on the time at which the response reaches `threshold`
    /// (Eqs. 13–15).  This is the paper's `TMIN`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ThresholdOutOfRange`] unless
    /// `0 < threshold < 1`.
    pub fn delay_lower_bound(&self, threshold: f64) -> Result<Seconds> {
        check_threshold(threshold)?;
        if self.t_d.is_zero() {
            return Ok(Seconds::ZERO);
        }
        let (t_p, t_d, t_r) = (self.t_p.value(), self.t_d.value(), self.t_r.value());
        let one_minus_v = 1.0 - threshold;
        let ln_arg = t_d / (t_p * one_minus_v);
        // Eq. (13) / (14) / (15).
        let mut best = 0.0_f64;
        best = best.max(t_d - t_p * one_minus_v);
        best = best.max(t_r * ln_arg.ln());
        Ok(Seconds::new(best))
    }

    /// Upper bound on the time at which the response reaches `threshold`
    /// (Eqs. 16–17).  This is the paper's `TMAX`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ThresholdOutOfRange`] unless
    /// `0 < threshold < 1`.
    pub fn delay_upper_bound(&self, threshold: f64) -> Result<Seconds> {
        check_threshold(threshold)?;
        if self.t_d.is_zero() {
            return Ok(Seconds::ZERO);
        }
        let (t_p, t_d, t_r) = (self.t_p.value(), self.t_d.value(), self.t_r.value());
        let one_minus_v = 1.0 - threshold;
        let ln_arg = t_d / (t_p * one_minus_v);
        // Eq. (16): T_D/(1−v) − T_R.
        let hyperbolic = t_d / one_minus_v - t_r;
        // Eq. (17): T_P − T_R + T_P·ln(...), valid once the log is non-negative.
        let logarithmic = t_p - t_r + (t_p * ln_arg.ln()).max(0.0);
        Ok(Seconds::new(hyperbolic.min(logarithmic)))
    }

    /// Both delay bounds for a threshold voltage.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ThresholdOutOfRange`] unless
    /// `0 < threshold < 1`.
    pub fn delay_bounds(&self, threshold: f64) -> Result<DelayBounds> {
        let lower = self.delay_lower_bound(threshold)?;
        let upper = self.delay_upper_bound(threshold)?;
        Ok(DelayBounds {
            lower,
            upper: upper.max(lower),
        })
    }

    /// The paper's `OK` function (Figure 9): certifies whether this output is
    /// guaranteed to reach `threshold` within `budget`.
    ///
    /// * [`Certification::Pass`] if the upper delay bound is within budget
    ///   ("the network is certified fast enough");
    /// * [`Certification::Fail`] if even the lower bound exceeds the budget
    ///   ("the network definitely will fail");
    /// * [`Certification::Indeterminate`] if the bounds straddle the budget.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ThresholdOutOfRange`] for an invalid threshold
    /// and [`CoreError::NegativeTime`] for a negative budget.
    pub fn certify(&self, threshold: f64, budget: Seconds) -> Result<Certification> {
        check_time(budget)?;
        let bounds = self.delay_bounds(threshold)?;
        Ok(if bounds.upper <= budget {
            Certification::Pass
        } else if budget < bounds.lower {
            Certification::Fail
        } else {
            Certification::Indeterminate
        })
    }

    fn raw(&self, t: Seconds) -> (f64, f64, f64, f64) {
        (
            self.t_p.value(),
            self.t_d.value(),
            self.t_r.value(),
            t.value(),
        )
    }
}

fn check_threshold(threshold: f64) -> Result<()> {
    if threshold.is_finite() && threshold > 0.0 && threshold < 1.0 {
        Ok(())
    } else {
        Err(CoreError::ThresholdOutOfRange { threshold })
    }
}

fn check_time(t: Seconds) -> Result<()> {
    if t.is_finite() && !t.is_negative() {
        Ok(())
    } else {
        Err(CoreError::NegativeTime { time: t.value() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Farads, Ohms};

    /// A hand-checkable signature: T_P = 10, T_D = 6, T_R = 4.
    fn sample() -> CharacteristicTimes {
        CharacteristicTimes::new(
            Seconds::new(10.0),
            Seconds::new(6.0),
            Seconds::new(4.0),
            Ohms::new(2.0),
            Farads::new(5.0),
        )
        .unwrap()
    }

    /// A single-lump signature where bounds collapse to the exact
    /// exponential: T_P = T_D = T_R = τ.
    fn single_pole(tau: f64) -> CharacteristicTimes {
        CharacteristicTimes::new(
            Seconds::new(tau),
            Seconds::new(tau),
            Seconds::new(tau),
            Ohms::new(1.0),
            Farads::new(tau),
        )
        .unwrap()
    }

    #[test]
    fn voltage_bounds_are_ordered_and_clamped() {
        let t = sample();
        for &time in &[0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0, 500.0] {
            let b = t.voltage_bounds(Seconds::new(time)).unwrap();
            assert!(b.lower >= 0.0 && b.upper <= 1.0, "clamped at t={time}");
            assert!(b.lower <= b.upper, "ordered at t={time}");
        }
    }

    #[test]
    fn voltage_bounds_tend_to_one() {
        let t = sample();
        let b = t.voltage_bounds(Seconds::new(1e4)).unwrap();
        assert!(b.lower > 0.999);
        assert!(b.upper >= b.lower);
    }

    #[test]
    fn voltage_upper_at_zero_is_one_minus_td_over_tp() {
        // At t = 0 both upper-bound expressions give 1 − T_D/T_P.
        let t = sample();
        let ub = t.voltage_upper_bound(Seconds::ZERO).unwrap();
        assert!((ub - 0.4).abs() < 1e-12);
        let lb = t.voltage_lower_bound(Seconds::ZERO).unwrap();
        assert_eq!(lb, 0.0);
    }

    #[test]
    fn single_pole_bounds_collapse_to_exponential() {
        // When T_R = T_D = T_P the network is a single RC lump and both
        // voltage bounds equal 1 − e^{−t/τ} for t ≥ 0 (the bounds are tight).
        let tau = 3.0;
        let t = single_pole(tau);
        for &time in &[0.0, 0.5, 1.0, 2.0, 4.0, 10.0] {
            let exact = 1.0 - (-time / tau).exp();
            let b = t.voltage_bounds(Seconds::new(time)).unwrap();
            assert!(
                (b.upper - exact).abs() < 1e-12,
                "upper at t={time}: {} vs {exact}",
                b.upper
            );
            assert!(
                (b.lower - exact).abs() < 1e-9,
                "lower at t={time}: {} vs {exact}",
                b.lower
            );
        }
    }

    #[test]
    fn single_pole_delay_bounds_collapse() {
        let tau = 3.0;
        let t = single_pole(tau);
        for &v in &[0.1_f64, 0.5, 0.632, 0.9, 0.99] {
            let exact = -tau * (1.0 - v).ln();
            let b = t.delay_bounds(v).unwrap();
            assert!((b.lower.value() - exact).abs() < 1e-9, "lower at v={v}");
            assert!((b.upper.value() - exact).abs() < 1e-9, "upper at v={v}");
        }
    }

    #[test]
    fn delay_bounds_are_ordered_and_monotone_in_threshold() {
        let t = sample();
        let mut prev_lower = Seconds::ZERO;
        let mut prev_upper = Seconds::ZERO;
        for i in 1..100 {
            let v = i as f64 / 100.0;
            let b = t.delay_bounds(v).unwrap();
            assert!(b.lower <= b.upper, "ordered at v={v}");
            assert!(b.lower >= prev_lower, "lower monotone at v={v}");
            assert!(b.upper >= prev_upper, "upper monotone at v={v}");
            prev_lower = b.lower;
            prev_upper = b.upper;
        }
    }

    #[test]
    fn delay_and_voltage_bounds_are_consistent_inverses() {
        // If t_max(v) = T then v_min(T) ≥ v (reaching the threshold is
        // guaranteed by time T); if t_min(v) = T then v_max(T) ≥ v.
        let t = sample();
        for &v in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let b = t.delay_bounds(v).unwrap();
            let v_at_upper = t.voltage_lower_bound(b.upper).unwrap();
            assert!(
                v_at_upper >= v - 1e-9,
                "v_min(t_max({v})) = {v_at_upper} should be ≥ {v}"
            );
            let v_at_lower = t.voltage_upper_bound(b.lower).unwrap();
            assert!(
                v_at_lower >= v - 1e-9,
                "v_max(t_min({v})) = {v_at_lower} should be ≥ {v}"
            );
        }
    }

    #[test]
    fn invalid_thresholds_rejected() {
        let t = sample();
        for &v in &[0.0, 1.0, -0.5, 1.5, f64::NAN] {
            assert!(matches!(
                t.delay_bounds(v),
                Err(CoreError::ThresholdOutOfRange { .. })
            ));
        }
    }

    #[test]
    fn negative_times_rejected() {
        let t = sample();
        assert!(matches!(
            t.voltage_bounds(Seconds::new(-1.0)),
            Err(CoreError::NegativeTime { .. })
        ));
        assert!(matches!(
            t.certify(0.5, Seconds::new(-1.0)),
            Err(CoreError::NegativeTime { .. })
        ));
    }

    #[test]
    fn certification_matches_bounds() {
        let t = sample();
        let b = t.delay_bounds(0.5).unwrap();
        assert_eq!(
            t.certify(0.5, b.upper + Seconds::new(1.0)).unwrap(),
            Certification::Pass
        );
        assert_eq!(
            t.certify(0.5, b.lower - Seconds::new(1e-3)).unwrap(),
            Certification::Fail
        );
        let mid = Seconds::new((b.lower.value() + b.upper.value()) / 2.0);
        assert_eq!(t.certify(0.5, mid).unwrap(), Certification::Indeterminate);
    }

    #[test]
    fn degenerate_zero_elmore_output() {
        let t = CharacteristicTimes::new(
            Seconds::new(5.0),
            Seconds::ZERO,
            Seconds::ZERO,
            Ohms::new(1.0),
            Farads::new(1.0),
        )
        .unwrap();
        assert_eq!(t.voltage_upper_bound(Seconds::ZERO).unwrap(), 1.0);
        assert_eq!(t.voltage_lower_bound(Seconds::ZERO).unwrap(), 1.0);
        let b = t.delay_bounds(0.9).unwrap();
        assert_eq!(b.lower, Seconds::ZERO);
        assert_eq!(b.upper, Seconds::ZERO);
        assert_eq!(t.certify(0.9, Seconds::ZERO).unwrap(), Certification::Pass);
    }

    #[test]
    fn bound_struct_helpers() {
        let vb = VoltageBounds {
            lower: 0.2,
            upper: 0.6,
        };
        assert!((vb.width() - 0.4).abs() < 1e-12);
        assert!(vb.contains(0.4));
        assert!(!vb.contains(0.7));

        let db = DelayBounds {
            lower: Seconds::new(2.0),
            upper: Seconds::new(8.0),
        };
        assert_eq!(db.width(), Seconds::new(6.0));
        assert!(db.contains(Seconds::new(5.0)));
        assert!(!db.contains(Seconds::new(9.0)));
        assert!((db.relative_uncertainty() - 0.75).abs() < 1e-12);
        let zero = DelayBounds {
            lower: Seconds::ZERO,
            upper: Seconds::ZERO,
        };
        assert_eq!(zero.relative_uncertainty(), 0.0);
    }

    #[test]
    fn symbolic_bounds_match_scaled_scalar_bounds_everywhere() {
        use crate::batch::{BatchScratch, SymbolicScratch};
        // A small pre-order net: root, a wire line, a branch point, two
        // sinks with lumped loads.
        let parent: &[u32] = &[0, 0, 1, 2, 2];
        let branch_r: &[f64] = &[0.0, 120.0, 45.0, 80.0, 30.0];
        let branch_c: &[f64] = &[0.0, 4e-14, 1e-14, 0.0, 2e-14];
        let node_cap: &[f64] = &[0.0, 1e-14, 0.0, 9e-14, 5e-14];
        let mut sym = SymbolicScratch::new();
        let view = sym.sweep(parent, branch_r, branch_c, node_cap).unwrap();
        let threshold = 0.5;
        for &(rs, cs) in &[(1.0, 1.0), (0.8, 1.4), (1.4, 0.9), (2.0, 2.0)] {
            let br: Vec<f64> = branch_r.iter().map(|&r| r * rs).collect();
            let bc: Vec<f64> = branch_c.iter().map(|&c| c * cs).collect();
            let nc: Vec<f64> = node_cap.iter().map(|&c| c * cs).collect();
            let mut scratch = BatchScratch::new();
            let scaled = scratch.sweep(parent, &br, &bc, &nc).unwrap();
            for i in 0..view.node_count() {
                let st = view.times_at(i).unwrap();
                let sb = symbolic_delay_bounds(&st, threshold).unwrap();
                let want = scaled.times_at(i).unwrap().delay_bounds(threshold).unwrap();
                let got = sb.eval(rs, cs);
                let rel = |a: Seconds, b: Seconds| {
                    (a.value() - b.value()).abs() / b.value().abs().max(1e-30)
                };
                assert!(rel(got.lower, want.lower) < 1e-9, "node {i} at ({rs},{cs})");
                assert!(rel(got.upper, want.upper) < 1e-9, "node {i} at ({rs},{cs})");
            }
        }
    }

    #[test]
    fn symbolic_bounds_at_nominal_are_bit_identical_to_scalar_bounds() {
        use crate::batch::{BatchScratch, SymbolicScratch};
        let parent: &[u32] = &[0, 0, 1, 1];
        let branch_r: &[f64] = &[0.0, 200.0, 60.0, 75.0];
        let branch_c: &[f64] = &[0.0, 1e-14, 3e-15, 0.0];
        let node_cap: &[f64] = &[0.0, 0.0, 2e-14, 6e-14];
        let mut sym = SymbolicScratch::new();
        let view = sym.sweep(parent, branch_r, branch_c, node_cap).unwrap();
        let mut scratch = BatchScratch::new();
        let scalar = scratch.sweep(parent, branch_r, branch_c, node_cap).unwrap();
        for i in 0..view.node_count() {
            for &v in &[0.1, 0.5, 0.9] {
                let sb = symbolic_delay_bounds(&view.times_at(i).unwrap(), v).unwrap();
                let want = scalar.times_at(i).unwrap().delay_bounds(v).unwrap();
                assert_eq!(sb.eval(1.0, 1.0), want, "node {i} v={v}");
            }
        }
    }

    #[test]
    fn symbolic_bounds_sensitivities_match_finite_differences() {
        use crate::batch::SymbolicScratch;
        let parent: &[u32] = &[0, 0, 1];
        let branch_r: &[f64] = &[0.0, 150.0, 90.0];
        let branch_c: &[f64] = &[0.0, 2e-14, 1e-14];
        let node_cap: &[f64] = &[0.0, 0.0, 8e-14];
        let mut sym = SymbolicScratch::new();
        let view = sym.sweep(parent, branch_r, branch_c, node_cap).unwrap();
        let sb = symbolic_delay_bounds(&view.times_at(2).unwrap(), 0.5).unwrap();
        let h = 1e-6;
        let fd_r = (sb.upper.eval(1.0 + h, 1.0) - sb.upper.eval(1.0 - h, 1.0)) / (2.0 * h);
        let fd_c = (sb.upper.eval(1.0, 1.0 + h) - sb.upper.eval(1.0, 1.0 - h)) / (2.0 * h);
        let (dr, dc) = sb.upper_sens_at(1.0, 1.0);
        assert!((dr - fd_r).abs() <= 1e-9 * dr.abs().max(1e-30));
        assert!((dc - fd_c).abs() <= 1e-9 * dc.abs().max(1e-30));
        let (lr, lc) = sb.lower_sens_at(1.0, 1.0);
        assert!(lr >= 0.0 && lc >= 0.0);
        // Uniform full-sweep bounds are a pure r·c monomial: both partials
        // at (1, 1) equal the nominal bound value.
        assert_eq!(dr, sb.upper.eval(1.0, 1.0));
        assert_eq!(dc, sb.upper.eval(1.0, 1.0));
    }

    #[test]
    fn symbolic_bounds_reject_bad_thresholds_and_degenerate_shapes() {
        use crate::algebra::Poly2;
        let zero_elmore = SymbolicTimes {
            t_p: Poly2::monomial(1, 1, 5.0),
            t_d: Poly2::ZERO,
            t_r: Poly2::ZERO,
            r_ee: Poly2::monomial(1, 0, 1.0),
            total_cap: Poly2::monomial(0, 1, 1.0),
        };
        assert_eq!(
            symbolic_delay_bounds(&zero_elmore, 0.5).unwrap(),
            SymbolicDelayBounds::ZERO
        );
        assert!(matches!(
            symbolic_delay_bounds(&zero_elmore, 1.5),
            Err(CoreError::ThresholdOutOfRange { .. })
        ));
        // Mixed-shape times cannot arise from the uniform kernel and are
        // rejected rather than silently mis-scaled.
        let mixed = SymbolicTimes {
            t_p: Poly2::monomial(1, 0, 5.0),
            t_d: Poly2::monomial(1, 1, 2.0),
            t_r: Poly2::monomial(1, 1, 1.0),
            r_ee: Poly2::monomial(1, 0, 1.0),
            total_cap: Poly2::monomial(0, 1, 1.0),
        };
        assert!(matches!(
            symbolic_delay_bounds(&mixed, 0.5),
            Err(CoreError::InvalidValue { .. })
        ));
    }

    #[test]
    fn voltage_lower_bound_is_monotone_in_time() {
        let t = sample();
        let mut prev = -1.0;
        for i in 0..500 {
            let time = Seconds::new(i as f64 * 0.1);
            let lb = t.voltage_lower_bound(time).unwrap();
            assert!(lb >= prev - 1e-12, "lower bound dipped at t={time}");
            prev = lb;
        }
    }

    #[test]
    fn voltage_upper_bound_is_monotone_in_time() {
        let t = sample();
        let mut prev = -1.0;
        for i in 0..500 {
            let time = Seconds::new(i as f64 * 0.1);
            let ub = t.voltage_upper_bound(time).unwrap();
            assert!(ub >= prev - 1e-12, "upper bound dipped at t={time}");
            prev = ub;
        }
    }
}
