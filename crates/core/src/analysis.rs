//! Whole-tree delay analysis: every output, one report.
//!
//! [`TreeAnalysis`] bundles the characteristic times of every marked output
//! of an [`RcTree`] and offers the three use-cases listed in the paper's
//! abstract: bound the delay given a threshold, bound the voltage given a
//! time, and certify a network against a timing budget.
//!
//! ```
//! use rctree_core::analysis::TreeAnalysis;
//! use rctree_core::builder::RcTreeBuilder;
//! use rctree_core::units::{Ohms, Farads, Seconds};
//!
//! # fn main() -> rctree_core::error::Result<()> {
//! let mut b = RcTreeBuilder::new();
//! let a = b.add_resistor(b.input(), "a", Ohms::new(100.0))?;
//! let x = b.add_resistor(a, "x", Ohms::new(50.0))?;
//! let y = b.add_resistor(a, "y", Ohms::new(200.0))?;
//! b.add_capacitance(x, Farads::from_pico(0.1))?;
//! b.add_capacitance(y, Farads::from_pico(0.2))?;
//! b.mark_output(x)?;
//! b.mark_output(y)?;
//! let tree = b.build()?;
//!
//! let analysis = TreeAnalysis::of(&tree)?;
//! let worst = analysis.worst_delay_upper_bound(0.9)?;
//! assert!(worst.value() > 0.0);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::batch::BatchTimes;
use crate::bounds::{DelayBounds, VoltageBounds};
use crate::cert::Certification;
use crate::error::{CoreError, Result};
use crate::moments::CharacteristicTimes;
use crate::tree::{NodeId, RcTree};
use crate::units::Seconds;

/// Timing signature of one output node.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OutputTiming {
    /// The output node.
    pub node: NodeId,
    /// The node's name in the tree.
    pub name: String,
    /// The three characteristic times of this output.
    pub times: CharacteristicTimes,
}

/// Per-output characteristic times for a whole tree.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TreeAnalysis {
    outputs: Vec<OutputTiming>,
    /// Output node → position in `outputs`, for `O(1)` lookup.
    ///
    /// Derived from `outputs`; skipped by serde both to keep the serialized
    /// form `{outputs}` and because non-string map keys break JSON.  A
    /// future `Deserialize` restoration must rebuild both indexes.
    #[cfg_attr(feature = "serde", serde(skip))]
    by_node: HashMap<NodeId, usize>,
    /// Output name → position in `outputs`, for `O(1)` lookup (derived;
    /// see `by_node`).
    #[cfg_attr(feature = "serde", serde(skip))]
    by_name: HashMap<String, usize>,
}

impl TreeAnalysis {
    /// Analyses every marked output of `tree`.
    ///
    /// Runs on the [`BatchTimes`] engine: the whole analysis is `O(n)` in
    /// the tree size regardless of how many outputs are marked, rather than
    /// one linear traversal per output.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoOutputs`] if the tree has no outputs marked;
    /// * the errors of [`BatchTimes::of`] for degenerate networks.
    pub fn of(tree: &RcTree) -> Result<Self> {
        if tree.outputs().next().is_none() {
            return Err(CoreError::NoOutputs);
        }
        let batch = BatchTimes::of(tree)?;
        let mut outputs = Vec::new();
        let mut by_node = HashMap::new();
        let mut by_name = HashMap::new();
        for node in tree.outputs() {
            let name = tree.name(node)?.to_string();
            by_node.insert(node, outputs.len());
            by_name.insert(name.clone(), outputs.len());
            outputs.push(OutputTiming {
                node,
                name,
                times: batch.times(node)?,
            });
        }
        Ok(TreeAnalysis {
            outputs,
            by_node,
            by_name,
        })
    }

    /// The analysed outputs, in the tree's output order.
    pub fn outputs(&self) -> &[OutputTiming] {
        &self.outputs
    }

    /// Number of analysed outputs.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Returns `true` if there are no analysed outputs (never the case for a
    /// successfully constructed analysis).
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Timing signature of a specific output node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotAnOutput`] if `node` was not among the
    /// analysed outputs.
    pub fn output(&self, node: NodeId) -> Result<&OutputTiming> {
        self.by_node
            .get(&node)
            .map(|&i| &self.outputs[i])
            .ok_or(CoreError::NotAnOutput { node })
    }

    /// Timing signature of an output looked up by name.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NameNotFound`] if no analysed output has that
    /// name.
    pub fn output_by_name(&self, name: &str) -> Result<&OutputTiming> {
        self.by_name
            .get(name)
            .map(|&i| &self.outputs[i])
            .ok_or_else(|| CoreError::NameNotFound {
                name: name.to_string(),
            })
    }

    /// The output with the largest Elmore delay.
    pub fn critical_output(&self) -> &OutputTiming {
        self.outputs
            .iter()
            .max_by(|a, b| a.times.t_d.value().total_cmp(&b.times.t_d.value()))
            .expect("analysis always has at least one output")
    }

    /// Delay bounds at a specific output for a threshold voltage.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::NotAnOutput`] and threshold validation errors.
    pub fn delay_bounds(&self, node: NodeId, threshold: f64) -> Result<DelayBounds> {
        self.output(node)?.times.delay_bounds(threshold)
    }

    /// Voltage bounds at a specific output for a given time.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::NotAnOutput`] and time validation errors.
    pub fn voltage_bounds(&self, node: NodeId, t: Seconds) -> Result<VoltageBounds> {
        self.output(node)?.times.voltage_bounds(t)
    }

    /// The largest delay *upper* bound across all outputs — the guaranteed
    /// worst-case settling time of the whole net to the given threshold.
    ///
    /// # Errors
    ///
    /// Propagates threshold validation errors.
    pub fn worst_delay_upper_bound(&self, threshold: f64) -> Result<Seconds> {
        let mut worst = Seconds::ZERO;
        for o in &self.outputs {
            worst = worst.max(o.times.delay_upper_bound(threshold)?);
        }
        Ok(worst)
    }

    /// The largest delay *lower* bound across all outputs.
    ///
    /// # Errors
    ///
    /// Propagates threshold validation errors.
    pub fn worst_delay_lower_bound(&self, threshold: f64) -> Result<Seconds> {
        let mut worst = Seconds::ZERO;
        for o in &self.outputs {
            worst = worst.max(o.times.delay_lower_bound(threshold)?);
        }
        Ok(worst)
    }

    /// Certifies every output against a common budget and combines the
    /// verdicts conservatively (see [`Certification::and`]).
    ///
    /// # Errors
    ///
    /// Propagates threshold and budget validation errors.
    pub fn certify_all(&self, threshold: f64, budget: Seconds) -> Result<Certification> {
        let mut verdict = Certification::Pass;
        for o in &self.outputs {
            verdict = verdict.and(o.times.certify(threshold, budget)?);
        }
        Ok(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RcTreeBuilder;
    use crate::units::{Farads, Ohms};

    fn two_output_tree() -> (RcTree, NodeId, NodeId) {
        let mut b = RcTreeBuilder::new();
        let stem = b.add_resistor(b.input(), "stem", Ohms::new(100.0)).unwrap();
        let fast = b.add_resistor(stem, "fast", Ohms::new(10.0)).unwrap();
        let slow = b.add_resistor(stem, "slow", Ohms::new(400.0)).unwrap();
        b.add_capacitance(fast, Farads::new(1e-12)).unwrap();
        b.add_capacitance(slow, Farads::new(2e-12)).unwrap();
        b.mark_output(fast).unwrap();
        b.mark_output(slow).unwrap();
        (b.build().unwrap(), fast, slow)
    }

    #[test]
    fn analysis_covers_all_outputs() {
        let (tree, fast, slow) = two_output_tree();
        let a = TreeAnalysis::of(&tree).unwrap();
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!(a.output(fast).is_ok());
        assert!(a.output(slow).is_ok());
        assert_eq!(a.output_by_name("slow").unwrap().node, slow);
        assert!(a.output_by_name("nope").is_err());
    }

    #[test]
    fn non_output_node_is_rejected() {
        let (tree, _, _) = two_output_tree();
        let a = TreeAnalysis::of(&tree).unwrap();
        let stem = tree.node_by_name("stem").unwrap();
        assert!(matches!(a.output(stem), Err(CoreError::NotAnOutput { .. })));
    }

    #[test]
    fn critical_output_is_the_slow_one() {
        let (tree, _, slow) = two_output_tree();
        let a = TreeAnalysis::of(&tree).unwrap();
        assert_eq!(a.critical_output().node, slow);
    }

    #[test]
    fn worst_bounds_dominate_individual_outputs() {
        let (tree, fast, slow) = two_output_tree();
        let a = TreeAnalysis::of(&tree).unwrap();
        let worst_ub = a.worst_delay_upper_bound(0.9).unwrap();
        let worst_lb = a.worst_delay_lower_bound(0.9).unwrap();
        for node in [fast, slow] {
            let b = a.delay_bounds(node, 0.9).unwrap();
            assert!(b.upper <= worst_ub);
            assert!(b.lower <= worst_lb);
        }
        assert!(worst_lb <= worst_ub);
    }

    #[test]
    fn certify_all_is_conservative() {
        let (tree, _, slow) = two_output_tree();
        let a = TreeAnalysis::of(&tree).unwrap();
        let slow_bounds = a.delay_bounds(slow, 0.9).unwrap();
        // Generous budget: everything passes.
        assert_eq!(
            a.certify_all(0.9, slow_bounds.upper + Seconds::new(1.0))
                .unwrap(),
            Certification::Pass
        );
        // Impossible budget: the slow output definitely fails.
        assert_eq!(
            a.certify_all(0.9, Seconds::new(1e-15)).unwrap(),
            Certification::Fail
        );
    }

    #[test]
    fn voltage_bounds_accessible_per_output() {
        let (tree, fast, _) = two_output_tree();
        let a = TreeAnalysis::of(&tree).unwrap();
        let vb = a.voltage_bounds(fast, Seconds::new(1e-9)).unwrap();
        assert!(vb.lower <= vb.upper);
    }

    #[test]
    fn tree_without_outputs_is_rejected() {
        let mut b = RcTreeBuilder::new();
        let n = b.add_resistor(b.input(), "n", Ohms::new(1.0)).unwrap();
        b.add_capacitance(n, Farads::new(1.0)).unwrap();
        let tree = b.build().unwrap();
        assert!(matches!(TreeAnalysis::of(&tree), Err(CoreError::NoOutputs)));
    }
}
