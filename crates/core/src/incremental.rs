//! Incremental (ECO) re-analysis of mutable RC trees.
//!
//! The paper's pitch is that `T_P`, `T_De` and `T_Re` are cheap enough to
//! recompute *constantly* during design iteration.  The one-shot engine in
//! [`crate::batch`] delivers that for a frozen tree, but an engineering
//! change order (ECO) loop — resize a driver, tweak a load, re-query the
//! slack, repeat — pays the full `O(n)` rebuild on every edit.  This module
//! removes that cost: an [`EditableTree`] accepts [`TreeEdit`] deltas,
//! revalidates them locally, patches the tree's flattened
//! `TraversalCache` in place, and keeps an [`IncrementalTimes`] engine
//! whose characteristic-time state is repaired instead of recomputed.
//!
//! # How the delta propagates
//!
//! Both per-node quantities are sums of per-edge weights along the unique
//! root→node path (children of the cache's pre-order recurrence):
//!
//! ```text
//! T_De(k)      = Σ_{edges c on path(k)} w₁(c),  w₁(c) = r·(C_sub(c) + c_ℓ/2)
//! N(k)·R_kk⁻¹ = T_Re(k),  N(k) = Σ w₂(c),      w₂(c) = (R_cc+R_pp)·r·C_sub(c)
//!                                                     + c_ℓ·(R_pp·r + r²/3)
//! ```
//!
//! A value edit at node `v` only perturbs the weights of edges on the
//! root→`v` path (plus, for a branch-resistance change, the `w₂` weights
//! inside `v`'s subtree).  An edge's weight change affects exactly the
//! nodes *below* that edge — which, thanks to the pre-order subtree
//! intervals cached on the tree, is one contiguous slice of pre-order
//! positions.  The engine therefore stores each node's time as
//!
//! ```text
//! value(k) = base[k] + lazy(pre_index[k])
//! ```
//!
//! where `lazy` is a Fenwick tree over pre-order positions supporting
//! `O(log n)` subtree-range add and `O(log n)` point query.  `T_P` and
//! `C_T` are maintained as running sums, and the cache's `C_sub` prefix
//! array is patched along the root path.
//!
//! # Complexity
//!
//! | Edit | Numeric work | Index work |
//! |------|--------------|------------|
//! | [`TreeEdit::SetCap`] | `O(depth · log n)` | `O(depth)` |
//! | [`TreeEdit::SetBranch`] | `O(depth · log n + |subtree| · log n)` | `O(|subtree|)` |
//! | [`TreeEdit::GraftSubtree`] | `O(depth · log n + |subtree|)` | `O(n)` splice + re-index |
//! | [`TreeEdit::PruneSubtree`] | `O(depth · log n + |subtree|)` | `O(n)` compact + re-index |
//! | query ([`EditableTree::characteristic_times`]) | `O(log n)` | — |
//!
//! Structural edits pay an `O(n)` *integer* pass to splice or compact the
//! pre-order array and renumber ids — a few machine ops per node — while
//! their floating-point work stays proportional to the dirty region.  The
//! one-shot [`BatchTimes`](crate::batch::BatchTimes) is now a facade over
//! [`raw_times`], the same recurrence this engine uses to seed its state.
//!
//! # Invariants
//!
//! * The node table is always exact: edits write the new element values
//!   directly, so a [`RcTree::rebuild`] produces a bit-exact from-scratch
//!   oracle at any point.
//! * The patched cache (`path_r`, `down_cap`) and the engine state equal a
//!   from-scratch rebuild up to floating-point accumulation order; the
//!   `incremental_equivalence` suite pins the agreement to 1e-9 relative
//!   after every edit of seeded streams over every workload generator
//!   (with an absolute floor of `1e-12 × T_P`: the difference-array lazy
//!   structure stores `±Δ` pairs in separate accumulators, so a node whose
//!   true value is exactly zero can read back an `eps`-scale residue).
//! * [`TreeEdit::PruneSubtree`] compacts node ids: ids at or above the
//!   pruned region are renumbered, so previously held [`NodeId`]s are
//!   invalidated (look nodes up by name across structural edits).
//!
//! ```
//! use rctree_core::builder::RcTreeBuilder;
//! use rctree_core::incremental::{EditableTree, TreeEdit};
//! use rctree_core::units::{Farads, Ohms};
//!
//! # fn main() -> rctree_core::error::Result<()> {
//! let mut b = RcTreeBuilder::new();
//! let load = b.add_resistor(b.input(), "load", Ohms::new(1000.0))?;
//! b.add_capacitance(load, Farads::from_femto(100.0))?;
//! b.mark_output(load)?;
//! let mut eco = EditableTree::new(b.build()?);
//!
//! let before = eco.characteristic_times(load)?.t_d;
//! eco.apply(&TreeEdit::SetCap {
//!     node: load,
//!     cap: Farads::from_femto(200.0),
//! })?;
//! let after = eco.characteristic_times(load)?.t_d;
//! assert!(after > before);
//! # Ok(())
//! # }
//! ```

use std::collections::HashSet;

use crate::batch::BatchTimes;
use crate::element::Branch;
use crate::error::{CoreError, Result};
use crate::moments::CharacteristicTimes;
use crate::tree::{NodeId, RcTree};
use crate::units::{Farads, Seconds};

/// Raw (un-normalised) characteristic-time state of every node: the shared
/// computation underneath both the one-shot
/// [`BatchTimes`](crate::batch::BatchTimes) facade and the incremental
/// engine.  `t_r_num` holds the `Σ R_ke²·C_k` numerators before division by
/// `R_ee`.
pub(crate) struct RawTimes {
    pub(crate) t_p: f64,
    pub(crate) total_cap: f64,
    pub(crate) t_d: Vec<f64>,
    pub(crate) t_r_num: Vec<f64>,
}

/// Computes the raw characteristic times of every node in one pass over the
/// flattened traversal cache (the former body of `BatchTimes::of`, shared so
/// the incremental engine seeds from the identical float sequence).
pub(crate) fn raw_times(tree: &RcTree) -> RawTimes {
    let cache = tree.traversal();
    let n = cache.preorder.len();

    // C_T via the tree's own summation (bit-identical to the value the
    // per-output oracles embed), T_P in one pass over the flat arrays.
    let total_cap = tree.total_capacitance().value();
    let mut t_p = 0.0_f64;
    for i in 0..n {
        let p = cache.parent[i] as usize;
        t_p += cache.node_cap[i] * cache.path_r[i]
            + cache.branch_c[i] * (cache.path_r[p] + cache.branch_r[i] / 2.0);
    }

    // Pre-order pass: carry T_De and the Σ R_ke²·C_k numerator down every
    // root→node edge.
    let mut t_d = vec![0.0_f64; n];
    let mut t_r_num = vec![0.0_f64; n];
    for &c in &cache.preorder[1..] {
        let c = c as usize;
        let p = cache.parent[c] as usize;
        let r = cache.branch_r[c];
        let c_line = cache.branch_c[c];
        let c_sub = cache.down_cap[c];
        let (r_pp, r_cc) = (cache.path_r[p], cache.path_r[c]);
        t_d[c] = t_d[p] + r * (c_sub + c_line / 2.0);
        t_r_num[c] = t_r_num[p] + (r_cc + r_pp) * r * c_sub + c_line * (r_pp * r + r * r / 3.0);
    }

    RawTimes {
        t_p,
        total_cap,
        t_d,
        t_r_num,
    }
}

/// A Fenwick (binary indexed) tree over pre-order positions, holding the
/// lazy per-subtree offsets of the incremental engine: `O(log n)`
/// half-open range add, `O(log n)` point query, `O(n)` drain-to-points when
/// a structural edit re-shapes the position space.
#[derive(Debug, Clone, Default)]
struct Fenwick {
    /// 1-based implicit tree over the difference array.
    tree: Vec<f64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0.0; n + 1],
        }
    }

    fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Adds `v` to the difference array at 0-based position `i`.
    fn add(&mut self, i: usize, v: f64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += v;
            i += i & i.wrapping_neg();
        }
    }

    /// Adds `v` to every position in the half-open range `[l, r)`.
    fn range_add(&mut self, l: usize, r: usize, v: f64) {
        if v == 0.0 || l >= r {
            return;
        }
        self.add(l, v);
        if r < self.len() {
            self.add(r, -v);
        }
    }

    /// The accumulated offset at 0-based position `i`.
    fn point(&self, i: usize) -> f64 {
        let mut i = i + 1;
        let mut sum = 0.0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Recovers every point value in `O(n)` and resets the structure to
    /// zero (used to fold lazy offsets into the base arrays before a
    /// structural edit invalidates the position space).
    fn drain_points(&mut self) -> Vec<f64> {
        let n = self.len();
        let mut diff = std::mem::replace(&mut self.tree, vec![0.0; n + 1]);
        // Invert the implicit-tree accumulation back into the difference
        // array, then prefix-sum it into point values.
        for i in (1..=n).rev() {
            let j = i + (i & i.wrapping_neg());
            if j <= n {
                diff[j] -= diff[i];
            }
        }
        let mut points = Vec::with_capacity(n);
        let mut acc = 0.0;
        for d in diff.iter().skip(1) {
            acc += d;
            points.push(acc);
        }
        points
    }
}

/// One delta applied to an [`EditableTree`].
#[derive(Debug, Clone, PartialEq)]
pub enum TreeEdit {
    /// Replace the lumped grounded capacitance at a node (any node,
    /// including the input).
    SetCap {
        /// Node whose capacitance is replaced.
        node: NodeId,
        /// New total lumped capacitance at the node.
        cap: Farads,
    },
    /// Replace the branch element feeding a node from its parent (resize a
    /// resistor, re-extract a wire as a different line).
    SetBranch {
        /// Node whose feeding branch is replaced (not the input).
        node: NodeId,
        /// The new branch element.
        branch: Branch,
    },
    /// Attach a whole validated subtree under an existing node through a
    /// new branch.  The subtree's input node becomes a new child of
    /// `parent`; every node name in `subtree` must be unused in the host
    /// tree.
    GraftSubtree {
        /// Host node the subtree is attached under.
        parent: NodeId,
        /// The new branch connecting `parent` to the subtree's input node.
        via: Branch,
        /// The subtree to graft (its output marks and capacitances carry
        /// over).  Boxed to keep the edit enum small (grafts are the rare
        /// op; cap/branch tweaks dominate edit streams).
        subtree: Box<RcTree>,
    },
    /// Remove a node, its feeding branch, and its entire subtree.
    ///
    /// Compaction renumbers the surviving node ids, so [`NodeId`]s obtained
    /// before the prune are invalidated; re-resolve nodes by name.
    PruneSubtree {
        /// Root of the subtree to remove (not the input).
        node: NodeId,
    },
}

/// The live characteristic-time state of an [`EditableTree`]: the
/// refactored heart of [`BatchTimes`](crate::batch::BatchTimes) whose
/// subtree-capacitance and prefix-sum arrays stay resident and are
/// *repaired* on each edit instead of recomputed.
#[derive(Debug, Clone)]
pub struct IncrementalTimes {
    /// `T_P = Σ R_kk·C_k`, maintained as a running sum.
    t_p: f64,
    /// Total network capacitance, maintained as a running sum.
    total_cap: f64,
    /// Base Elmore delay per node id; the true value adds the lazy offset
    /// at the node's pre-order position.
    td_base: Vec<f64>,
    /// Base `Σ R_ke²·C_k` numerator per node id (same convention).
    trn_base: Vec<f64>,
    /// Lazy subtree offsets for `T_De`, over pre-order positions.
    td_lazy: Fenwick,
    /// Lazy subtree offsets for the `T_Re` numerator.
    trn_lazy: Fenwick,
}

impl IncrementalTimes {
    /// `T_P`, the output-independent characteristic time.
    pub fn t_p(&self) -> Seconds {
        Seconds::new(self.t_p.max(0.0))
    }

    /// Total capacitance `C_T` of the network as currently edited.
    pub fn total_capacitance(&self) -> Farads {
        Farads::new(self.total_cap.max(0.0))
    }

    /// Number of live nodes covered by the engine.
    pub fn node_count(&self) -> usize {
        self.td_base.len()
    }
}

/// A mutable RC tree with live incremental analysis.
///
/// Wraps a validated [`RcTree`]; [`EditableTree::apply`] validates each
/// [`TreeEdit`] locally, patches the node table and the flattened traversal
/// cache in place, and repairs the attached [`IncrementalTimes`] in
/// `O(depth + |affected subtree|)` numeric work instead of `O(n)`.
///
/// Unlike [`BatchTimes::of`](crate::batch::BatchTimes::of), construction
/// accepts capacitance-free trees (an ECO may be about to *add* the first
/// capacitor); queries on such a state return
/// [`CoreError::NoCapacitance`], matching the one-shot engine.
#[derive(Debug, Clone)]
pub struct EditableTree {
    tree: RcTree,
    times: IncrementalTimes,
}

impl EditableTree {
    /// Wraps a tree, seeding the incremental engine with one `O(n)` sweep
    /// (the same recurrence as [`BatchTimes::of`](crate::batch::BatchTimes::of)).
    pub fn new(tree: RcTree) -> Self {
        let raw = raw_times(&tree);
        let n = tree.node_count();
        EditableTree {
            times: IncrementalTimes {
                t_p: raw.t_p,
                total_cap: raw.total_cap,
                td_base: raw.t_d,
                trn_base: raw.t_r_num,
                td_lazy: Fenwick::new(n),
                trn_lazy: Fenwick::new(n),
            },
            tree,
        }
    }

    /// The current state of the tree (node table always exact; derived
    /// cache patched in place).
    pub fn tree(&self) -> &RcTree {
        &self.tree
    }

    /// The live analysis engine (running `T_P` / `C_T` sums).
    pub fn times(&self) -> &IncrementalTimes {
        &self.times
    }

    /// Unwraps the edited tree.
    pub fn into_tree(self) -> RcTree {
        self.tree
    }

    /// Applies one edit, repairing the analysis state.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NodeNotFound`] for a node outside the tree;
    /// * [`CoreError::InvalidValue`] for negative or non-finite values;
    /// * [`CoreError::CannotEditInput`] for a [`TreeEdit::SetBranch`] or
    ///   [`TreeEdit::PruneSubtree`] aimed at the input node;
    /// * [`CoreError::DuplicateName`] when a grafted subtree reuses a host
    ///   node name.
    ///
    /// On error the tree and engine state are unchanged.
    pub fn apply(&mut self, edit: &TreeEdit) -> Result<()> {
        match edit {
            TreeEdit::SetCap { node, cap } => self.set_cap(*node, *cap),
            TreeEdit::SetBranch { node, branch } => self.set_branch(*node, *branch),
            TreeEdit::GraftSubtree {
                parent,
                via,
                subtree,
            } => self.graft(*parent, *via, subtree),
            TreeEdit::PruneSubtree { node } => self.prune(*node),
        }
    }

    /// The characteristic times of one node under the current edits
    /// (`O(log n)`).
    ///
    /// # Errors
    ///
    /// * [`CoreError::NodeNotFound`] if `node` is out of range;
    /// * [`CoreError::NoCapacitance`] if the edited tree currently carries
    ///   no capacitance.
    pub fn characteristic_times(&self, node: NodeId) -> Result<CharacteristicTimes> {
        self.tree.check(node)?;
        if self.times.total_cap <= 0.0 {
            return Err(CoreError::NoCapacitance);
        }
        let i = node.index();
        let cache = self.tree.traversal();
        let pos = cache.pre_index[i] as usize;
        // Clamp away the tiny negative residue that cancelling deltas can
        // leave where the true value is zero.
        let t_d = (self.times.td_base[i] + self.times.td_lazy.point(pos)).max(0.0);
        let num = (self.times.trn_base[i] + self.times.trn_lazy.point(pos)).max(0.0);
        let r_ee = cache.path_r[i];
        let t_r = if num == 0.0 {
            0.0
        } else if r_ee == 0.0 {
            return Err(CoreError::NoPathResistance { output: node });
        } else {
            num / r_ee
        };
        CharacteristicTimes::new(
            self.times.t_p(),
            Seconds::new(t_d),
            Seconds::new(t_r),
            crate::units::Ohms::new(r_ee),
            self.times.total_capacitance(),
        )
    }

    /// Elmore delay of one node under the current edits (`O(log n)`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` is out of range.
    pub fn elmore_delay(&self, node: NodeId) -> Result<Seconds> {
        self.tree.check(node)?;
        let i = node.index();
        let pos = self.tree.traversal().pre_index[i] as usize;
        Ok(Seconds::new(
            (self.times.td_base[i] + self.times.td_lazy.point(pos)).max(0.0),
        ))
    }

    /// Materialises the current state into a one-shot [`BatchTimes`]
    /// snapshot (`O(n log n)`).
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoCapacitance`] if the edited tree currently carries
    ///   no capacitance;
    /// * [`CoreError::NoPathResistance`] (defensive, as for
    ///   [`BatchTimes::of`](crate::batch::BatchTimes::of)).
    pub fn batch(&self) -> Result<BatchTimes> {
        if self.times.total_cap <= 0.0 {
            return Err(CoreError::NoCapacitance);
        }
        let cache = self.tree.traversal();
        let n = cache.preorder.len();
        let mut t_d = vec![0.0_f64; n];
        let mut t_r_num = vec![0.0_f64; n];
        for i in 0..n {
            let pos = cache.pre_index[i] as usize;
            t_d[i] = (self.times.td_base[i] + self.times.td_lazy.point(pos)).max(0.0);
            t_r_num[i] = (self.times.trn_base[i] + self.times.trn_lazy.point(pos)).max(0.0);
        }
        BatchTimes::from_raw(
            RawTimes {
                t_p: self.times.t_p.max(0.0),
                total_cap: self.times.total_cap,
                t_d,
                t_r_num,
            },
            cache.path_r.clone(),
        )
    }

    /// Folds the lazy pre-order offsets into the base arrays and resets
    /// them; required before any edit that re-shapes the pre-order
    /// position space.
    fn flatten(&mut self) {
        let cache = self.tree.traversal();
        let td_pts = self.times.td_lazy.drain_points();
        let trn_pts = self.times.trn_lazy.drain_points();
        for i in 0..cache.preorder.len() {
            let pos = cache.pre_index[i] as usize;
            self.times.td_base[i] += td_pts[pos];
            self.times.trn_base[i] += trn_pts[pos];
        }
    }

    fn set_cap(&mut self, node: NodeId, cap: Farads) -> Result<()> {
        self.tree.check(node)?;
        let value = cap.value();
        if !value.is_finite() || value < 0.0 {
            return Err(CoreError::InvalidValue {
                what: "capacitance",
                value,
            });
        }
        let i = node.index();
        let delta = value - self.tree.cache.node_cap[i];
        self.tree.nodes[i].cap = cap;
        if delta == 0.0 {
            return Ok(());
        }
        let cache = &mut self.tree.cache;
        cache.node_cap[i] = value;
        // Subtree capacitances along the root path.
        let mut a = i;
        loop {
            cache.down_cap[a] += delta;
            if a == 0 {
                break;
            }
            a = cache.parent[a] as usize;
        }
        self.times.total_cap += delta;
        self.times.t_p += cache.path_r[i] * delta;
        // Every edge on the root path carries the extra capacitance: its
        // weight change reaches exactly the nodes below it (one pre-order
        // interval each).
        let mut c = i;
        while c != 0 {
            let p = cache.parent[c] as usize;
            let r = cache.branch_r[c];
            if r != 0.0 {
                let (l, e) = cache.interval(c);
                self.times.td_lazy.range_add(l, e, r * delta);
                self.times.trn_lazy.range_add(
                    l,
                    e,
                    (cache.path_r[c] + cache.path_r[p]) * r * delta,
                );
            }
            c = p;
        }
        Ok(())
    }

    fn set_branch(&mut self, node: NodeId, branch: Branch) -> Result<()> {
        self.tree.check(node)?;
        if node == NodeId::INPUT {
            return Err(CoreError::CannotEditInput);
        }
        let new_r = branch.resistance().value();
        let new_c = branch.capacitance().value();
        for (what, v) in [("resistance", new_r), ("line capacitance", new_c)] {
            if !v.is_finite() || v < 0.0 {
                return Err(CoreError::InvalidValue { what, value: v });
            }
        }
        let i = node.index();
        let (old_r, old_c) = (self.tree.cache.branch_r[i], self.tree.cache.branch_c[i]);
        let (dr, dc) = (new_r - old_r, new_c - old_c);
        self.tree.nodes[i].branch = Some(branch);
        if dr == 0.0 && dc == 0.0 {
            return Ok(());
        }
        let times = &mut self.times;
        let cache = &mut self.tree.cache;
        let p = cache.parent[i] as usize;
        let r_pp = cache.path_r[p];
        let d = cache.down_cap[i];
        times.t_p += dr * d + (new_c * (r_pp + new_r / 2.0) - old_c * (r_pp + old_r / 2.0));
        times.total_cap += dc;
        cache.branch_r[i] = new_r;
        cache.branch_c[i] = new_c;
        // The edited edge itself: both weights change for everything below.
        let (l, e) = cache.interval(i);
        let w1 = |r: f64, cl: f64| r * (d + cl / 2.0);
        let w2 = |r: f64, cl: f64| (2.0 * r_pp + r) * r * d + cl * (r_pp * r + r * r / 3.0);
        times
            .td_lazy
            .range_add(l, e, w1(new_r, new_c) - w1(old_r, old_c));
        times
            .trn_lazy
            .range_add(l, e, w2(new_r, new_c) - w2(old_r, old_c));
        if dr != 0.0 {
            // Path resistances below the edge shift by `dr` — a contiguous
            // pre-order slice — which perturbs the T_Re weight of every
            // inner edge.  (T_De weights are unaffected: they depend only
            // on the edge's own r and its downstream capacitance.)
            for pos in l..e {
                let k = cache.preorder[pos] as usize;
                cache.path_r[k] += dr;
            }
            for pos in l + 1..e {
                let k = cache.preorder[pos] as usize;
                let rk = cache.branch_r[k];
                if rk != 0.0 {
                    let (kl, ke) = cache.interval(k);
                    times.trn_lazy.range_add(
                        kl,
                        ke,
                        dr * rk * (2.0 * cache.down_cap[k] + cache.branch_c[k]),
                    );
                }
            }
        }
        if dc != 0.0 {
            // The line's own distributed capacitance sits in every
            // ancestor's subtree capacitance.
            let mut a = p;
            loop {
                cache.down_cap[a] += dc;
                if a == 0 {
                    break;
                }
                let ra = cache.branch_r[a];
                if ra != 0.0 {
                    let (al, ae) = cache.interval(a);
                    let pa = cache.parent[a] as usize;
                    times.td_lazy.range_add(al, ae, ra * dc);
                    times.trn_lazy.range_add(
                        al,
                        ae,
                        (cache.path_r[a] + cache.path_r[pa]) * ra * dc,
                    );
                }
                a = cache.parent[a] as usize;
            }
        }
        Ok(())
    }

    fn graft(&mut self, parent: NodeId, via: Branch, subtree: &RcTree) -> Result<()> {
        self.tree.check(parent)?;
        let via_r = via.resistance().value();
        let via_c = via.capacitance().value();
        for (what, v) in [("resistance", via_r), ("line capacitance", via_c)] {
            if !v.is_finite() || v < 0.0 {
                return Err(CoreError::InvalidValue { what, value: v });
            }
        }
        {
            let host_names: HashSet<&str> =
                self.tree.nodes.iter().map(|n| n.name.as_str()).collect();
            for data in &subtree.nodes {
                if host_names.contains(data.name.as_str()) {
                    return Err(CoreError::DuplicateName {
                        name: data.name.clone(),
                    });
                }
            }
        }

        let gp = parent.index();
        let n_old = self.tree.node_count();
        let m = subtree.node_count();

        // Pre-order positions are about to shift: fold the lazy offsets
        // into the base arrays first.
        self.flatten();

        // Node table: subtree node `j` becomes host node `n_old + j`; its
        // input is rewired onto `parent` through `via`.
        for (j, data) in subtree.nodes.iter().enumerate() {
            let mut d = data.clone();
            d.parent = Some(match data.parent {
                Some(p) => NodeId(n_old + p.index()),
                None => parent,
            });
            if j == 0 {
                d.branch = Some(via);
            }
            for c in &mut d.children {
                *c = NodeId(n_old + c.index());
            }
            self.tree.nodes.push(d);
        }
        self.tree.nodes[gp].children.push(NodeId(n_old));

        // Cache: extend the flat arrays, splice the mapped pre-order run at
        // the end of the graft parent's interval (the grafted root is the
        // parent's new last child, matching a from-scratch DFS), re-index.
        let sub_cache = subtree.traversal();
        let insert_pos = self.tree.cache.subtree_end[gp] as usize;
        {
            let cache = &mut self.tree.cache;
            for j in 0..m {
                cache.parent.push(if j == 0 {
                    gp as u32
                } else {
                    (n_old + sub_cache.parent[j] as usize) as u32
                });
                cache
                    .branch_r
                    .push(if j == 0 { via_r } else { sub_cache.branch_r[j] });
                cache
                    .branch_c
                    .push(if j == 0 { via_c } else { sub_cache.branch_c[j] });
                cache.node_cap.push(sub_cache.node_cap[j]);
                cache.down_cap.push(sub_cache.down_cap[j]);
                cache.path_r.push(0.0);
            }
            let mapped: Vec<u32> = sub_cache
                .preorder
                .iter()
                .map(|&j| (n_old + j as usize) as u32)
                .collect();
            cache.preorder.splice(insert_pos..insert_pos, mapped);
            cache.rebuild_intervals();
            for pos in insert_pos..insert_pos + m {
                let k = cache.preorder[pos] as usize;
                let pk = cache.parent[k] as usize;
                cache.path_r[k] = cache.path_r[pk] + cache.branch_r[k];
            }
        }

        // Numeric state: new contributions to C_T and T_P, base times for
        // the new nodes seeded from the graft parent's pre-edit value, then
        // one root-path correction shared by old and new nodes alike.
        let c_add = sub_cache.down_cap[0] + via_c;
        let times = &mut self.times;
        let cache = &mut self.tree.cache;
        times.total_cap += c_add;
        times.td_base.resize(n_old + m, 0.0);
        times.trn_base.resize(n_old + m, 0.0);
        for pos in insert_pos..insert_pos + m {
            let k = cache.preorder[pos] as usize;
            let pk = cache.parent[k] as usize;
            let r = cache.branch_r[k];
            let cl = cache.branch_c[k];
            let (r_pp, r_cc) = (cache.path_r[pk], cache.path_r[k]);
            times.t_p += cache.node_cap[k] * cache.path_r[k] + cl * (r_pp + r / 2.0);
            times.td_base[k] = times.td_base[pk] + r * (cache.down_cap[k] + cl / 2.0);
            times.trn_base[k] = times.trn_base[pk]
                + (r_cc + r_pp) * r * cache.down_cap[k]
                + cl * (r_pp * r + r * r / 3.0);
        }
        times.td_lazy = Fenwick::new(n_old + m);
        times.trn_lazy = Fenwick::new(n_old + m);
        // Root-path correction: every subtree capacitance from the graft
        // parent up grows by `c_add`.
        let mut a = gp;
        loop {
            cache.down_cap[a] += c_add;
            if a == 0 {
                break;
            }
            let ra = cache.branch_r[a];
            if ra != 0.0 {
                let (al, ae) = cache.interval(a);
                let pa = cache.parent[a] as usize;
                times.td_lazy.range_add(al, ae, ra * c_add);
                times
                    .trn_lazy
                    .range_add(al, ae, (cache.path_r[a] + cache.path_r[pa]) * ra * c_add);
            }
            a = cache.parent[a] as usize;
        }
        Ok(())
    }

    fn prune(&mut self, node: NodeId) -> Result<()> {
        self.tree.check(node)?;
        if node == NodeId::INPUT {
            return Err(CoreError::CannotEditInput);
        }
        let i = node.index();

        self.flatten();

        let (l, e) = self.tree.cache.interval(i);
        let c_rem = self.tree.cache.down_cap[i] + self.tree.cache.branch_c[i];
        let n_old = self.tree.node_count();

        // Numeric removals, against the pre-edit cache.
        {
            let cache = &self.tree.cache;
            for pos in l..e {
                let k = cache.preorder[pos] as usize;
                let pk = cache.parent[k] as usize;
                self.times.t_p -= cache.node_cap[k] * cache.path_r[k]
                    + cache.branch_c[k] * (cache.path_r[pk] + cache.branch_r[k] / 2.0);
            }
        }
        self.times.total_cap -= c_rem;

        // Old→new id map (surviving ids shift down past the holes).
        let mut doomed = vec![false; n_old];
        for pos in l..e {
            doomed[self.tree.cache.preorder[pos] as usize] = true;
        }
        let mut new_id = vec![0u32; n_old];
        let mut next = 0u32;
        for (k, id) in new_id.iter_mut().enumerate() {
            *id = next;
            if !doomed[k] {
                next += 1;
            }
        }
        let parent_old = self.tree.cache.parent[i] as usize;

        // Compact the node table.
        let nodes = std::mem::take(&mut self.tree.nodes);
        let mut kept = Vec::with_capacity(n_old - (e - l));
        for (k, mut data) in nodes.into_iter().enumerate() {
            if doomed[k] {
                continue;
            }
            data.parent = data.parent.map(|p| NodeId(new_id[p.index()] as usize));
            data.children.retain(|c| !doomed[c.index()]);
            for c in &mut data.children {
                *c = NodeId(new_id[c.index()] as usize);
            }
            kept.push(data);
        }
        self.tree.nodes = kept;

        // Compact the cache and base arrays in lockstep.
        fn retain<T: Copy>(v: &mut Vec<T>, doomed: &[bool]) {
            let mut w = 0;
            for k in 0..v.len() {
                if !doomed[k] {
                    v[w] = v[k];
                    w += 1;
                }
            }
            v.truncate(w);
        }
        {
            let cache = &mut self.tree.cache;
            for k in 0..n_old {
                if !doomed[k] {
                    cache.parent[k] = new_id[cache.parent[k] as usize];
                }
            }
            retain(&mut cache.parent, &doomed);
            retain(&mut cache.branch_r, &doomed);
            retain(&mut cache.branch_c, &doomed);
            retain(&mut cache.node_cap, &doomed);
            retain(&mut cache.path_r, &doomed);
            retain(&mut cache.down_cap, &doomed);
            cache.preorder.drain(l..e);
            for p in &mut cache.preorder {
                *p = new_id[*p as usize];
            }
            cache.pre_index.truncate(cache.preorder.len());
            cache.subtree_end.truncate(cache.preorder.len());
            cache.rebuild_intervals();
        }
        retain(&mut self.times.td_base, &doomed);
        retain(&mut self.times.trn_base, &doomed);
        let n_new = self.tree.nodes.len();
        self.times.td_lazy = Fenwick::new(n_new);
        self.times.trn_lazy = Fenwick::new(n_new);

        // Root-path correction with the surviving ids.
        let times = &mut self.times;
        let cache = &mut self.tree.cache;
        let mut a = new_id[parent_old] as usize;
        loop {
            cache.down_cap[a] -= c_rem;
            if a == 0 {
                break;
            }
            let ra = cache.branch_r[a];
            if ra != 0.0 {
                let (al, ae) = cache.interval(a);
                let pa = cache.parent[a] as usize;
                times.td_lazy.range_add(al, ae, -(ra * c_rem));
                times.trn_lazy.range_add(
                    al,
                    ae,
                    -((cache.path_r[a] + cache.path_r[pa]) * ra * c_rem),
                );
            }
            a = cache.parent[a] as usize;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RcTreeBuilder;
    use crate::units::Ohms;

    /// Asserts that the incremental state matches a from-scratch rebuild of
    /// the same node table at every node: 1e-9 relative, with an absolute
    /// floor of `1e-12 × <whole-tree scale>` absorbing the ±Δ rounding
    /// residue the lazy difference arrays can leave at exactly-zero nodes.
    fn assert_matches_rebuild(eco: &EditableTree) {
        let rebuilt = eco.tree().rebuild();
        assert_eq!(
            rebuilt.preorder(),
            eco.tree().preorder(),
            "pre-order drifted"
        );
        let oracle = BatchTimes::of(&rebuilt).expect("rebuilt tree analyses");
        let close = |g: f64, w: f64, scale: f64| (g - w).abs() <= 1e-9 * w.abs().max(1e-3 * scale);
        let time_scale = oracle.t_p().value();
        for node in rebuilt.node_ids() {
            let want = oracle.times(node).unwrap();
            let got = eco.characteristic_times(node).unwrap();
            for (g, w) in [
                (got.t_p, want.t_p),
                (got.t_d, want.t_d),
                (got.t_r, want.t_r),
            ] {
                assert!(
                    close(g.value(), w.value(), time_scale),
                    "node {node}: got {g:?}, want {w:?}"
                );
            }
            assert!(
                close(
                    got.r_ee.value(),
                    want.r_ee.value(),
                    rebuilt.total_resistance().value()
                ),
                "node {node}"
            );
            assert!(close(
                got.total_cap.value(),
                want.total_cap.value(),
                rebuilt.total_capacitance().value()
            ));
        }
    }

    fn branching_tree() -> RcTree {
        let mut b = RcTreeBuilder::new();
        let a = b
            .add_line(b.input(), "a", Ohms::new(15.0), Farads::new(1.5))
            .unwrap();
        b.add_capacitance(a, Farads::new(2.0)).unwrap();
        let s1 = b.add_resistor(a, "s1", Ohms::new(8.0)).unwrap();
        b.add_capacitance(s1, Farads::new(7.0)).unwrap();
        let s2 = b
            .add_line(s1, "s2", Ohms::new(2.0), Farads::new(0.5))
            .unwrap();
        b.add_capacitance(s2, Farads::new(0.25)).unwrap();
        let o = b
            .add_line(a, "o", Ohms::new(3.0), Farads::new(4.0))
            .unwrap();
        b.add_capacitance(o, Farads::new(9.0)).unwrap();
        b.mark_output(o).unwrap();
        b.mark_output(s2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn fenwick_range_add_point_query_and_drain() {
        let mut f = Fenwick::new(10);
        f.range_add(2, 7, 1.5);
        f.range_add(0, 10, -0.5);
        f.range_add(6, 10, 2.0);
        let expect = |i: usize| {
            let mut v = -0.5;
            if (2..7).contains(&i) {
                v += 1.5;
            }
            if i >= 6 {
                v += 2.0;
            }
            v
        };
        for i in 0..10 {
            assert!((f.point(i) - expect(i)).abs() < 1e-15, "point {i}");
        }
        let pts = f.drain_points();
        for (i, p) in pts.iter().enumerate() {
            assert!((p - expect(i)).abs() < 1e-15, "drained {i}");
        }
        for i in 0..10 {
            assert_eq!(f.point(i), 0.0, "reset {i}");
        }
    }

    #[test]
    fn unedited_state_matches_batch_exactly() {
        let tree = branching_tree();
        let batch = BatchTimes::of(&tree).unwrap();
        let eco = EditableTree::new(tree);
        for node in eco.tree().node_ids() {
            assert_eq!(
                eco.characteristic_times(node).unwrap(),
                batch.times(node).unwrap(),
                "node {node}"
            );
        }
        assert_eq!(eco.batch().unwrap(), batch);
    }

    #[test]
    fn set_cap_tracks_the_rebuild_oracle() {
        let mut eco = EditableTree::new(branching_tree());
        for (name, cap) in [("o", 1.0), ("s1", 20.0), ("a", 0.0), ("input", 3.0)] {
            let node = eco.tree().node_by_name(name).unwrap();
            eco.apply(&TreeEdit::SetCap {
                node,
                cap: Farads::new(cap),
            })
            .unwrap();
            assert_matches_rebuild(&eco);
        }
    }

    #[test]
    fn set_branch_tracks_the_rebuild_oracle() {
        let mut eco = EditableTree::new(branching_tree());
        let edits = [
            ("s1", Branch::resistor(Ohms::new(80.0))),
            ("a", Branch::line(Ohms::new(1.0), Farads::new(6.0))),
            ("o", Branch::resistor(Ohms::new(3.0))), // line -> resistor
            ("s2", Branch::line(Ohms::new(7.5), Farads::new(0.1))),
        ];
        for (name, branch) in edits {
            let node = eco.tree().node_by_name(name).unwrap();
            eco.apply(&TreeEdit::SetBranch { node, branch }).unwrap();
            assert_matches_rebuild(&eco);
        }
    }

    #[test]
    fn graft_and_prune_track_the_rebuild_oracle() {
        let mut eco = EditableTree::new(branching_tree());

        let mut gb = RcTreeBuilder::with_input_name("g0");
        let g1 = gb.add_resistor(gb.input(), "g1", Ohms::new(4.0)).unwrap();
        gb.add_capacitance(g1, Farads::new(1.25)).unwrap();
        gb.add_capacitance(gb.input(), Farads::new(0.5)).unwrap();
        gb.mark_output(g1).unwrap();
        let graft = gb.build().unwrap();

        let parent = eco.tree().node_by_name("s1").unwrap();
        eco.apply(&TreeEdit::GraftSubtree {
            parent,
            via: Branch::line(Ohms::new(2.0), Farads::new(0.75)),
            subtree: Box::new(graft),
        })
        .unwrap();
        assert_eq!(eco.tree().node_count(), 7);
        assert!(eco.tree().node_by_name("g1").is_ok());
        assert_matches_rebuild(&eco);

        // Prune the original deep branch; ids are re-resolved by name.
        let prune = eco.tree().node_by_name("s2").unwrap();
        eco.apply(&TreeEdit::PruneSubtree { node: prune }).unwrap();
        assert!(eco.tree().node_by_name("s2").is_err());
        assert_eq!(eco.tree().node_count(), 6);
        assert_matches_rebuild(&eco);

        // Prune the grafted subtree again.
        let prune = eco.tree().node_by_name("g0").unwrap();
        eco.apply(&TreeEdit::PruneSubtree { node: prune }).unwrap();
        assert_eq!(eco.tree().node_count(), 4);
        assert_matches_rebuild(&eco);
    }

    #[test]
    fn invalid_edits_are_rejected_and_leave_state_unchanged() {
        let mut eco = EditableTree::new(branching_tree());
        let snapshot = eco.batch().unwrap();
        let o = eco.tree().node_by_name("o").unwrap();
        assert!(matches!(
            eco.apply(&TreeEdit::SetCap {
                node: NodeId(999),
                cap: Farads::new(1.0)
            }),
            Err(CoreError::NodeNotFound { .. })
        ));
        assert!(matches!(
            eco.apply(&TreeEdit::SetCap {
                node: o,
                cap: Farads::new(-1.0)
            }),
            Err(CoreError::InvalidValue { .. })
        ));
        assert!(matches!(
            eco.apply(&TreeEdit::SetBranch {
                node: NodeId::INPUT,
                branch: Branch::resistor(Ohms::new(1.0))
            }),
            Err(CoreError::CannotEditInput)
        ));
        assert!(matches!(
            eco.apply(&TreeEdit::PruneSubtree {
                node: NodeId::INPUT
            }),
            Err(CoreError::CannotEditInput)
        ));
        // Grafting a subtree whose name collides with the host.
        let mut gb = RcTreeBuilder::with_input_name("s1");
        gb.add_capacitance(gb.input(), Farads::new(1.0)).unwrap();
        assert!(matches!(
            eco.apply(&TreeEdit::GraftSubtree {
                parent: o,
                via: Branch::resistor(Ohms::new(1.0)),
                subtree: Box::new(gb.build().unwrap()),
            }),
            Err(CoreError::DuplicateName { .. })
        ));
        assert_eq!(eco.batch().unwrap(), snapshot);
    }

    #[test]
    fn capacitance_free_tree_is_editable_but_not_queryable() {
        let mut b = RcTreeBuilder::new();
        let n = b.add_resistor(b.input(), "n", Ohms::new(5.0)).unwrap();
        let mut eco = EditableTree::new(b.build().unwrap());
        assert!(matches!(
            eco.characteristic_times(n),
            Err(CoreError::NoCapacitance)
        ));
        assert!(matches!(eco.batch(), Err(CoreError::NoCapacitance)));
        eco.apply(&TreeEdit::SetCap {
            node: n,
            cap: Farads::new(2.0),
        })
        .unwrap();
        assert_matches_rebuild(&eco);
    }

    #[test]
    fn long_mixed_stream_stays_within_tolerance() {
        // A deterministic worst-of-everything sequence on one tree.
        let mut eco = EditableTree::new(branching_tree());
        for round in 0..30u32 {
            let n = eco.tree().node_count();
            let node = NodeId((round as usize * 7 + 1) % n);
            match round % 4 {
                0 => {
                    let cap = eco.tree().capacitance(node).unwrap();
                    eco.apply(&TreeEdit::SetCap {
                        node,
                        cap: cap * 1.5 + Farads::new(0.01),
                    })
                    .unwrap();
                }
                1 => {
                    if node != NodeId::INPUT {
                        let b = eco.tree().branch(node).unwrap().unwrap();
                        eco.apply(&TreeEdit::SetBranch {
                            node,
                            branch: Branch::line(
                                b.resistance() * 0.75 + Ohms::new(0.5),
                                b.capacitance() * 1.25 + Farads::new(0.02),
                            ),
                        })
                        .unwrap();
                    }
                }
                2 => {
                    let mut gb = RcTreeBuilder::with_input_name(format!("x{round}"));
                    let leaf = gb
                        .add_resistor(gb.input(), format!("y{round}"), Ohms::new(2.0))
                        .unwrap();
                    gb.add_capacitance(leaf, Farads::new(0.5)).unwrap();
                    eco.apply(&TreeEdit::GraftSubtree {
                        parent: node,
                        via: Branch::resistor(Ohms::new(1.0)),
                        subtree: Box::new(gb.build().unwrap()),
                    })
                    .unwrap();
                }
                _ => {
                    // Prune, but keep the tree non-trivial and capacitive.
                    let removed = eco.tree().subtree_capacitance(node).unwrap()
                        + eco
                            .tree()
                            .branch(node)
                            .unwrap()
                            .map_or(Farads::ZERO, |b| b.capacitance());
                    let total = eco.tree().total_capacitance();
                    let remaining = total - removed;
                    if eco.tree().node_count() > 4
                        && node != NodeId::INPUT
                        && remaining.value() > 1e-9 * total.value()
                    {
                        eco.apply(&TreeEdit::PruneSubtree { node }).unwrap();
                    }
                }
            }
            assert_matches_rebuild(&eco);
        }
    }
}
