//! Deck-scoped string interning: names to dense `u32` ids.
//!
//! A million-net deck names every net (and, through the `rctree-sta`
//! layer, every instance pin) with a short string.  Keying hot maps by
//! `String` costs an allocation per key, a heap indirection per probe, and
//! scatters the names across the heap; at `10^6` nets that dominates both
//! memory and cache traffic.  [`Interner`] stores every distinct name
//! exactly once, contiguously, and hands out a dense [`NameId`] (`u32`) —
//! hot maps key on the id, and the string itself materialises only at the
//! protocol/report boundary via [`Interner::resolve`].
//!
//! The table is a plain open hash over FNV-1a with per-bucket collision
//! chains that compare the actual bytes, so two distinct names that land
//! in one bucket always receive distinct ids (pinned by a forced-collision
//! regression test).  Ids are assigned in first-intern order and are never
//! invalidated; the structure is append-only.

/// A dense identifier for an interned name.
///
/// Ids are assigned contiguously from zero in first-intern order, so they
/// double as indices into id-ordered side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(u32);

impl NameId {
    /// The id as a dense index (`0..interner.len()`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only string arena mapping names to dense [`NameId`]s.
///
/// ```
/// use rctree_core::intern::Interner;
///
/// let mut names = Interner::new();
/// let clk = names.intern("clk");
/// assert_eq!(names.intern("clk"), clk);       // idempotent
/// assert_eq!(names.resolve(clk), "clk");      // O(1) reverse lookup
/// assert_eq!(names.get("clk"), Some(clk));    // O(1) forward lookup
/// assert_eq!(names.get("rst"), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    /// Every interned name, concatenated.
    buf: String,
    /// Byte range of each id's name within `buf`.
    spans: Vec<(u32, u32)>,
    /// Hash table: bucket -> chain of ids whose names hash there.
    /// `buckets.len()` is always a power of two.
    buckets: Vec<Vec<u32>>,
}

/// FNV-1a over the name bytes — stable, dependency-free, and good enough
/// for short identifier-like keys.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no name has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total bytes of interned name text (diagnostic; excludes table
    /// overhead).
    pub fn text_bytes(&self) -> usize {
        self.buf.len()
    }

    fn bucket_of(&self, name: &str) -> usize {
        debug_assert!(self.buckets.len().is_power_of_two());
        (fnv1a(name) as usize) & (self.buckets.len() - 1)
    }

    fn span_str(&self, id: u32) -> &str {
        let (start, end) = self.spans[id as usize];
        &self.buf[start as usize..end as usize]
    }

    /// The id of `name`, if it has been interned.
    pub fn get(&self, name: &str) -> Option<NameId> {
        if self.buckets.is_empty() {
            return None;
        }
        let bucket = self.bucket_of(name);
        self.buckets[bucket]
            .iter()
            .copied()
            .find(|&id| self.span_str(id) == name)
            .map(NameId)
    }

    /// Interns `name`, returning its id.  Idempotent: re-interning an
    /// existing name returns the original id without storing anything.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(id) = self.get(name) {
            return id;
        }
        // Grow at load factor 1 so chains stay short.
        if self.spans.len() >= self.buckets.len() {
            self.grow();
        }
        let start = self.buf.len() as u32;
        self.buf.push_str(name);
        let end = self.buf.len() as u32;
        let id = u32::try_from(self.spans.len()).expect("more than u32::MAX interned names");
        self.spans.push((start, end));
        let bucket = self.bucket_of(name);
        self.buckets[bucket].push(id);
        NameId(id)
    }

    /// The name of an interned id (`O(1)`).
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this interner (out of range).
    pub fn resolve(&self, id: NameId) -> &str {
        self.span_str(id.0)
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NameId, &str)> {
        (0..self.spans.len() as u32).map(|id| (NameId(id), self.span_str(id)))
    }

    fn grow(&mut self) {
        let new_len = (self.buckets.len() * 2).max(16);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); new_len];
        let mask = new_len - 1;
        for id in 0..self.spans.len() as u32 {
            let bucket = (fnv1a(self.span_str(id)) as usize) & mask;
            buckets[bucket].push(id);
        }
        self.buckets = buckets;
    }

    /// The bucket chain length holding `name` — test hook for the
    /// collision regression.
    #[cfg(test)]
    fn chain_len(&self, name: &str) -> usize {
        if self.buckets.is_empty() {
            return 0;
        }
        self.buckets[self.bucket_of(name)].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut names = Interner::new();
        let a = names.intern("a");
        let b = names.intern("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(names.intern("a"), a);
        assert_eq!(names.len(), 2);
        assert_eq!(names.resolve(a), "a");
        assert_eq!(names.resolve(b), "b");
        assert_eq!(names.get("a"), Some(a));
        assert_eq!(names.get("c"), None);
    }

    #[test]
    fn empty_interner_answers_lookups() {
        let names = Interner::new();
        assert!(names.is_empty());
        assert_eq!(names.get("anything"), None);
    }

    #[test]
    fn survives_growth_with_many_names() {
        let mut names = Interner::new();
        let ids: Vec<NameId> = (0..10_000)
            .map(|i| names.intern(&format!("net{i}")))
            .collect();
        assert_eq!(names.len(), 10_000);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(names.resolve(*id), format!("net{i}"));
            assert_eq!(names.get(&format!("net{i}")), Some(*id));
        }
        // Ids stay dense and in first-intern order.
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn colliding_names_get_distinct_ids() {
        // Force two distinct names into one bucket, then check the chain
        // compares bytes rather than hashes: both names keep independent
        // ids and resolve to their own text.
        let mut names = Interner::new();
        let mut pool: Vec<String> = (0..512).map(|i| format!("n{i}")).collect();
        for n in &pool {
            names.intern(n);
        }
        let collided = pool
            .drain(..)
            .find(|n| names.chain_len(n) >= 2)
            .expect("512 names over <=512 buckets must collide somewhere");
        let id = names.get(&collided).expect("interned");
        assert_eq!(names.resolve(id), collided);
        // A fresh name steered into the same bucket still gets its own id.
        let before = names.len();
        let fresh = names.intern(&format!("{collided}_x"));
        assert_eq!(names.len(), before + 1);
        assert_ne!(fresh, id);
        assert_eq!(names.resolve(fresh), format!("{collided}_x"));
    }

    #[test]
    fn iter_walks_in_id_order() {
        let mut names = Interner::new();
        for n in ["z", "y", "x"] {
            names.intern(n);
        }
        let walked: Vec<(usize, &str)> = names.iter().map(|(id, s)| (id.index(), s)).collect();
        assert_eq!(walked, vec![(0, "z"), (1, "y"), (2, "x")]);
    }
}
