//! Characteristic times of **every** node of an RC tree in `O(n)` total.
//!
//! The paper's central selling point is that `T_P`, `T_De` and `T_Re` are
//! cheap enough to compute for *every* output of a large MOS net.  The
//! per-output routines in [`crate::moments`] are linear in the tree size, so
//! analysing `m` outputs with them costs `O(n·m)` — quadratic on exactly the
//! multi-sink clock-tree and PLA workloads the paper targets (Figs. 10–13).
//!
//! [`BatchTimes`] removes the extra factor: **two traversals** over the
//! flattened arrays cached on [`RcTree`] produce the characteristic times of
//! all `n` nodes at once, after which any output's signature is an `O(1)`
//! lookup.
//!
//! # Algorithm
//!
//! One post-order pass (already cached on the tree) accumulates the subtree
//! capacitance `C_sub(v)` under every node.  A pre-order pass then carries
//! the Elmore delay and the `T_Re` numerator `N(e) = Σ_k R_ke²·C_k`
//! incrementally across each edge `p → c` with branch resistance `r` and
//! distributed capacitance `c_ℓ`:
//!
//! ```text
//! T_De(c) = T_De(p) + r·(C_sub(c) + c_ℓ/2)
//! N(c)    = N(p) + (R_cc + R_pp)·r·C_sub(c) + c_ℓ·(R_pp·r + r²/3)
//! ```
//!
//! The first recurrence is the classical Elmore prefix sum.  The second
//! follows from splitting the capacitors by position: for `k` outside the
//! subtree of `c`, `R_kc = R_kp` (the common path cannot reach below `p`);
//! for `k` inside it, `R_kc = R_cc` while `R_kp = R_pp`, contributing
//! `(R_cc² − R_pp²)·C_k = (R_cc + R_pp)·r·C_k`; and the slice integral over
//! the edge's own uniform line contributes
//! `c_ℓ·(R_pp² + R_pp·r + r²/3) − c_ℓ·R_pp²`.  `T_P = Σ R_kk·C_k` does not
//! depend on the output at all and is computed once and shared.
//!
//! Total cost: `O(n)` time, three `Vec<f64>` allocations, no per-output
//! work — an asymptotic win over calling
//! [`characteristic_times`](crate::moments::characteristic_times) in a loop
//! (kept, together with
//! [`characteristic_times_direct`](crate::moments::characteristic_times_direct),
//! as independent oracles; the `batch_equivalence` suite checks agreement to
//! 1e-9 relative on every workload generator).
//!
//! [`BatchTimes`] is the *one-shot facade* over this computation; when a
//! tree is edited repeatedly (ECO loops), [`crate::incremental`] keeps the
//! same arrays live and repairs them in `O(depth + |dirty subtree|)` per
//! edit instead of re-running the sweep.
//!
//! ```
//! use rctree_core::batch::BatchTimes;
//! use rctree_core::builder::RcTreeBuilder;
//! use rctree_core::units::{Farads, Ohms};
//!
//! # fn main() -> rctree_core::error::Result<()> {
//! let mut b = RcTreeBuilder::new();
//! let stem = b.add_resistor(b.input(), "stem", Ohms::new(100.0))?;
//! let x = b.add_resistor(stem, "x", Ohms::new(50.0))?;
//! let y = b.add_resistor(stem, "y", Ohms::new(200.0))?;
//! b.add_capacitance(x, Farads::from_pico(0.1))?;
//! b.add_capacitance(y, Farads::from_pico(0.2))?;
//! b.mark_output(x)?;
//! b.mark_output(y)?;
//! let tree = b.build()?;
//!
//! let batch = BatchTimes::of(&tree)?;           // O(n), covers every node
//! let tx = batch.times(x)?;                     // O(1) per lookup
//! let ty = batch.times(y)?;
//! assert_eq!(tx.t_p, ty.t_p);                   // T_P is output-independent
//! assert!(ty.t_d > tx.t_d);
//! # Ok(())
//! # }
//! ```

use crate::algebra::{DelayValue, Poly2, SymbolicTimes};
use crate::error::{CoreError, Result};
use crate::moments::CharacteristicTimes;
use crate::tree::{NodeId, RcTree};
use crate::units::{Farads, Ohms, Seconds};

/// The one-post-order + one-pre-order flat kernel, written once over the
/// [delay algebra](crate::algebra): validation, prefix state, the `T_P` /
/// `T_De` / `T_Re`-numerator sweep and the in-place `T_Re` normalisation,
/// filling the caller's buffers and returning `(T_P, C_T)`.
///
/// Instantiated at `f64` this **is** the historical scalar kernel — every
/// operation maps onto the identical native float operation in the identical
/// order (see the bit-identity contract in [`crate::algebra`]), which the
/// tests below pin with `assert_eq!` against the independent
/// [`crate::incremental::raw_times`] traversal.  Instantiated at
/// [`Poly2`] the same traversal yields every characteristic time as a
/// polynomial in the uniform `(r, c)` scale factors.
// Four parallel output buffers plus the four input arrays: the flat-array
// calling convention is the point of this kernel, so the argument count is
// inherent.
#[allow(clippy::too_many_arguments)]
fn sweep_algebra<V: DelayValue>(
    parent: &[u32],
    branch_r: &[f64],
    branch_c: &[f64],
    node_cap: &[f64],
    path_r: &mut Vec<V>,
    down_cap: &mut Vec<V>,
    t_d: &mut Vec<V>,
    t_r: &mut Vec<V>,
) -> Result<(V, V)> {
    let n = parent.len();
    if n == 0 || branch_r.len() != n || branch_c.len() != n || node_cap.len() != n {
        return Err(CoreError::InvalidValue {
            what: "pre-order array length",
            value: n as f64,
        });
    }
    if parent[0] != 0 {
        return Err(CoreError::InvalidValue {
            what: "pre-order root parent",
            value: parent[0] as f64,
        });
    }
    // The root has no feeding element; a nonzero root branch would make
    // the total-capacitance and T_P accumulations inconsistent.
    if branch_r[0] != 0.0 {
        return Err(CoreError::InvalidValue {
            what: "pre-order root branch resistance",
            value: branch_r[0],
        });
    }
    if branch_c[0] != 0.0 {
        return Err(CoreError::InvalidValue {
            what: "pre-order root branch capacitance",
            value: branch_c[0],
        });
    }
    for (i, &p) in parent.iter().enumerate().skip(1) {
        if p as usize >= i {
            return Err(CoreError::InvalidValue {
                what: "pre-order parent index",
                value: p as f64,
            });
        }
    }

    // Total capacitance exactly as `RcTree::total_capacitance`: the lumped
    // sum and the distributed sum are accumulated separately (in id order)
    // and added at the end.
    let mut lumped = V::zero();
    for &c in node_cap {
        lumped = lumped.add(&V::from_c(c));
    }
    let mut distributed = V::zero();
    for &c in &branch_c[1..] {
        distributed = distributed.add(&V::from_c(c));
    }
    let total_cap = lumped.add(&distributed);
    if total_cap.is_zero() {
        return Err(CoreError::NoCapacitance);
    }

    // Derived prefix state, in the same order as `TraversalCache::build`
    // (pre-order equals id order here by construction).
    path_r.clear();
    path_r.resize(n, V::zero());
    for i in 1..n {
        path_r[i] = path_r[parent[i] as usize].add(&V::from_r(branch_r[i]));
    }
    down_cap.clear();
    for &c in node_cap {
        down_cap.push(V::from_c(c));
    }
    for i in (1..n).rev() {
        let p = parent[i] as usize;
        down_cap[p] = down_cap[p].add(&down_cap[i].add(&V::from_c(branch_c[i])));
    }

    // The raw sweep, in the same order as `incremental::raw_times`.
    let mut t_p = V::zero();
    for i in 0..n {
        let p = parent[i] as usize;
        let term = V::from_c(node_cap[i])
            .mul(&path_r[i])
            .add(&V::from_c(branch_c[i]).mul(&path_r[p].add(&V::from_r(branch_r[i]).div(2.0))));
        t_p = t_p.add(&term);
    }
    t_d.clear();
    t_d.resize(n, V::zero());
    t_r.clear();
    t_r.resize(n, V::zero());
    for i in 1..n {
        let p = parent[i] as usize;
        let r = V::from_r(branch_r[i]);
        let c_line = V::from_c(branch_c[i]);
        let c_sub = down_cap[i].clone();
        let (r_pp, r_cc) = (path_r[p].clone(), path_r[i].clone());
        t_d[i] = t_d[p].add(&r.mul(&c_sub.add(&c_line.div(2.0))));
        t_r[i] = t_r[p]
            .add(&r_cc.add(&r_pp).mul(&r).mul(&c_sub))
            .add(&c_line.mul(&r_pp.mul(&r).add(&r.mul(&r).div(3.0))));
    }
    // Normalise the T_Re numerator in place, as `from_raw` does.
    for i in 0..n {
        if t_r[i].is_zero() {
            // No capacitor shares any resistance with this node.
        } else if path_r[i].is_zero() {
            return Err(CoreError::NoPathResistance { output: NodeId(i) });
        } else {
            match t_r[i].div_exact(&path_r[i]) {
                Some(v) => t_r[i] = v,
                // Unreachable for kernel-produced values: the divisor is a
                // path resistance, which every instance's divisor class
                // covers (f64: nonzero scalar; Poly2: the r-monomial).
                None => {
                    return Err(CoreError::InvalidValue {
                        what: "path-resistance divisor",
                        value: i as f64,
                    })
                }
            }
        }
    }

    Ok((t_p, total_cap))
}

/// Characteristic times of every node of one tree, computed in `O(n)`.
///
/// Obtain one with [`BatchTimes::of`]; query any node with
/// [`BatchTimes::times`] (an `O(1)` lookup).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchTimes {
    /// `T_P = Σ R_kk·C_k`, identical for every output.
    t_p: f64,
    /// Total network capacitance `C_T`.
    total_cap: f64,
    /// Per-node path resistance `R_ee`.
    r_ee: Vec<f64>,
    /// Per-node Elmore delay `T_De`.
    t_d: Vec<f64>,
    /// Per-node rise time `T_Re`.
    t_r: Vec<f64>,
}

impl BatchTimes {
    /// Computes the characteristic times of all nodes of `tree` in one
    /// post-order plus one pre-order traversal.
    ///
    /// This is the one-shot facade over the incremental core: the traversal
    /// itself lives in [`crate::incremental::raw_times`], shared with the
    /// mutable [`EditableTree`](crate::incremental::EditableTree) engine,
    /// which seeds its live state from the identical float sequence.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoCapacitance`] if the tree carries no capacitance
    ///   (`T_Re` is undefined everywhere);
    /// * [`CoreError::NoPathResistance`] if a node with a nonzero `T_Re`
    ///   numerator has no resistance to the input (unreachable for trees the
    ///   builder accepts, since `R_ke ≤ R_ee` forces the numerator to zero
    ///   with `R_ee`; kept as a defensive check).
    pub fn of(tree: &RcTree) -> Result<Self> {
        let raw = crate::incremental::raw_times(tree);
        if raw.total_cap == 0.0 {
            return Err(CoreError::NoCapacitance);
        }
        Self::from_raw(raw, tree.traversal().path_r.clone())
    }

    /// Normalises raw per-node sums (Elmore delays and `Σ R_ke²·C_k`
    /// numerators) into a finished signature table.  Shared by
    /// [`BatchTimes::of`] and the incremental engine's snapshot path.
    pub(crate) fn from_raw(raw: crate::incremental::RawTimes, r_ee: Vec<f64>) -> Result<Self> {
        let crate::incremental::RawTimes {
            t_p,
            total_cap,
            t_d,
            t_r_num,
        } = raw;
        // Normalize the numerator into T_Re.
        let mut t_r = t_r_num;
        for (i, num) in t_r.iter_mut().enumerate() {
            if *num == 0.0 {
                // No capacitor shares any resistance with this node.
            } else if r_ee[i] == 0.0 {
                return Err(CoreError::NoPathResistance { output: NodeId(i) });
            } else {
                *num /= r_ee[i];
            }
        }
        Ok(BatchTimes {
            t_p,
            total_cap,
            r_ee,
            t_d,
            t_r,
        })
    }

    /// Computes the characteristic times of an ad-hoc tree given as flat
    /// **pre-order** arrays, without constructing an [`RcTree`].
    ///
    /// Node `i` is the `i`-th node of a depth-first pre-order walk
    /// (`parent[i] < i` for every non-root node, `parent[0] == 0`);
    /// `branch_r`/`branch_c` describe the element feeding node `i` from its
    /// parent (both zero for the root), and `node_cap` is the lumped
    /// grounded capacitance at the node.
    ///
    /// This is the allocation-light kernel behind the static-timing layer's
    /// stage evaluation: a driver resistor and sink load capacitances can be
    /// spliced around an interconnect tree as plain array entries, skipping
    /// the name-validating builder entirely.  Because
    /// [`RcTreeBuilder`](crate::builder::RcTreeBuilder) assigns ids in
    /// insertion order and the traversal cache derives every prefix sum in
    /// pre-order, the result is **bit-identical** to
    /// [`BatchTimes::of`] on a builder-constructed tree whose insertion
    /// order was a pre-order walk of the same shape — the shared generic
    /// kernel (see [`crate::algebra`]) runs every accumulation in the same
    /// order with the same operations, and its `f64` instantiation *is* the
    /// scalar kernel.  The `rctree-sta` stage tests pin this equivalence
    /// against `analyze_stage`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidValue`] if the arrays disagree in length, are
    ///   empty, or `parent` is not a valid pre-order parent vector;
    /// * [`CoreError::NoCapacitance`] / [`CoreError::NoPathResistance`] as
    ///   for [`BatchTimes::of`] (node ids in the latter refer to pre-order
    ///   positions).
    pub fn of_preorder(
        parent: &[u32],
        branch_r: &[f64],
        branch_c: &[f64],
        node_cap: &[f64],
    ) -> Result<Self> {
        let (mut path_r, mut down_cap) = (Vec::new(), Vec::new());
        let (mut t_d, mut t_r) = (Vec::new(), Vec::new());
        let (t_p, total_cap) = sweep_algebra::<f64>(
            parent,
            branch_r,
            branch_c,
            node_cap,
            &mut path_r,
            &mut down_cap,
            &mut t_d,
            &mut t_r,
        )?;
        Ok(BatchTimes {
            t_p,
            total_cap,
            r_ee: path_r,
            t_d,
            t_r,
        })
    }

    /// Number of analysed nodes (every node of the source tree).
    pub fn node_count(&self) -> usize {
        self.r_ee.len()
    }

    /// `T_P`, the output-independent characteristic time.
    pub fn t_p(&self) -> Seconds {
        Seconds::new(self.t_p)
    }

    /// Total capacitance `C_T` of the network.
    pub fn total_capacitance(&self) -> Farads {
        Farads::new(self.total_cap)
    }

    /// Elmore delay `T_De` of one node (`O(1)`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` is out of range.
    pub fn elmore_delay(&self, node: NodeId) -> Result<Seconds> {
        self.check(node)?;
        Ok(Seconds::new(self.t_d[node.index()]))
    }

    /// The complete signature of one node (`O(1)` — assembles the same
    /// [`CharacteristicTimes`] the per-output algorithms produce).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` is out of range.
    pub fn times(&self, node: NodeId) -> Result<CharacteristicTimes> {
        self.check(node)?;
        let i = node.index();
        CharacteristicTimes::new(
            Seconds::new(self.t_p),
            Seconds::new(self.t_d[i]),
            Seconds::new(self.t_r[i]),
            Ohms::new(self.r_ee[i]),
            Farads::new(self.total_cap),
        )
    }

    /// The complete signature of the node at a raw index (`O(1)`).
    ///
    /// Equivalent to [`BatchTimes::times`]; useful with
    /// [`BatchTimes::of_preorder`], whose nodes are addressed by pre-order
    /// position rather than by a tree's [`NodeId`]s.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `index` is out of range.
    pub fn times_at(&self, index: usize) -> Result<CharacteristicTimes> {
        self.times(NodeId(index))
    }

    /// Signatures of every node, indexed by [`NodeId::index`].
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`CharacteristicTimes::new`]
    /// (unreachable for values this engine produces).
    pub fn all_times(&self) -> Result<Vec<CharacteristicTimes>> {
        (0..self.node_count())
            .map(|i| self.times(NodeId(i)))
            .collect()
    }

    fn check(&self, node: NodeId) -> Result<()> {
        if node.index() < self.r_ee.len() {
            Ok(())
        } else {
            Err(CoreError::NodeNotFound { node })
        }
    }
}

/// Reusable buffers for repeated [`BatchTimes::of_preorder`]-shaped sweeps.
///
/// Sweeping a million small nets through [`BatchTimes::of_preorder`] pays
/// four `Vec` allocations per net.  A `BatchScratch` owns those buffers
/// once per worker; [`BatchScratch::sweep`] runs the *identical* float
/// sequence (same validation, same accumulation order — pinned
/// bit-identical by a unit test) and returns a borrowed [`BatchView`] for
/// `O(1)` per-node lookups, so the steady-state sweep allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    path_r: Vec<f64>,
    down_cap: Vec<f64>,
    t_d: Vec<f64>,
    t_r: Vec<f64>,
}

/// The result of one [`BatchScratch::sweep`], borrowing the scratch
/// buffers.  Equivalent to the [`BatchTimes`] of the same arrays.
#[derive(Debug)]
pub struct BatchView<'a> {
    t_p: f64,
    total_cap: f64,
    r_ee: &'a [f64],
    t_d: &'a [f64],
    t_r: &'a [f64],
}

impl BatchScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        BatchScratch::default()
    }

    /// Runs the [`BatchTimes::of_preorder`] sweep over pre-order arrays,
    /// reusing this scratch's buffers instead of allocating.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`BatchTimes::of_preorder`] on the same
    /// inputs, in the same detection order.
    pub fn sweep<'a>(
        &'a mut self,
        parent: &[u32],
        branch_r: &[f64],
        branch_c: &[f64],
        node_cap: &[f64],
    ) -> Result<BatchView<'a>> {
        let BatchScratch {
            path_r,
            down_cap,
            t_d,
            t_r,
        } = self;
        let (t_p, total_cap) = sweep_algebra::<f64>(
            parent, branch_r, branch_c, node_cap, path_r, down_cap, t_d, t_r,
        )?;
        Ok(BatchView {
            t_p,
            total_cap,
            r_ee: path_r,
            t_d,
            t_r,
        })
    }
}

impl BatchView<'_> {
    /// The complete signature of the node at a pre-order index (`O(1)`) —
    /// the same [`CharacteristicTimes`] that [`BatchTimes::times_at`]
    /// yields for these arrays.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `index` is out of range.
    pub fn times_at(&self, index: usize) -> Result<CharacteristicTimes> {
        if index >= self.r_ee.len() {
            return Err(CoreError::NodeNotFound {
                node: NodeId(index),
            });
        }
        CharacteristicTimes::new(
            Seconds::new(self.t_p),
            Seconds::new(self.t_d[index]),
            Seconds::new(self.t_r[index]),
            Ohms::new(self.r_ee[index]),
            Farads::new(self.total_cap),
        )
    }

    /// Number of analysed nodes.
    pub fn node_count(&self) -> usize {
        self.r_ee.len()
    }
}

/// Reusable buffers for **symbolic** pre-order sweeps: the same generic
/// kernel as [`BatchScratch::sweep`], instantiated at [`Poly2`], so one
/// traversal yields every node's characteristic times as polynomials in the
/// uniform resistance/capacitance scale factors `(r, c)`.
///
/// The input arrays carry the *nominal* element values; the algebra's
/// injectors attach the symbolic scale to each element (`x` ohms becomes
/// `x·r`, `y` farads becomes `y·c`).  Because the kernel is shared and
/// `Poly2` coefficient arithmetic applies the identical scalar operations
/// cellwise, evaluating any result at `(1, 1)` reproduces the scalar
/// sweep's nominal value **bit-for-bit** (pinned by a test below), and
/// evaluating at any `(r, c)` agrees with a scalar sweep of pre-scaled
/// arrays to rounding.
#[derive(Debug, Clone, Default)]
pub struct SymbolicScratch {
    path_r: Vec<Poly2>,
    down_cap: Vec<Poly2>,
    t_d: Vec<Poly2>,
    t_r: Vec<Poly2>,
}

/// The result of one [`SymbolicScratch::sweep`], borrowing the scratch
/// buffers: per-node characteristic-time polynomials in `(r, c)`.
#[derive(Debug)]
pub struct SymbolicView<'a> {
    t_p: Poly2,
    total_cap: Poly2,
    r_ee: &'a [Poly2],
    t_d: &'a [Poly2],
    t_r: &'a [Poly2],
}

impl SymbolicScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        SymbolicScratch::default()
    }

    /// Runs the [`BatchTimes::of_preorder`] sweep symbolically over nominal
    /// pre-order arrays, reusing this scratch's buffers.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`BatchTimes::of_preorder`] on the same
    /// inputs, in the same detection order.
    pub fn sweep<'a>(
        &'a mut self,
        parent: &[u32],
        branch_r: &[f64],
        branch_c: &[f64],
        node_cap: &[f64],
    ) -> Result<SymbolicView<'a>> {
        let SymbolicScratch {
            path_r,
            down_cap,
            t_d,
            t_r,
        } = self;
        let (t_p, total_cap) = sweep_algebra::<Poly2>(
            parent, branch_r, branch_c, node_cap, path_r, down_cap, t_d, t_r,
        )?;
        Ok(SymbolicView {
            t_p,
            total_cap,
            r_ee: path_r,
            t_d,
            t_r,
        })
    }
}

impl SymbolicView<'_> {
    /// The complete symbolic signature of the node at a pre-order index
    /// (`O(1)` — copies five small coefficient grids).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `index` is out of range.
    pub fn times_at(&self, index: usize) -> Result<SymbolicTimes> {
        if index >= self.r_ee.len() {
            return Err(CoreError::NodeNotFound {
                node: NodeId(index),
            });
        }
        Ok(SymbolicTimes {
            t_p: self.t_p,
            t_d: self.t_d[index],
            t_r: self.t_r[index],
            r_ee: self.r_ee[index],
            total_cap: self.total_cap,
        })
    }

    /// Number of analysed nodes.
    pub fn node_count(&self) -> usize {
        self.r_ee.len()
    }
}

/// One corner lane's element arrays for [`LaneScratch::sweep_lanes`]:
/// `(branch_r, branch_c, node_cap)` over the shared parent vector.
pub type LaneArrays<'a> = (&'a [f64], &'a [f64], &'a [f64]);

/// Reusable buffers for **multi-corner** pre-order sweeps: all `K` corner
/// lanes of one net in a single post-order + pre-order traversal.
///
/// The lanes share one topology (`parent` is validated once, the node loop
/// runs once) while every float operation stays **per lane**: lane `k`'s
/// accumulations run in exactly the order [`BatchScratch::sweep`] would run
/// them on lane `k`'s arrays alone, and lanes never mix — so each lane's
/// results are bit-identical to a serial single-corner sweep of that lane,
/// and lane 0 (the nominal corner) reproduces the single-corner path
/// exactly.  Buffers are lane-major (`buf[k*n + i]`).
#[derive(Debug, Clone, Default)]
pub struct LaneScratch {
    path_r: Vec<f64>,
    down_cap: Vec<f64>,
    t_d: Vec<f64>,
    t_r: Vec<f64>,
    t_p: Vec<f64>,
    total_cap: Vec<f64>,
}

/// The result of one [`LaneScratch::sweep_lanes`], borrowing the scratch
/// buffers: `K` lanes × `n` nodes of characteristic times.
#[derive(Debug)]
pub struct LanesView<'a> {
    nodes: usize,
    t_p: &'a [f64],
    total_cap: &'a [f64],
    r_ee: &'a [f64],
    t_d: &'a [f64],
    t_r: &'a [f64],
}

impl LaneScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        LaneScratch::default()
    }

    /// Sweeps all lanes over the shared `parent` vector in one traversal.
    ///
    /// Structural validation (lengths, root, parent pre-order) is shared;
    /// value validation (zero root branches, total capacitance, path
    /// resistance) runs per lane **in lane order**, so when several lanes
    /// would fail the lowest lane's error surfaces — matching a serial
    /// lane-by-lane evaluation.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`BatchScratch::sweep`] raises on the first
    /// failing lane's arrays (structural errors are raised once, since the
    /// topology is shared).
    pub fn sweep_lanes<'a>(
        &'a mut self,
        parent: &[u32],
        lanes: &[LaneArrays],
    ) -> Result<LanesView<'a>> {
        let n = parent.len();
        let k_count = lanes.len();
        if n == 0
            || k_count == 0
            || lanes
                .iter()
                .any(|(r, c, cap)| r.len() != n || c.len() != n || cap.len() != n)
        {
            return Err(CoreError::InvalidValue {
                what: "pre-order array length",
                value: n as f64,
            });
        }
        if parent[0] != 0 {
            return Err(CoreError::InvalidValue {
                what: "pre-order root parent",
                value: parent[0] as f64,
            });
        }
        for &(branch_r, branch_c, _) in lanes {
            if branch_r[0] != 0.0 {
                return Err(CoreError::InvalidValue {
                    what: "pre-order root branch resistance",
                    value: branch_r[0],
                });
            }
            if branch_c[0] != 0.0 {
                return Err(CoreError::InvalidValue {
                    what: "pre-order root branch capacitance",
                    value: branch_c[0],
                });
            }
        }
        for (i, &p) in parent.iter().enumerate().skip(1) {
            if p as usize >= i {
                return Err(CoreError::InvalidValue {
                    what: "pre-order parent index",
                    value: p as f64,
                });
            }
        }

        // Per-lane total capacitance, each lane summed in index order like
        // the single-lane path.
        let total_cap = &mut self.total_cap;
        total_cap.clear();
        for &(_, branch_c, node_cap) in lanes {
            let lumped: f64 = node_cap.iter().sum();
            let distributed: f64 = branch_c[1..].iter().sum();
            let total = lumped + distributed;
            if total == 0.0 {
                return Err(CoreError::NoCapacitance);
            }
            total_cap.push(total);
        }

        // One downward pass carries every lane's path resistance.
        let path_r = &mut self.path_r;
        path_r.clear();
        path_r.resize(k_count * n, 0.0);
        for i in 1..n {
            let p = parent[i] as usize;
            for (k, &(branch_r, _, _)) in lanes.iter().enumerate() {
                let base = k * n;
                path_r[base + i] = path_r[base + p] + branch_r[i];
            }
        }
        // One upward (post-order) pass accumulates subtree capacitance.
        let down_cap = &mut self.down_cap;
        down_cap.clear();
        for &(_, _, node_cap) in lanes {
            down_cap.extend_from_slice(node_cap);
        }
        for i in (1..n).rev() {
            let p = parent[i] as usize;
            for (k, &(_, branch_c, _)) in lanes.iter().enumerate() {
                let base = k * n;
                down_cap[base + p] += down_cap[base + i] + branch_c[i];
            }
        }

        // T_P per lane, accumulated in node order within each lane.
        let t_p = &mut self.t_p;
        t_p.clear();
        t_p.resize(k_count, 0.0);
        for i in 0..n {
            let p = parent[i] as usize;
            for (k, &(branch_r, branch_c, node_cap)) in lanes.iter().enumerate() {
                let base = k * n;
                t_p[k] += node_cap[i] * path_r[base + i]
                    + branch_c[i] * (path_r[base + p] + branch_r[i] / 2.0);
            }
        }

        // One pre-order pass carries every lane's Elmore delay and T_Re
        // numerator.
        let t_d = &mut self.t_d;
        t_d.clear();
        t_d.resize(k_count * n, 0.0);
        let t_r = &mut self.t_r;
        t_r.clear();
        t_r.resize(k_count * n, 0.0);
        for i in 1..n {
            let p = parent[i] as usize;
            for (k, &(branch_r, branch_c, _)) in lanes.iter().enumerate() {
                let base = k * n;
                let r = branch_r[i];
                let c_line = branch_c[i];
                let c_sub = down_cap[base + i];
                let (r_pp, r_cc) = (path_r[base + p], path_r[base + i]);
                t_d[base + i] = t_d[base + p] + r * (c_sub + c_line / 2.0);
                t_r[base + i] =
                    t_r[base + p] + (r_cc + r_pp) * r * c_sub + c_line * (r_pp * r + r * r / 3.0);
            }
        }
        // Normalise each lane's T_Re numerator in lane order.
        for k in 0..k_count {
            let base = k * n;
            for i in 0..n {
                let num = &mut t_r[base + i];
                if *num == 0.0 {
                    // No capacitor shares any resistance with this node.
                } else if path_r[base + i] == 0.0 {
                    return Err(CoreError::NoPathResistance { output: NodeId(i) });
                } else {
                    *num /= path_r[base + i];
                }
            }
        }

        Ok(LanesView {
            nodes: n,
            t_p,
            total_cap,
            r_ee: path_r,
            t_d,
            t_r,
        })
    }
}

impl LanesView<'_> {
    /// The complete signature of one node at one corner lane (`O(1)`) —
    /// bit-identical to [`BatchScratch::sweep`] run on that lane alone.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `index` is out of range and
    /// [`CoreError::InvalidValue`] if `lane` is.
    pub fn times_at(&self, lane: usize, index: usize) -> Result<CharacteristicTimes> {
        if lane >= self.lane_count() {
            return Err(CoreError::InvalidValue {
                what: "corner lane index",
                value: lane as f64,
            });
        }
        if index >= self.nodes {
            return Err(CoreError::NodeNotFound {
                node: NodeId(index),
            });
        }
        let base = lane * self.nodes;
        CharacteristicTimes::new(
            Seconds::new(self.t_p[lane]),
            Seconds::new(self.t_d[base + index]),
            Seconds::new(self.t_r[base + index]),
            Ohms::new(self.r_ee[base + index]),
            Farads::new(self.total_cap[lane]),
        )
    }

    /// Number of corner lanes.
    pub fn lane_count(&self) -> usize {
        self.t_p.len()
    }

    /// Number of analysed nodes per lane.
    pub fn node_count(&self) -> usize {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RcTreeBuilder;
    use crate::moments::{characteristic_times, characteristic_times_direct};

    fn branching_tree_with_lines() -> RcTree {
        let mut b = RcTreeBuilder::new();
        let a = b
            .add_line(b.input(), "a", Ohms::new(15.0), Farads::new(1.5))
            .unwrap();
        b.add_capacitance(a, Farads::new(2.0)).unwrap();
        let s1 = b.add_resistor(a, "s1", Ohms::new(8.0)).unwrap();
        b.add_capacitance(s1, Farads::new(7.0)).unwrap();
        let s2 = b
            .add_line(s1, "s2", Ohms::new(2.0), Farads::new(0.5))
            .unwrap();
        b.add_capacitance(s2, Farads::new(0.25)).unwrap();
        let o = b
            .add_line(a, "o", Ohms::new(3.0), Farads::new(4.0))
            .unwrap();
        b.add_capacitance(o, Farads::new(9.0)).unwrap();
        b.mark_output(o).unwrap();
        b.mark_output(s2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn matches_per_output_oracles_on_every_node() {
        let tree = branching_tree_with_lines();
        let batch = BatchTimes::of(&tree).unwrap();
        for node in tree.node_ids() {
            let one = characteristic_times(&tree, node).unwrap();
            let direct = characteristic_times_direct(&tree, node).unwrap();
            let got = batch.times(node).unwrap();
            let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-30);
            for (g, want) in [
                (got.t_p, one.t_p),
                (got.t_d, one.t_d),
                (got.t_r, one.t_r),
                (got.t_p, direct.t_p),
                (got.t_d, direct.t_d),
                (got.t_r, direct.t_r),
            ] {
                assert!(rel(g.value(), want.value()) < 1e-12, "node {node}");
            }
            assert_eq!(got.r_ee, one.r_ee);
            assert_eq!(got.total_cap, one.total_cap);
        }
    }

    #[test]
    fn input_node_has_zero_delay_and_rise_time() {
        let tree = branching_tree_with_lines();
        let batch = BatchTimes::of(&tree).unwrap();
        let t = batch.times(tree.input()).unwrap();
        assert_eq!(t.t_d, Seconds::ZERO);
        assert_eq!(t.t_r, Seconds::ZERO);
        assert!(t.t_p.value() > 0.0);
    }

    #[test]
    fn ordering_holds_at_every_node() {
        let tree = branching_tree_with_lines();
        let batch = BatchTimes::of(&tree).unwrap();
        for t in batch.all_times().unwrap() {
            assert!(t.satisfies_ordering());
        }
    }

    #[test]
    fn no_capacitance_is_an_error() {
        let mut b = RcTreeBuilder::new();
        let n = b.add_resistor(b.input(), "n", Ohms::new(1.0)).unwrap();
        b.mark_output(n).unwrap();
        let tree = b.build().unwrap();
        assert!(matches!(
            BatchTimes::of(&tree),
            Err(CoreError::NoCapacitance)
        ));
    }

    #[test]
    fn zero_resistance_branch_keeps_t_r_zero() {
        // A 0 Ω output next to a resistive side branch: Σ R_ke² C_k is zero,
        // so T_Re must be 0 rather than an error (mirrors the per-output
        // behaviour).
        let mut b = RcTreeBuilder::new();
        let out = b
            .add_line(b.input(), "out", Ohms::ZERO, Farads::ZERO)
            .unwrap();
        let far = b.add_resistor(b.input(), "far", Ohms::new(5.0)).unwrap();
        b.add_capacitance(far, Farads::new(1.0)).unwrap();
        b.add_capacitance(out, Farads::new(1.0)).unwrap();
        b.mark_output(out).unwrap();
        let tree = b.build().unwrap();
        let batch = BatchTimes::of(&tree).unwrap();
        let t = batch.times(out).unwrap();
        assert_eq!(t.t_r, Seconds::ZERO);
        assert_eq!(t.t_d, Seconds::ZERO);
    }

    #[test]
    fn of_preorder_is_bit_identical_to_the_builder_path() {
        // The builder inserts nodes in pre-order here, so ids equal
        // pre-order positions and the flat kernel must reproduce the exact
        // float sequence of the tree-based sweep.
        let tree = branching_tree_with_lines();
        let cache = tree.traversal();
        let n = tree.node_count();
        assert_eq!(
            cache.preorder,
            (0..n as u32).collect::<Vec<_>>(),
            "test tree must be inserted in pre-order"
        );
        let flat = BatchTimes::of_preorder(
            &cache.parent,
            &cache.branch_r,
            &cache.branch_c,
            &cache.node_cap,
        )
        .unwrap();
        assert_eq!(flat, BatchTimes::of(&tree).unwrap());
    }

    #[test]
    fn of_preorder_rejects_malformed_inputs() {
        let ok = |p: &[u32]| BatchTimes::of_preorder(p, &[0.0; 3], &[0.0; 3], &[1.0; 3]);
        assert!(matches!(
            BatchTimes::of_preorder(&[], &[], &[], &[]),
            Err(CoreError::InvalidValue { .. })
        ));
        assert!(matches!(
            BatchTimes::of_preorder(&[0, 0], &[0.0], &[0.0, 0.0], &[1.0, 1.0]),
            Err(CoreError::InvalidValue { .. })
        ));
        // Root must be its own parent; parents must precede children.
        assert!(matches!(
            ok(&[1, 0, 1]),
            Err(CoreError::InvalidValue { .. })
        ));
        // The root carries no feeding element: a nonzero root branch would
        // silently skew the C_T / T_P accumulations.
        assert!(matches!(
            BatchTimes::of_preorder(&[0, 0], &[3.0, 5.0], &[0.0, 0.0], &[1.0, 1.0]),
            Err(CoreError::InvalidValue { .. })
        ));
        assert!(matches!(
            BatchTimes::of_preorder(&[0, 0], &[0.0, 5.0], &[2.0, 0.0], &[1.0, 1.0]),
            Err(CoreError::InvalidValue { .. })
        ));
        assert!(matches!(
            ok(&[0, 2, 1]),
            Err(CoreError::InvalidValue { .. })
        ));
        // A capacitance-free network is rejected like `of`.
        assert!(matches!(
            BatchTimes::of_preorder(&[0, 0], &[0.0, 5.0], &[0.0, 0.0], &[0.0, 0.0]),
            Err(CoreError::NoCapacitance)
        ));
    }

    #[test]
    fn scratch_sweep_is_bit_identical_to_of_preorder() {
        let tree = branching_tree_with_lines();
        let cache = tree.traversal();
        let batch = BatchTimes::of_preorder(
            &cache.parent,
            &cache.branch_r,
            &cache.branch_c,
            &cache.node_cap,
        )
        .unwrap();
        let mut scratch = BatchScratch::new();
        // Pollute the scratch with an unrelated sweep first: reuse must not
        // leak state between nets.
        scratch
            .sweep(&[0, 0], &[0.0, 7.0], &[0.0, 0.0], &[3.0, 4.0])
            .unwrap();
        let view = scratch
            .sweep(
                &cache.parent,
                &cache.branch_r,
                &cache.branch_c,
                &cache.node_cap,
            )
            .unwrap();
        assert_eq!(view.node_count(), batch.node_count());
        for i in 0..batch.node_count() {
            assert_eq!(view.times_at(i).unwrap(), batch.times_at(i).unwrap());
        }
        assert!(matches!(
            view.times_at(999),
            Err(CoreError::NodeNotFound { .. })
        ));
    }

    #[test]
    fn scratch_sweep_rejects_malformed_inputs_like_of_preorder() {
        type Case<'a> = (&'a [u32], &'a [f64], &'a [f64], &'a [f64]);
        let mut scratch = BatchScratch::new();
        let cases: [Case; 6] = [
            (&[], &[], &[], &[]),
            (&[0, 0], &[0.0], &[0.0, 0.0], &[1.0, 1.0]),
            (&[1, 0, 1], &[0.0; 3], &[0.0; 3], &[1.0; 3]),
            (&[0, 0], &[3.0, 5.0], &[0.0, 0.0], &[1.0, 1.0]),
            (&[0, 0], &[0.0, 5.0], &[2.0, 0.0], &[1.0, 1.0]),
            (&[0, 0], &[0.0, 5.0], &[0.0, 0.0], &[0.0, 0.0]),
        ];
        for (parent, r, c, cap) in cases {
            let want = BatchTimes::of_preorder(parent, r, c, cap).unwrap_err();
            let got = scratch.sweep(parent, r, c, cap).map(|_| ()).unwrap_err();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn lane_sweep_single_lane_matches_scratch_sweep_bit_for_bit() {
        let tree = branching_tree_with_lines();
        let cache = tree.traversal();
        let mut scratch = BatchScratch::new();
        let view = scratch
            .sweep(
                &cache.parent,
                &cache.branch_r,
                &cache.branch_c,
                &cache.node_cap,
            )
            .unwrap();
        let mut lanes = LaneScratch::new();
        let lane_view = lanes
            .sweep_lanes(
                &cache.parent,
                &[(&cache.branch_r, &cache.branch_c, &cache.node_cap)],
            )
            .unwrap();
        assert_eq!(lane_view.lane_count(), 1);
        assert_eq!(lane_view.node_count(), view.node_count());
        for i in 0..view.node_count() {
            assert_eq!(lane_view.times_at(0, i).unwrap(), view.times_at(i).unwrap());
        }
    }

    #[test]
    fn lane_sweep_matches_serial_per_lane_sweeps_bit_for_bit() {
        let tree = branching_tree_with_lines();
        let cache = tree.traversal();
        let n = cache.parent.len();
        // Three corners scaling each element individually (one rounding per
        // element — the corner-model contract).
        let scales = [(1.0, 1.0), (1.3, 1.2), (0.8, 0.9)];
        let lanes_data: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = scales
            .iter()
            .map(|&(rs, cs)| {
                (
                    cache.branch_r.iter().map(|&r| r * rs).collect(),
                    cache.branch_c.iter().map(|&c| c * cs).collect(),
                    cache.node_cap.iter().map(|&c| c * cs).collect(),
                )
            })
            .collect();
        let lane_refs: Vec<LaneArrays> = lanes_data
            .iter()
            .map(|(r, c, cap)| (r.as_slice(), c.as_slice(), cap.as_slice()))
            .collect();
        let mut lanes = LaneScratch::new();
        // Pollute the scratch first: reuse must not leak state.
        lanes
            .sweep_lanes(&[0, 0], &[(&[0.0, 7.0], &[0.0, 0.0], &[3.0, 4.0])])
            .unwrap();
        let view = lanes.sweep_lanes(&cache.parent, &lane_refs).unwrap();
        let mut serial = BatchScratch::new();
        for (k, (r, c, cap)) in lanes_data.iter().enumerate() {
            let want = serial.sweep(&cache.parent, r, c, cap).unwrap();
            for i in 0..n {
                assert_eq!(
                    view.times_at(k, i).unwrap(),
                    want.times_at(i).unwrap(),
                    "lane {k} node {i}"
                );
            }
        }
        assert!(matches!(
            view.times_at(3, 0),
            Err(CoreError::InvalidValue { .. })
        ));
        assert!(matches!(
            view.times_at(0, 999),
            Err(CoreError::NodeNotFound { .. })
        ));
    }

    #[test]
    fn lane_sweep_rejects_malformed_inputs_like_scratch_sweep() {
        let mut lanes = LaneScratch::new();
        // No lanes at all is a length error.
        assert!(matches!(
            lanes.sweep_lanes(&[0, 0], &[]),
            Err(CoreError::InvalidValue { .. })
        ));
        type Case<'a> = (&'a [u32], &'a [f64], &'a [f64], &'a [f64]);
        let mut scratch = BatchScratch::new();
        let cases: [Case; 6] = [
            (&[], &[], &[], &[]),
            (&[0, 0], &[0.0], &[0.0, 0.0], &[1.0, 1.0]),
            (&[1, 0, 1], &[0.0; 3], &[0.0; 3], &[1.0; 3]),
            (&[0, 0], &[3.0, 5.0], &[0.0, 0.0], &[1.0, 1.0]),
            (&[0, 0], &[0.0, 5.0], &[2.0, 0.0], &[1.0, 1.0]),
            (&[0, 0], &[0.0, 5.0], &[0.0, 0.0], &[0.0, 0.0]),
        ];
        for (parent, r, c, cap) in cases {
            let want = scratch.sweep(parent, r, c, cap).map(|_| ()).unwrap_err();
            let got = lanes
                .sweep_lanes(parent, &[(r, c, cap)])
                .map(|_| ())
                .unwrap_err();
            assert_eq!(got, want);
        }
        // A failing second lane surfaces its own error after lane 0 passes.
        assert!(matches!(
            lanes.sweep_lanes(
                &[0, 0],
                &[
                    (&[0.0, 5.0], &[0.0, 0.0], &[1.0, 1.0]),
                    (&[0.0, 5.0], &[0.0, 0.0], &[0.0, 0.0]),
                ]
            ),
            Err(CoreError::NoCapacitance)
        ));
    }

    #[test]
    fn symbolic_sweep_at_nominal_is_bit_identical_to_scalar_sweep() {
        // Evaluating the Poly2 lane at (1, 1) must reproduce the scalar
        // kernel's exact bits: the generic kernel applies the identical
        // scalar operations cellwise and Horner evaluation at 1.0 returns
        // the lone coefficient unchanged.
        let tree = branching_tree_with_lines();
        let cache = tree.traversal();
        let mut scratch = BatchScratch::new();
        let want = scratch
            .sweep(
                &cache.parent,
                &cache.branch_r,
                &cache.branch_c,
                &cache.node_cap,
            )
            .unwrap();
        let mut sym = SymbolicScratch::new();
        let view = sym
            .sweep(
                &cache.parent,
                &cache.branch_r,
                &cache.branch_c,
                &cache.node_cap,
            )
            .unwrap();
        assert_eq!(view.node_count(), want.node_count());
        for i in 0..want.node_count() {
            let s = view.times_at(i).unwrap();
            let w = want.times_at(i).unwrap();
            assert_eq!(s.t_p.eval(1.0, 1.0), w.t_p.value(), "node {i}");
            assert_eq!(s.t_d.eval(1.0, 1.0), w.t_d.value(), "node {i}");
            assert_eq!(s.t_r.eval(1.0, 1.0), w.t_r.value(), "node {i}");
            assert_eq!(s.r_ee.eval(1.0, 1.0), w.r_ee.value(), "node {i}");
            assert_eq!(s.total_cap.eval(1.0, 1.0), w.total_cap.value(), "node {i}");
        }
        assert!(matches!(
            view.times_at(999),
            Err(CoreError::NodeNotFound { .. })
        ));
    }

    #[test]
    fn symbolic_sweep_evaluates_to_the_scaled_scalar_sweep() {
        // Poly2 at (r, c) must agree with the scalar kernel run on arrays
        // pre-scaled by (r, c) — the materialized-corner contract, to
        // rounding.
        let tree = branching_tree_with_lines();
        let cache = tree.traversal();
        let mut sym = SymbolicScratch::new();
        // Pollute the scratch first: reuse must not leak state.
        sym.sweep(&[0, 0], &[0.0, 7.0], &[0.0, 0.0], &[3.0, 4.0])
            .unwrap();
        let view = sym
            .sweep(
                &cache.parent,
                &cache.branch_r,
                &cache.branch_c,
                &cache.node_cap,
            )
            .unwrap();
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-30);
        for &(rs, cs) in &[(1.3, 1.2), (0.8, 0.9), (2.5, 0.4)] {
            let branch_r: Vec<f64> = cache.branch_r.iter().map(|&r| r * rs).collect();
            let branch_c: Vec<f64> = cache.branch_c.iter().map(|&c| c * cs).collect();
            let node_cap: Vec<f64> = cache.node_cap.iter().map(|&c| c * cs).collect();
            let mut scratch = BatchScratch::new();
            let want = scratch
                .sweep(&cache.parent, &branch_r, &branch_c, &node_cap)
                .unwrap();
            for i in 0..want.node_count() {
                let s = view.times_at(i).unwrap();
                let w = want.times_at(i).unwrap();
                assert!(rel(s.t_p.eval(rs, cs), w.t_p.value()) < 1e-12);
                assert!(rel(s.t_d.eval(rs, cs), w.t_d.value()) < 1e-12);
                assert!(rel(s.t_r.eval(rs, cs), w.t_r.value()) < 1e-12);
                assert!(rel(s.r_ee.eval(rs, cs), w.r_ee.value()) < 1e-12);
                assert!(rel(s.total_cap.eval(rs, cs), w.total_cap.value()) < 1e-12);
            }
        }
    }

    #[test]
    fn symbolic_sweep_rejects_malformed_inputs_like_of_preorder() {
        type Case<'a> = (&'a [u32], &'a [f64], &'a [f64], &'a [f64]);
        let mut sym = SymbolicScratch::new();
        let cases: [Case; 6] = [
            (&[], &[], &[], &[]),
            (&[0, 0], &[0.0], &[0.0, 0.0], &[1.0, 1.0]),
            (&[1, 0, 1], &[0.0; 3], &[0.0; 3], &[1.0; 3]),
            (&[0, 0], &[3.0, 5.0], &[0.0, 0.0], &[1.0, 1.0]),
            (&[0, 0], &[0.0, 5.0], &[2.0, 0.0], &[1.0, 1.0]),
            (&[0, 0], &[0.0, 5.0], &[0.0, 0.0], &[0.0, 0.0]),
        ];
        for (parent, r, c, cap) in cases {
            let want = BatchTimes::of_preorder(parent, r, c, cap).unwrap_err();
            let got = sym.sweep(parent, r, c, cap).map(|_| ()).unwrap_err();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn unknown_node_is_rejected() {
        let tree = branching_tree_with_lines();
        let batch = BatchTimes::of(&tree).unwrap();
        assert!(matches!(
            batch.times(NodeId(999)),
            Err(CoreError::NodeNotFound { .. })
        ));
        assert!(matches!(
            batch.elmore_delay(NodeId(999)),
            Err(CoreError::NodeNotFound { .. })
        ));
    }

    #[test]
    fn accessors_report_whole_network_quantities() {
        let tree = branching_tree_with_lines();
        let batch = BatchTimes::of(&tree).unwrap();
        assert_eq!(batch.node_count(), tree.node_count());
        assert_eq!(batch.total_capacitance(), tree.total_capacitance());
        let any = batch.times(tree.input()).unwrap();
        assert_eq!(batch.t_p(), any.t_p);
    }
}
