//! Elmore delay for every node of an RC tree in a single traversal.
//!
//! The first-order moment `T_De = Σ_k R_ke·C_k` "has been called *delay* by
//! Elmore" (paper, Section III, citing Elmore 1948).  Re-grouping the sum by
//! the branches on the path from the input to `e` gives the form used by
//! every modern timing tool:
//!
//! ```text
//! T_De = Σ_{branches b on path(input → e)}  R_b · ( C_subtree(b) + C_b/2 )
//! ```
//!
//! where `C_subtree(b)` is all capacitance strictly downstream of branch `b`
//! and `C_b` is the branch's own distributed capacitance (which, being spread
//! uniformly along the branch, sees on average half of the branch's own
//! resistance).  Accumulating this prefix sum over a depth-first walk yields
//! the Elmore delay of **every** node in `O(n)` total time.

use crate::error::{CoreError, Result};
use crate::tree::{NodeId, RcTree};
use crate::units::Seconds;

/// Elmore delay of every node, indexed by [`NodeId::index`].
///
/// The input node has delay zero.  The result agrees with the `t_d`
/// component of [`characteristic_times`](crate::moments::characteristic_times)
/// for every node (this is checked by the test-suite).
///
/// # Errors
///
/// Returns [`CoreError::NoCapacitance`] if the tree carries no capacitance.
pub fn elmore_delays(tree: &RcTree) -> Result<Vec<Seconds>> {
    if tree.total_capacitance().is_zero() {
        return Err(CoreError::NoCapacitance);
    }
    // One pre-order walk over the flattened traversal cache; the only
    // allocation is the result vector.
    let cache = tree.traversal();
    let mut delays = vec![Seconds::ZERO; tree.node_count()];
    for &i in &cache.preorder[1..] {
        let i = i as usize;
        let p = cache.parent[i] as usize;
        // Downstream of the branch: the child subtree plus the branch's own
        // distributed capacitance at half weight.
        let c_effective = cache.down_cap[i] + cache.branch_c[i] * 0.5;
        delays[i] = Seconds::new(delays[p].value() + cache.branch_r[i] * c_effective);
    }
    Ok(delays)
}

/// Elmore delay of a single node.
///
/// For repeated queries prefer [`elmore_delays`], which computes all nodes at
/// once.
///
/// # Errors
///
/// * [`CoreError::NodeNotFound`] if `node` does not belong to the tree;
/// * [`CoreError::NoCapacitance`] if the tree carries no capacitance.
pub fn elmore_delay(tree: &RcTree, node: NodeId) -> Result<Seconds> {
    tree.check(node)?;
    Ok(elmore_delays(tree)?[node.index()])
}

/// The node with the largest Elmore delay among the tree's outputs, together
/// with that delay.
///
/// This is the "critical sink" heuristic used pervasively in timing-driven
/// layout.
///
/// # Errors
///
/// * [`CoreError::NoOutputs`] if no outputs are marked;
/// * [`CoreError::NoCapacitance`] if the tree carries no capacitance.
pub fn critical_output(tree: &RcTree) -> Result<(NodeId, Seconds)> {
    let delays = elmore_delays(tree)?;
    tree.outputs()
        .map(|id| (id, delays[id.index()]))
        .max_by(|a, b| a.1.value().total_cmp(&b.1.value()))
        .ok_or(CoreError::NoOutputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RcTreeBuilder;
    use crate::moments::characteristic_times;
    use crate::units::{Farads, Ohms};

    fn sample_tree() -> RcTree {
        let mut b = RcTreeBuilder::new();
        let a = b
            .add_line(b.input(), "a", Ohms::new(15.0), Farads::new(1.0))
            .unwrap();
        b.add_capacitance(a, Farads::new(2.0)).unwrap();
        let s = b.add_resistor(a, "s", Ohms::new(8.0)).unwrap();
        b.add_capacitance(s, Farads::new(7.0)).unwrap();
        let o = b
            .add_line(a, "o", Ohms::new(3.0), Farads::new(4.0))
            .unwrap();
        b.add_capacitance(o, Farads::new(9.0)).unwrap();
        b.mark_output(o).unwrap();
        b.mark_output(s).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn input_has_zero_delay() {
        let tree = sample_tree();
        let delays = elmore_delays(&tree).unwrap();
        assert_eq!(delays[tree.input().index()], Seconds::ZERO);
    }

    #[test]
    fn matches_characteristic_times_for_every_node() {
        let tree = sample_tree();
        let delays = elmore_delays(&tree).unwrap();
        for id in tree.node_ids() {
            if id == tree.input() {
                continue;
            }
            let t = characteristic_times(&tree, id).unwrap();
            assert!(
                (delays[id.index()].value() - t.t_d.value()).abs() < 1e-9,
                "node {id}: {} vs {}",
                delays[id.index()],
                t.t_d
            );
        }
    }

    #[test]
    fn single_node_query_agrees_with_bulk() {
        let tree = sample_tree();
        let delays = elmore_delays(&tree).unwrap();
        for id in tree.node_ids() {
            assert_eq!(elmore_delay(&tree, id).unwrap(), delays[id.index()]);
        }
    }

    #[test]
    fn critical_output_picks_the_slowest_sink() {
        let tree = sample_tree();
        let (node, delay) = critical_output(&tree).unwrap();
        let delays = elmore_delays(&tree).unwrap();
        for out in tree.outputs() {
            assert!(delays[out.index()] <= delay);
        }
        assert!(tree.is_output(node).unwrap());
    }

    #[test]
    fn no_capacitance_is_an_error() {
        let mut b = RcTreeBuilder::new();
        let n = b.add_resistor(b.input(), "n", Ohms::new(1.0)).unwrap();
        b.mark_output(n).unwrap();
        let tree = b.build().unwrap();
        assert!(matches!(
            elmore_delays(&tree),
            Err(CoreError::NoCapacitance)
        ));
    }

    #[test]
    fn no_outputs_is_an_error_for_critical_output() {
        let mut b = RcTreeBuilder::new();
        let n = b.add_resistor(b.input(), "n", Ohms::new(1.0)).unwrap();
        b.add_capacitance(n, Farads::new(1.0)).unwrap();
        let tree = b.build().unwrap();
        assert!(matches!(critical_output(&tree), Err(CoreError::NoOutputs)));
    }

    #[test]
    fn delay_grows_along_a_chain() {
        let mut b = RcTreeBuilder::new();
        let mut prev = b.input();
        for i in 0..10 {
            prev = b
                .add_resistor(prev, format!("n{i}"), Ohms::new(1.0))
                .unwrap();
            b.add_capacitance(prev, Farads::new(1.0)).unwrap();
        }
        let tree = b.build().unwrap();
        let delays = elmore_delays(&tree).unwrap();
        for id in tree.node_ids().skip(1) {
            let parent = tree.parent(id).unwrap().unwrap();
            assert!(delays[id.index()] > delays[parent.index()]);
        }
    }
}
