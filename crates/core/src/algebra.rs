//! The **delay algebra**: the scalar arithmetic of the timing kernel,
//! abstracted into a trait so one traversal can carry either plain `f64`
//! seconds or symbolic polynomials in the uniform R/C scale factors.
//!
//! Every quantity the batch kernel accumulates — subtree capacitance,
//! path resistance, `T_P`, the Elmore prefix sums, the `T_Re` numerator —
//! is built from resistance elements and capacitance elements by addition,
//! multiplication and division by small dimensionless constants.  The
//! [`DelayValue`] trait captures exactly that vocabulary, and
//! [`crate::batch`]'s sweep is written once, generically, over it:
//!
//! * instantiated at **`f64`** it is the production scalar kernel;
//! * instantiated at [`Poly2`] it computes, in the *same* one-post-order +
//!   one-pre-order traversal, every characteristic time as a bivariate
//!   polynomial in the uniform resistance scale `r` and capacitance scale
//!   `c` — the symbolic lane behind continuum corner certification
//!   (following the analytic-delay-function formulation of
//!   arXiv:2510.15907).
//!
//! # Trait laws
//!
//! For all values `a`, `b`, `c` and finite scalars `k`:
//!
//! 1. `add` is commutative and associative with identity [`DelayValue::zero`]
//!    (up to the rounding of the underlying coefficient arithmetic — the
//!    kernel never relies on re-association);
//! 2. `mul` is commutative and distributes over `add`, with
//!    `a.mul(&zero) = zero`;
//! 3. `scale(k)` equals `mul` by the constant `k` injected as a
//!    dimensionless value, and `div(k)` is its inverse application:
//!    `a.scale(k).div(k) ≈ a` for `k ≠ 0`;
//! 4. the injectors are linear: `from_r(x + y)` equals
//!    `from_r(x).add(&from_r(y))` in exact arithmetic, likewise `from_c`;
//! 5. `is_zero` recognises exactly the additive identity (all-zero
//!    coefficients), and `div_exact` is the exact right-inverse of `mul`
//!    whenever it returns `Some`: `a.mul(&b).div_exact(&b) == Some(a)` in
//!    exact arithmetic for `b` in its supported divisor class.
//!
//! # The f64 bit-identity contract
//!
//! The `f64` instance injects elements **unchanged** (`from_r`/`from_c` are
//! the identity) and maps every trait operation onto the corresponding
//! native IEEE-754 operation (`add` → `+`, `mul` → `*`, `div(k)` → `/ k`,
//! `div_exact` → `/`).  The generic kernel in [`crate::batch`] performs its
//! operations in **the same order with the same association** as the
//! historical hand-written scalar loops, so the `f64` instantiation executes
//! the *identical float sequence* — bit-for-bit, not merely numerically
//! close.  This is pinned by tests: `batch::tests` compares the generic
//! pre-order kernel against the independent (non-generic)
//! [`crate::incremental::raw_times`] traversal with `assert_eq!`, and the
//! `rctree-sta` equivalence suites extend the pin across every workload
//! generator, worker count and seeded ECO stream.
//!
//! [`Poly2`] values, by contrast, carry a dense 3×3 coefficient grid over
//! the monomials `r^i·c^j` (`0 ≤ i, j ≤ 2` — degree ≤ 2 per variable, which
//! is exactly what one Elmore/`T_Re` term needs: the `T_Re` numerator
//! reaches `r²c`).  Under uniform scaling every kernel output degenerates
//! to a single monomial (`T_P`, `T_De`, `T_Re` ∝ `r·c`; `R_ee` ∝ `r`;
//! `C_T` ∝ `c`), which the downstream symbolic bound machinery
//! ([`crate::bounds::symbolic_delay_bounds`]) exploits.

use crate::error::{CoreError, Result};

/// The scalar vocabulary of the timing kernel (see the module docs for the
/// laws and the `f64` bit-identity contract).
///
/// `from_r` / `from_c` inject a raw resistance/capacitance element value
/// into the algebra; the kernel's inputs stay plain `&[f64]` arrays and
/// every element is injected exactly once, at first use.
pub trait DelayValue: Clone + PartialEq + std::fmt::Debug {
    /// The additive identity.
    fn zero() -> Self;
    /// Injects a resistance element value.
    fn from_r(value: f64) -> Self;
    /// Injects a capacitance element value.
    fn from_c(value: f64) -> Self;
    /// Addition.
    fn add(&self, rhs: &Self) -> Self;
    /// Subtraction.
    fn sub(&self, rhs: &Self) -> Self;
    /// Multiplication by another algebra value.
    fn mul(&self, rhs: &Self) -> Self;
    /// Multiplication by a dimensionless scalar.
    fn scale(&self, k: f64) -> Self;
    /// Division by a dimensionless scalar.
    fn div(&self, k: f64) -> Self;
    /// Exact division by another algebra value, when the divisor lies in
    /// the instance's supported divisor class (`f64`: any nonzero value;
    /// [`Poly2`]: a single-term monomial dividing every term of `self`).
    fn div_exact(&self, rhs: &Self) -> Option<Self>;
    /// Whether this is the additive identity.
    fn is_zero(&self) -> bool;
}

impl DelayValue for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn from_r(value: f64) -> Self {
        value
    }
    #[inline]
    fn from_c(value: f64) -> Self {
        value
    }
    #[inline]
    fn add(&self, rhs: &Self) -> Self {
        self + rhs
    }
    #[inline]
    fn sub(&self, rhs: &Self) -> Self {
        self - rhs
    }
    #[inline]
    fn mul(&self, rhs: &Self) -> Self {
        self * rhs
    }
    #[inline]
    fn scale(&self, k: f64) -> Self {
        self * k
    }
    #[inline]
    fn div(&self, k: f64) -> Self {
        self / k
    }
    #[inline]
    fn div_exact(&self, rhs: &Self) -> Option<Self> {
        if *rhs == 0.0 {
            None
        } else {
            Some(self / rhs)
        }
    }
    #[inline]
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
}

/// Per-variable degree bound of [`Poly2`] (coefficients of `r^i·c^j` for
/// `0 ≤ i, j <` this).
pub const POLY2_DEG: usize = 3;

/// A bivariate polynomial in the uniform resistance scale `r` and
/// capacitance scale `c`, dense over the monomial grid `r^i·c^j`,
/// `0 ≤ i, j ≤ 2`.
///
/// This is the symbolic instance of the delay algebra: `from_r(x) = x·r`,
/// `from_c(x) = x·c`, so a kernel sweep over nominal element values yields
/// each characteristic time *as a function of the scales* — evaluating the
/// result at `(r, c)` reproduces (to rounding) the scalar kernel run on a
/// design whose every resistance is pre-multiplied by `r` and every
/// capacitance by `c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poly2 {
    /// `coeff[i][j]` multiplies `r^i · c^j`.
    coeff: [[f64; POLY2_DEG]; POLY2_DEG],
}

impl Poly2 {
    /// The zero polynomial.
    pub const ZERO: Poly2 = Poly2 {
        coeff: [[0.0; POLY2_DEG]; POLY2_DEG],
    };

    /// The single-term polynomial `value · r^i · c^j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` exceeds the degree bound (2).
    pub fn monomial(i: usize, j: usize, value: f64) -> Poly2 {
        assert!(
            i < POLY2_DEG && j < POLY2_DEG,
            "monomial degree ({i},{j}) out of range"
        );
        let mut p = Poly2::ZERO;
        p.coeff[i][j] = value;
        p
    }

    /// The coefficient of `r^i · c^j` (zero outside the grid).
    pub fn coeff(&self, i: usize, j: usize) -> f64 {
        if i < POLY2_DEG && j < POLY2_DEG {
            self.coeff[i][j]
        } else {
            0.0
        }
    }

    /// Evaluates the polynomial at `(r, c)` by nested Horner recurrences.
    pub fn eval(&self, r: f64, c: f64) -> f64 {
        let mut acc = 0.0;
        for i in (0..POLY2_DEG).rev() {
            let row = &self.coeff[i];
            let mut row_val = 0.0;
            for j in (0..POLY2_DEG).rev() {
                row_val = row_val * c + row[j];
            }
            acc = acc * r + row_val;
        }
        acc
    }

    /// Evaluates `∂/∂r` at `(r, c)`.
    pub fn eval_dr(&self, r: f64, c: f64) -> f64 {
        let mut acc = 0.0;
        for i in (1..POLY2_DEG).rev() {
            let row = &self.coeff[i];
            let mut row_val = 0.0;
            for j in (0..POLY2_DEG).rev() {
                row_val = row_val * c + row[j];
            }
            acc = acc * r + row_val * i as f64;
        }
        acc
    }

    /// Evaluates `∂/∂c` at `(r, c)`.
    pub fn eval_dc(&self, r: f64, c: f64) -> f64 {
        let mut acc = 0.0;
        for i in (0..POLY2_DEG).rev() {
            let row = &self.coeff[i];
            let mut row_val = 0.0;
            for j in (1..POLY2_DEG).rev() {
                row_val = row_val * c + row[j] * j as f64;
            }
            acc = acc * r + row_val;
        }
        acc
    }

    /// The additive inverse.
    pub fn neg(&self) -> Poly2 {
        let mut out = *self;
        for row in &mut out.coeff {
            for v in row.iter_mut() {
                *v = -*v;
            }
        }
        out
    }

    /// `Some((i, j, coeff))` when the polynomial has **exactly one**
    /// nonzero coefficient — the shape test behind the symbolic bound
    /// machinery (uniform scaling makes every kernel output a monomial).
    pub fn as_monomial(&self) -> Option<(usize, usize, f64)> {
        let mut found = None;
        for (i, row) in self.coeff.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    if found.is_some() {
                        return None;
                    }
                    found = Some((i, j, v));
                }
            }
        }
        found
    }

    /// Maximum of the polynomial over the box `[r.0, r.1] × [c.0, c.1]`,
    /// returned as `(value, (r*, c*))` — the **exact** worst point, found by
    /// closed-form critical-point/edge evaluation rather than sampling:
    ///
    /// * the four box corners;
    /// * per edge, the stationary point of the univariate quadratic the
    ///   polynomial restricts to (`∂/∂var = 0` is linear in the free
    ///   variable);
    /// * the interior stationary point, when the gradient is linear in
    ///   `(r, c)` — true whenever the cross-quadratic coefficients
    ///   (`r²c`, `rc²`, `r²c²`) vanish, which covers every polynomial the
    ///   timing layers produce (endpoint arrivals are affine-plus-bilinear:
    ///   `A + B·rc` and edge restrictions thereof).
    ///
    /// Candidates are evaluated in a fixed order and replaced only on a
    /// strictly larger value, so ties resolve deterministically (corners
    /// before edge points before the interior point).
    ///
    /// # Panics
    ///
    /// Panics if either interval is inverted or not finite.
    pub fn max_over_box(&self, r: (f64, f64), c: (f64, f64)) -> (f64, (f64, f64)) {
        assert!(
            r.0.is_finite() && r.1.is_finite() && c.0.is_finite() && c.1.is_finite(),
            "non-finite certification box"
        );
        assert!(r.0 <= r.1 && c.0 <= c.1, "inverted certification box");
        let mut best = (self.eval(r.0, c.0), (r.0, c.0));
        let consider = |p: &Poly2, rv: f64, cv: f64, best: &mut (f64, (f64, f64))| {
            let v = p.eval(rv, cv);
            if v > best.0 {
                *best = (v, (rv, cv));
            }
        };
        // Remaining corners (the first seeded `best`).
        consider(self, r.1, c.0, &mut best);
        consider(self, r.0, c.1, &mut best);
        consider(self, r.1, c.1, &mut best);
        // Edge stationary points: fix one variable at a bound, the
        // restriction is a quadratic in the other.
        for rv in [r.0, r.1] {
            // q(c) = q0 + q1·c + q2·c²  with  q_j = Σ_i coeff[i][j]·r^i.
            let q = |j: usize| {
                let mut acc = 0.0;
                for i in (0..POLY2_DEG).rev() {
                    acc = acc * rv + self.coeff[i][j];
                }
                acc
            };
            let (q1, q2) = (q(1), q(2));
            if q2 != 0.0 {
                let cv = -q1 / (2.0 * q2);
                if cv > c.0 && cv < c.1 {
                    consider(self, rv, cv, &mut best);
                }
            }
        }
        for cv in [c.0, c.1] {
            let q = |i: usize| {
                let mut acc = 0.0;
                for j in (0..POLY2_DEG).rev() {
                    acc = acc * cv + self.coeff[i][j];
                }
                acc
            };
            let (q1, q2) = (q(1), q(2));
            if q2 != 0.0 {
                let rv = -q1 / (2.0 * q2);
                if rv > r.0 && rv < r.1 {
                    consider(self, rv, cv, &mut best);
                }
            }
        }
        // Interior stationary point of the linear-gradient family:
        //   ∂p/∂r = a10 + a11·c + 2·a20·r = 0
        //   ∂p/∂c = a01 + a11·r + 2·a02·c = 0
        if self.coeff[2][1] == 0.0 && self.coeff[1][2] == 0.0 && self.coeff[2][2] == 0.0 {
            let (a10, a01, a11) = (self.coeff[1][0], self.coeff[0][1], self.coeff[1][1]);
            let (a20, a02) = (self.coeff[2][0], self.coeff[0][2]);
            let det = 4.0 * a20 * a02 - a11 * a11;
            if det != 0.0 {
                let rv = (a11 * a01 - 2.0 * a02 * a10) / det;
                let cv = (a11 * a10 - 2.0 * a20 * a01) / det;
                if rv > r.0 && rv < r.1 && cv > c.0 && cv < c.1 {
                    consider(self, rv, cv, &mut best);
                }
            }
        }
        best
    }

    /// Minimum of the polynomial over the box, as `(value, (r*, c*))` —
    /// the mirror of [`Poly2::max_over_box`] through negation, with the
    /// same deterministic candidate order.
    pub fn min_over_box(&self, r: (f64, f64), c: (f64, f64)) -> (f64, (f64, f64)) {
        let (v, at) = self.neg().max_over_box(r, c);
        (-v, at)
    }

    /// Coefficientwise `self ≥ other`: implies `self(r, c) ≥ other(r, c)`
    /// for every `r, c ≥ 0` (all monomials are non-negative there) — the
    /// sound pruning test for candidate envelopes.
    pub fn dominates(&self, other: &Poly2) -> bool {
        for i in 0..POLY2_DEG {
            for j in 0..POLY2_DEG {
                if self.coeff[i][j] < other.coeff[i][j] {
                    return false;
                }
            }
        }
        true
    }
}

impl DelayValue for Poly2 {
    fn zero() -> Self {
        Poly2::ZERO
    }

    fn from_r(value: f64) -> Self {
        Poly2::monomial(1, 0, value)
    }

    fn from_c(value: f64) -> Self {
        Poly2::monomial(0, 1, value)
    }

    fn add(&self, rhs: &Self) -> Self {
        let mut out = *self;
        for i in 0..POLY2_DEG {
            for j in 0..POLY2_DEG {
                out.coeff[i][j] += rhs.coeff[i][j];
            }
        }
        out
    }

    fn sub(&self, rhs: &Self) -> Self {
        let mut out = *self;
        for i in 0..POLY2_DEG {
            for j in 0..POLY2_DEG {
                out.coeff[i][j] -= rhs.coeff[i][j];
            }
        }
        out
    }

    fn mul(&self, rhs: &Self) -> Self {
        let mut out = Poly2::ZERO;
        for i in 0..POLY2_DEG {
            for j in 0..POLY2_DEG {
                let a = self.coeff[i][j];
                if a == 0.0 {
                    continue;
                }
                for k in 0..POLY2_DEG {
                    for l in 0..POLY2_DEG {
                        let b = rhs.coeff[k][l];
                        if b == 0.0 {
                            continue;
                        }
                        // The kernel's products stay within degree 2 per
                        // variable (the T_Re numerator peaks at r²c); a
                        // truncation here would mean the algebra is being
                        // used outside that envelope.
                        assert!(
                            i + k < POLY2_DEG && j + l < POLY2_DEG,
                            "Poly2 product overflows degree 2 at r^{}c^{}",
                            i + k,
                            j + l
                        );
                        out.coeff[i + k][j + l] += a * b;
                    }
                }
            }
        }
        out
    }

    fn scale(&self, k: f64) -> Self {
        let mut out = *self;
        for row in &mut out.coeff {
            for v in row.iter_mut() {
                *v *= k;
            }
        }
        out
    }

    fn div(&self, k: f64) -> Self {
        let mut out = *self;
        for row in &mut out.coeff {
            for v in row.iter_mut() {
                *v /= k;
            }
        }
        out
    }

    fn div_exact(&self, rhs: &Self) -> Option<Self> {
        let (di, dj, d) = rhs.as_monomial()?;
        let mut out = Poly2::ZERO;
        for i in 0..POLY2_DEG {
            for j in 0..POLY2_DEG {
                let v = self.coeff[i][j];
                if v == 0.0 {
                    continue;
                }
                if i < di || j < dj {
                    return None;
                }
                out.coeff[i - di][j - dj] = v / d;
            }
        }
        Some(out)
    }

    fn is_zero(&self) -> bool {
        self.coeff.iter().all(|row| row.iter().all(|&v| v == 0.0))
    }
}

/// The symbolic analogue of
/// [`CharacteristicTimes`](crate::moments::CharacteristicTimes): every
/// characteristic quantity of one output as a polynomial in the uniform
/// scales `(r, c)`.  Produced by
/// [`SymbolicScratch`](crate::batch::SymbolicScratch); consumed by
/// [`crate::bounds::symbolic_delay_bounds`].
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicTimes {
    /// `T_P(r, c)` — output-independent.
    pub t_p: Poly2,
    /// `T_De(r, c)`, the Elmore delay.
    pub t_d: Poly2,
    /// `T_Re(r, c)`, the rise time.
    pub t_r: Poly2,
    /// `R_ee(r, c)`, the output's path resistance.
    pub r_ee: Poly2,
    /// `C_T(r, c)`, the total network capacitance.
    pub total_cap: Poly2,
}

/// Parses an interval written as `a..b` (both finite, `0 < a ≤ b`) — the
/// wire / CLI grammar of continuum certification boxes.
///
/// # Errors
///
/// Returns [`CoreError::InvalidValue`] on malformed syntax, non-finite or
/// non-positive endpoints, or an inverted interval.
pub fn parse_scale_range(spec: &str) -> Result<(f64, f64)> {
    let err = || CoreError::InvalidValue {
        what: "scale range",
        value: f64::NAN,
    };
    let (lo, hi) = spec.split_once("..").ok_or_else(err)?;
    let lo: f64 = lo.trim().parse().map_err(|_| err())?;
    let hi: f64 = hi.trim().parse().map_err(|_| err())?;
    if !lo.is_finite() || !hi.is_finite() || lo <= 0.0 || hi < lo {
        return Err(CoreError::InvalidValue {
            what: "scale range",
            value: lo,
        });
    }
    Ok((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(entries: &[(usize, usize, f64)]) -> Poly2 {
        let mut p = Poly2::ZERO;
        for &(i, j, v) in entries {
            p = p.add(&Poly2::monomial(i, j, v));
        }
        p
    }

    #[test]
    fn f64_instance_is_the_identity_embedding() {
        assert_eq!(<f64 as DelayValue>::from_r(3.25), 3.25);
        assert_eq!(<f64 as DelayValue>::from_c(0.125), 0.125);
        assert_eq!(2.0_f64.add(&3.0), 5.0);
        assert_eq!(2.0_f64.sub(&3.0), -1.0);
        assert_eq!(2.0_f64.mul(&3.0), 6.0);
        assert_eq!(7.0_f64.div(2.0), 3.5);
        assert_eq!(7.0_f64.scale(2.0), 14.0);
        assert_eq!(7.0_f64.div_exact(&2.0), Some(3.5));
        assert_eq!(7.0_f64.div_exact(&0.0), None);
        assert!(<f64 as DelayValue>::zero().is_zero());
        assert!(!1.0_f64.is_zero());
    }

    #[test]
    fn poly_eval_matches_direct_expansion() {
        let p = poly(&[(0, 0, 2.0), (1, 1, 3.0), (2, 1, -1.5), (0, 2, 0.5)]);
        for &(r, c) in &[(1.0, 1.0), (0.8, 1.3), (2.0, 0.5), (0.0, 0.0)] {
            let direct = 2.0 + 3.0 * r * c - 1.5 * r * r * c + 0.5 * c * c;
            assert!((p.eval(r, c) - direct).abs() < 1e-12 * direct.abs().max(1.0));
        }
    }

    #[test]
    fn poly_derivatives_match_finite_differences() {
        let p = poly(&[(1, 0, 2.0), (1, 1, 3.0), (2, 2, 0.7), (0, 2, -1.1)]);
        let (r, c) = (1.2, 0.9);
        let h = 1e-6;
        let dr = (p.eval(r + h, c) - p.eval(r - h, c)) / (2.0 * h);
        let dc = (p.eval(r, c + h) - p.eval(r, c - h)) / (2.0 * h);
        assert!((p.eval_dr(r, c) - dr).abs() < 1e-5);
        assert!((p.eval_dc(r, c) - dc).abs() < 1e-5);
    }

    #[test]
    fn poly_algebra_round_trips() {
        let a = poly(&[(1, 0, 2.0), (0, 1, 3.0)]);
        let b = poly(&[(1, 1, 4.0)]);
        let prod = a.mul(&b); // 8 r²c + 12 rc²
        assert_eq!(prod.coeff(2, 1), 8.0);
        assert_eq!(prod.coeff(1, 2), 12.0);
        assert_eq!(prod.div_exact(&b), Some(a));
        assert_eq!(a.sub(&a), Poly2::ZERO);
        assert!(a.sub(&a).is_zero());
        assert_eq!(a.scale(2.0).div(2.0), a);
    }

    #[test]
    fn div_exact_rejects_non_dividing_monomials() {
        let a = poly(&[(1, 0, 2.0), (0, 1, 3.0)]);
        let r = Poly2::monomial(1, 0, 1.0);
        assert_eq!(a.div_exact(&r), None); // the 3c term has no r factor
        assert_eq!(a.div_exact(&a), None); // divisor is not a monomial
        assert_eq!(a.div_exact(&Poly2::ZERO), None);
    }

    #[test]
    #[should_panic(expected = "overflows degree 2")]
    fn product_beyond_degree_two_panics() {
        let r2 = Poly2::monomial(2, 0, 1.0);
        let _ = r2.mul(&Poly2::monomial(1, 0, 1.0));
    }

    #[test]
    fn as_monomial_recognises_single_terms_only() {
        assert_eq!(Poly2::monomial(1, 1, 2.5).as_monomial(), Some((1, 1, 2.5)));
        assert_eq!(Poly2::ZERO.as_monomial(), None);
        assert_eq!(poly(&[(1, 0, 1.0), (0, 1, 1.0)]).as_monomial(), None);
    }

    #[test]
    fn bilinear_max_is_at_the_top_corner() {
        // A + B·rc with B > 0 is increasing in both variables on a
        // positive box.
        let p = poly(&[(0, 0, 2.0), (1, 1, 3.0)]);
        let (v, at) = p.max_over_box((0.8, 1.4), (0.9, 1.2));
        assert_eq!(at, (1.4, 1.2));
        assert!((v - (2.0 + 3.0 * 1.4 * 1.2)).abs() < 1e-12);
        let (vmin, at_min) = p.min_over_box((0.8, 1.4), (0.9, 1.2));
        assert_eq!(at_min, (0.8, 0.9));
        assert!((vmin - (2.0 + 3.0 * 0.8 * 0.9)).abs() < 1e-12);
    }

    #[test]
    fn edge_and_interior_critical_points_are_found() {
        // p = -(r - 1)² - (c - 1)²: interior max at (1, 1).
        let p = poly(&[
            (0, 0, -2.0),
            (1, 0, 2.0),
            (2, 0, -1.0),
            (0, 1, 2.0),
            (0, 2, -1.0),
        ]);
        let (v, at) = p.max_over_box((0.5, 1.5), (0.5, 1.5));
        assert!((v - 0.0).abs() < 1e-12);
        assert!((at.0 - 1.0).abs() < 1e-12 && (at.1 - 1.0).abs() < 1e-12);
        // Same poly over a box excluding the interior optimum in c: the
        // maximum moves to the c = 0.5 edge with the r-stationary point.
        let (v_edge, at_edge) = p.max_over_box((0.5, 1.5), (0.2, 0.5));
        assert!((at_edge.0 - 1.0).abs() < 1e-12);
        assert_eq!(at_edge.1, 0.5);
        assert!((v_edge - -0.25).abs() < 1e-12);
    }

    #[test]
    fn max_over_box_matches_dense_sampling_on_random_quadratics() {
        // Linear-gradient family (no cross-quadratic terms): closed form
        // must dominate a fine sampling grid.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        };
        for _ in 0..50 {
            let p = poly(&[
                (0, 0, next()),
                (1, 0, next()),
                (0, 1, next()),
                (1, 1, next()),
                (2, 0, next()),
                (0, 2, next()),
            ]);
            let (rb, cb) = ((0.7, 1.6), (0.8, 1.3));
            let (v, _) = p.max_over_box(rb, cb);
            let mut sampled = f64::NEG_INFINITY;
            for a in 0..=40 {
                for b in 0..=40 {
                    let r = rb.0 + (rb.1 - rb.0) * a as f64 / 40.0;
                    let c = cb.0 + (cb.1 - cb.0) * b as f64 / 40.0;
                    sampled = sampled.max(p.eval(r, c));
                }
            }
            assert!(
                v >= sampled - 1e-9,
                "closed form {v} below sampling {sampled}"
            );
        }
    }

    #[test]
    fn dominates_is_coefficientwise() {
        let a = poly(&[(0, 0, 1.0), (1, 1, 2.0)]);
        let b = poly(&[(0, 0, 0.5), (1, 1, 2.0)]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(a.dominates(&a));
    }

    #[test]
    fn scale_range_parses_and_rejects() {
        assert_eq!(parse_scale_range("0.8..1.4").unwrap(), (0.8, 1.4));
        assert_eq!(parse_scale_range(" 1 .. 1 ").unwrap(), (1.0, 1.0));
        for bad in [
            "", "0.8", "0.8..", "..1.4", "a..b", "1.4..0.8", "0..1", "-1..2", "1..inf",
        ] {
            assert!(parse_scale_range(bad).is_err(), "{bad} should be rejected");
        }
    }
}
