//! Incremental construction of [`RcTree`] networks.
//!
//! The builder mirrors how the paper describes networks: starting from the
//! input, resistors and uniform RC lines extend or branch the tree, grounded
//! capacitors attach to nodes, and some nodes are marked as outputs.
//!
//! ```
//! use rctree_core::builder::RcTreeBuilder;
//! use rctree_core::units::{Ohms, Farads};
//!
//! # fn main() -> rctree_core::error::Result<()> {
//! // The example network of Figure 7 (values in ohms and farads).
//! let mut b = RcTreeBuilder::new();
//! let n1 = b.add_line(b.input(), "n1", Ohms::new(15.0), Farads::ZERO)?;
//! b.add_capacitance(n1, Farads::new(2.0))?;
//! let side = b.add_resistor(n1, "side", Ohms::new(8.0))?;
//! b.add_capacitance(side, Farads::new(7.0))?;
//! let out = b.add_line(n1, "out", Ohms::new(3.0), Farads::new(4.0))?;
//! b.add_capacitance(out, Farads::new(9.0))?;
//! b.mark_output(out)?;
//! let tree = b.build()?;
//! assert_eq!(tree.node_count(), 4);
//! # Ok(())
//! # }
//! ```

use crate::element::Branch;
use crate::error::{CoreError, Result};
use crate::tree::{NodeData, NodeId, RcTree};
use crate::units::{Farads, Ohms};

/// Default name given to the input node.
pub const INPUT_NAME: &str = "input";

/// Builder for [`RcTree`] networks.
///
/// See the [module documentation](self) for a complete example.
#[derive(Debug, Clone)]
pub struct RcTreeBuilder {
    nodes: Vec<NodeData>,
}

impl Default for RcTreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl RcTreeBuilder {
    /// Creates a builder containing only the input node (named
    /// [`INPUT_NAME`]).
    pub fn new() -> Self {
        Self::with_input_name(INPUT_NAME)
    }

    /// Creates a builder whose input node carries the given name.
    pub fn with_input_name(name: impl Into<String>) -> Self {
        RcTreeBuilder {
            nodes: vec![NodeData {
                name: name.into(),
                parent: None,
                branch: None,
                cap: Farads::ZERO,
                children: Vec::new(),
                output: false,
            }],
        }
    }

    /// The input node id (always valid).
    pub fn input(&self) -> NodeId {
        NodeId::INPUT
    }

    /// Number of nodes added so far, including the input.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Looks up a previously added node by name.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NameNotFound`] if no node has the given name.
    pub fn node_by_name(&self, name: &str) -> Result<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(NodeId)
            .ok_or_else(|| CoreError::NameNotFound {
                name: name.to_string(),
            })
    }

    /// Adds a lumped resistor from `parent` to a new node called `name` and
    /// returns the new node's id.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `parent` is unknown,
    /// [`CoreError::InvalidValue`] if the resistance is negative or not
    /// finite, or [`CoreError::DuplicateName`] if `name` is already used.
    pub fn add_resistor(
        &mut self,
        parent: NodeId,
        name: impl Into<String>,
        resistance: Ohms,
    ) -> Result<NodeId> {
        check_value("resistance", resistance.value())?;
        self.add_branch(parent, name.into(), Branch::resistor(resistance))
    }

    /// Adds a uniform distributed RC line from `parent` to a new node called
    /// `name` and returns the new node's id.
    ///
    /// A line with zero capacitance degenerates to a lumped resistor and a
    /// line with zero resistance to a lumped capacitor hung on `parent`
    /// — both are accepted, mirroring the paper's single `URC` primitive.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `parent` is unknown,
    /// [`CoreError::InvalidValue`] if either value is negative or not finite,
    /// or [`CoreError::DuplicateName`] if `name` is already used.
    pub fn add_line(
        &mut self,
        parent: NodeId,
        name: impl Into<String>,
        resistance: Ohms,
        capacitance: Farads,
    ) -> Result<NodeId> {
        check_value("line resistance", resistance.value())?;
        check_value("line capacitance", capacitance.value())?;
        self.add_branch(parent, name.into(), Branch::line(resistance, capacitance))
    }

    /// Adds lumped grounded capacitance at an existing node (accumulating
    /// with any capacitance already attached there).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` is unknown or
    /// [`CoreError::InvalidValue`] if the capacitance is negative or not
    /// finite.
    pub fn add_capacitance(&mut self, node: NodeId, capacitance: Farads) -> Result<()> {
        check_value("capacitance", capacitance.value())?;
        let data = self
            .nodes
            .get_mut(node.0)
            .ok_or(CoreError::NodeNotFound { node })?;
        data.cap += capacitance;
        Ok(())
    }

    /// Marks a node as an output of interest.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` is unknown.
    pub fn mark_output(&mut self, node: NodeId) -> Result<()> {
        let data = self
            .nodes
            .get_mut(node.0)
            .ok_or(CoreError::NodeNotFound { node })?;
        data.output = true;
        Ok(())
    }

    /// Finalizes the builder into an immutable [`RcTree`].
    ///
    /// This is where the tree's flattened traversal cache (pre-order index
    /// array, per-node parent/branch/capacitance arrays, prefix path
    /// resistances and downstream capacitances) is derived, so that every
    /// subsequent whole-tree analysis is an allocation-free array walk.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyTree`] if no branches or capacitance were
    /// added at all.
    pub fn build(self) -> Result<RcTree> {
        let has_branch = self.nodes.len() > 1;
        let has_cap = self.nodes.iter().any(|n| !n.cap.is_zero())
            || self
                .nodes
                .iter()
                .filter_map(|n| n.branch.as_ref())
                .any(|b| !b.capacitance().is_zero());
        if !has_branch && !has_cap {
            return Err(CoreError::EmptyTree);
        }
        Ok(RcTree::from_nodes(self.nodes))
    }

    fn add_branch(&mut self, parent: NodeId, name: String, branch: Branch) -> Result<NodeId> {
        if parent.0 >= self.nodes.len() {
            return Err(CoreError::NodeNotFound { node: parent });
        }
        if self.nodes.iter().any(|n| n.name == name) {
            return Err(CoreError::DuplicateName { name });
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeData {
            name,
            parent: Some(parent),
            branch: Some(branch),
            cap: Farads::ZERO,
            children: Vec::new(),
            output: false,
        });
        self.nodes[parent.0].children.push(id);
        Ok(id)
    }
}

fn check_value(what: &'static str, value: f64) -> Result<()> {
    if !value.is_finite() || value < 0.0 {
        Err(CoreError::InvalidValue { what, value })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_simple_chain() {
        let mut b = RcTreeBuilder::new();
        let a = b.add_resistor(b.input(), "a", Ohms::new(1.0)).unwrap();
        let c = b.add_resistor(a, "b", Ohms::new(2.0)).unwrap();
        b.add_capacitance(c, Farads::new(3.0)).unwrap();
        b.mark_output(c).unwrap();
        let tree = b.build().unwrap();
        assert_eq!(tree.node_count(), 3);
        assert_eq!(tree.resistance_from_input(c).unwrap(), Ohms::new(3.0));
    }

    #[test]
    fn rejects_negative_resistance() {
        let mut b = RcTreeBuilder::new();
        let err = b.add_resistor(b.input(), "a", Ohms::new(-1.0)).unwrap_err();
        assert!(matches!(err, CoreError::InvalidValue { .. }));
    }

    #[test]
    fn rejects_nan_capacitance() {
        let mut b = RcTreeBuilder::new();
        let a = b.add_resistor(b.input(), "a", Ohms::new(1.0)).unwrap();
        let err = b.add_capacitance(a, Farads::new(f64::NAN)).unwrap_err();
        assert!(matches!(err, CoreError::InvalidValue { .. }));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut b = RcTreeBuilder::new();
        b.add_resistor(b.input(), "a", Ohms::new(1.0)).unwrap();
        let err = b.add_resistor(b.input(), "a", Ohms::new(2.0)).unwrap_err();
        assert!(matches!(err, CoreError::DuplicateName { .. }));
    }

    #[test]
    fn rejects_unknown_parent() {
        let mut b = RcTreeBuilder::new();
        let err = b.add_resistor(NodeId(42), "a", Ohms::new(1.0)).unwrap_err();
        assert!(matches!(err, CoreError::NodeNotFound { .. }));
    }

    #[test]
    fn rejects_empty_tree() {
        let b = RcTreeBuilder::new();
        assert!(matches!(b.build(), Err(CoreError::EmptyTree)));
    }

    #[test]
    fn capacitor_only_tree_is_allowed() {
        let mut b = RcTreeBuilder::new();
        b.add_capacitance(b.input(), Farads::new(1.0)).unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn capacitance_accumulates() {
        let mut b = RcTreeBuilder::new();
        let a = b.add_resistor(b.input(), "a", Ohms::new(1.0)).unwrap();
        b.add_capacitance(a, Farads::new(1.0)).unwrap();
        b.add_capacitance(a, Farads::new(2.5)).unwrap();
        let tree = b.build().unwrap();
        assert_eq!(tree.capacitance(a).unwrap(), Farads::new(3.5));
    }

    #[test]
    fn custom_input_name_and_lookup() {
        let mut b = RcTreeBuilder::with_input_name("drv");
        assert_eq!(b.node_by_name("drv").unwrap(), b.input());
        let a = b
            .add_line(b.input(), "w1", Ohms::new(1.0), Farads::new(1.0))
            .unwrap();
        assert_eq!(b.node_by_name("w1").unwrap(), a);
        assert!(b.node_by_name("nope").is_err());
        assert_eq!(b.node_count(), 2);
    }

    #[test]
    fn default_builder_matches_new() {
        let d = RcTreeBuilder::default();
        assert_eq!(d.node_count(), 1);
    }
}
