//! Wiring-algebra expressions (the notation of Eq. 18).
//!
//! The paper observes that "the topology of any RC tree can be denoted by an
//! expression using only these two functions, `WB` and `WC`" over the `URC`
//! primitive, and that such an expression "can be used as a guide for the
//! calculations".  [`NetworkExpr`] is that expression as an abstract syntax
//! tree.  It can be
//!
//! * **evaluated** directly into a [`TwoPort`] state vector (the paper's
//!   linear-time algorithm), or
//! * **elaborated** into an explicit [`RcTree`] whose designated output is
//!   the far end of the cascade chain, so that the tree-based algorithms and
//!   the exact simulator can analyse exactly the same network.
//!
//! A textual parser/printer for these expressions lives in the
//! `rctree-netlist` crate.
//!
//! ```
//! use rctree_core::expr::NetworkExpr;
//! use rctree_core::units::{Ohms, Farads};
//!
//! # fn main() -> rctree_core::error::Result<()> {
//! // Eq. (18): the Figure 7 network.
//! let expr = NetworkExpr::resistor(Ohms::new(15.0))
//!     .cascade(NetworkExpr::capacitor(Farads::new(2.0)))
//!     .cascade(
//!         NetworkExpr::resistor(Ohms::new(8.0))
//!             .cascade(NetworkExpr::capacitor(Farads::new(7.0)))
//!             .side_branch(),
//!     )
//!     .cascade(NetworkExpr::line(Ohms::new(3.0), Farads::new(4.0)))
//!     .cascade(NetworkExpr::capacitor(Farads::new(9.0)));
//!
//! let state = expr.evaluate();
//! let tree = expr.to_tree()?;
//! assert_eq!(tree.total_capacitance(), state.total_cap());
//! # Ok(())
//! # }
//! ```

use crate::builder::RcTreeBuilder;
use crate::error::Result;
use crate::tree::{NodeId, RcTree};
use crate::twoport::TwoPort;
use crate::units::{Farads, Ohms};

/// An RC-tree topology expressed with the paper's `URC`/`WB`/`WC` algebra.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NetworkExpr {
    /// The primitive uniform RC line `URC R,C` (a resistor if `C = 0`, a
    /// capacitor if `R = 0`).
    Urc {
        /// Total series resistance of the line.
        resistance: Ohms,
        /// Total distributed capacitance of the line.
        capacitance: Farads,
    },
    /// Cascade `A WC B`: `B` continues from the far port of `A`.
    Cascade(Box<NetworkExpr>, Box<NetworkExpr>),
    /// Side branch `WB A`: `A` hangs off the point where it is attached and
    /// its far port is left open.
    Branch(Box<NetworkExpr>),
}

impl NetworkExpr {
    /// The primitive `URC R,C`.
    pub fn line(resistance: Ohms, capacitance: Farads) -> Self {
        NetworkExpr::Urc {
            resistance,
            capacitance,
        }
    }

    /// A lumped resistor (`URC R,0`).
    pub fn resistor(resistance: Ohms) -> Self {
        Self::line(resistance, Farads::ZERO)
    }

    /// A lumped grounded capacitor (`URC 0,C`).
    pub fn capacitor(capacitance: Farads) -> Self {
        Self::line(Ohms::ZERO, capacitance)
    }

    /// Cascades `next` onto the far port of `self` (`self WC next`).
    #[must_use]
    pub fn cascade(self, next: NetworkExpr) -> Self {
        NetworkExpr::Cascade(Box::new(self), Box::new(next))
    }

    /// Turns `self` into a side branch (`WB self`).
    #[must_use]
    pub fn side_branch(self) -> Self {
        NetworkExpr::Branch(Box::new(self))
    }

    /// Number of `URC` primitives in the expression.
    pub fn primitive_count(&self) -> usize {
        match self {
            NetworkExpr::Urc { .. } => 1,
            NetworkExpr::Cascade(a, b) => a.primitive_count() + b.primitive_count(),
            NetworkExpr::Branch(a) => a.primitive_count(),
        }
    }

    /// Evaluates the expression with the paper's linear-time constructive
    /// algorithm, yielding the five-component state vector with the far end
    /// of the outermost cascade chain as port 2.
    pub fn evaluate(&self) -> TwoPort {
        match self {
            NetworkExpr::Urc {
                resistance,
                capacitance,
            } => TwoPort::line(*resistance, *capacitance),
            NetworkExpr::Cascade(a, b) => a.evaluate().cascade(b.evaluate()),
            NetworkExpr::Branch(a) => a.evaluate().into_side_branch(),
        }
    }

    /// Elaborates the expression into an explicit [`RcTree`].
    ///
    /// The far end of the outermost cascade chain is marked as the tree's
    /// output, matching the "port 2" convention of [`Self::evaluate`].
    /// Primitive lines with zero resistance become lumped node capacitors;
    /// lines with zero capacitance become lumped resistors.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyTree`](crate::error::CoreError::EmptyTree)
    /// if the expression contains no non-trivial element, or
    /// [`CoreError::InvalidValue`](crate::error::CoreError::InvalidValue) if
    /// a primitive holds a negative or non-finite value.
    pub fn to_tree(&self) -> Result<RcTree> {
        let mut builder = RcTreeBuilder::new();
        let mut counter = 0_usize;
        let input = builder.input();
        let output = self.elaborate(&mut builder, input, &mut counter)?;
        builder.mark_output(output)?;
        builder.build()
    }

    fn elaborate(
        &self,
        builder: &mut RcTreeBuilder,
        attach: NodeId,
        counter: &mut usize,
    ) -> Result<NodeId> {
        match self {
            NetworkExpr::Urc {
                resistance,
                capacitance,
            } => {
                if resistance.is_zero() {
                    // Pure capacitor: attach at the current node, port 2 stays.
                    if !capacitance.is_zero() {
                        builder.add_capacitance(attach, *capacitance)?;
                    }
                    Ok(attach)
                } else if capacitance.is_zero() {
                    *counter += 1;
                    builder.add_resistor(attach, format!("n{counter}"), *resistance)
                } else {
                    *counter += 1;
                    builder.add_line(attach, format!("n{counter}"), *resistance, *capacitance)
                }
            }
            NetworkExpr::Cascade(a, b) => {
                let mid = a.elaborate(builder, attach, counter)?;
                b.elaborate(builder, mid, counter)
            }
            NetworkExpr::Branch(a) => {
                a.elaborate(builder, attach, counter)?;
                Ok(attach)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::characteristic_times;

    fn fig7_expr() -> NetworkExpr {
        NetworkExpr::resistor(Ohms::new(15.0))
            .cascade(NetworkExpr::capacitor(Farads::new(2.0)))
            .cascade(
                NetworkExpr::resistor(Ohms::new(8.0))
                    .cascade(NetworkExpr::capacitor(Farads::new(7.0)))
                    .side_branch(),
            )
            .cascade(NetworkExpr::line(Ohms::new(3.0), Farads::new(4.0)))
            .cascade(NetworkExpr::capacitor(Farads::new(9.0)))
    }

    #[test]
    fn primitive_count_counts_urcs() {
        assert_eq!(fig7_expr().primitive_count(), 6);
        assert_eq!(NetworkExpr::resistor(Ohms::new(1.0)).primitive_count(), 1);
    }

    #[test]
    fn evaluate_and_tree_agree_on_figure7() {
        let expr = fig7_expr();
        let state = expr.evaluate();
        let tree = expr.to_tree().unwrap();
        let output = tree.outputs().next().expect("one output");
        let t_tree = characteristic_times(&tree, output).unwrap();
        let t_expr = state.characteristic_times().unwrap();
        assert!((t_tree.t_p.value() - t_expr.t_p.value()).abs() < 1e-9);
        assert!((t_tree.t_d.value() - t_expr.t_d.value()).abs() < 1e-9);
        assert!((t_tree.t_r.value() - t_expr.t_r.value()).abs() < 1e-9);
        assert_eq!(t_tree.r_ee, t_expr.r_ee);
        assert_eq!(tree.total_capacitance(), state.total_cap());
    }

    #[test]
    fn evaluate_and_tree_agree_on_deep_chain_with_branches() {
        // A longer synthetic expression exercising nested branches.
        let mut expr = NetworkExpr::resistor(Ohms::new(10.0));
        for i in 1..=20 {
            let seg = NetworkExpr::line(Ohms::new(1.0 + i as f64), Farads::new(0.5));
            let side = NetworkExpr::resistor(Ohms::new(2.0 * i as f64))
                .cascade(NetworkExpr::capacitor(Farads::new(0.3)))
                .side_branch();
            expr = expr.cascade(seg).cascade(side);
        }
        expr = expr.cascade(NetworkExpr::capacitor(Farads::new(1.0)));

        let state = expr.evaluate();
        let tree = expr.to_tree().unwrap();
        let output = tree.outputs().next().unwrap();
        let t_tree = characteristic_times(&tree, output).unwrap();
        let t_expr = state.characteristic_times().unwrap();
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-30);
        assert!(rel(t_tree.t_p.value(), t_expr.t_p.value()) < 1e-12);
        assert!(rel(t_tree.t_d.value(), t_expr.t_d.value()) < 1e-12);
        assert!(rel(t_tree.t_r.value(), t_expr.t_r.value()) < 1e-12);
    }

    #[test]
    fn branch_keeps_port_at_attachment_point() {
        // input --R-- a, with a side branch hanging off `a`; output is `a`.
        let expr = NetworkExpr::resistor(Ohms::new(5.0))
            .cascade(
                NetworkExpr::resistor(Ohms::new(100.0))
                    .cascade(NetworkExpr::capacitor(Farads::new(1.0)))
                    .side_branch(),
            )
            .cascade(NetworkExpr::capacitor(Farads::new(2.0)));
        let tree = expr.to_tree().unwrap();
        let output = tree.outputs().next().unwrap();
        assert_eq!(tree.resistance_from_input(output).unwrap(), Ohms::new(5.0));
        // 3 nodes: input, a, side; the two capacitors are lumped on nodes.
        assert_eq!(tree.node_count(), 3);
    }

    #[test]
    fn capacitor_only_expression_builds() {
        let expr = NetworkExpr::capacitor(Farads::new(1.0));
        let tree = expr.to_tree().unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.total_capacitance(), Farads::new(1.0));
    }

    #[test]
    fn zero_element_is_noop_in_tree() {
        let expr = NetworkExpr::line(Ohms::ZERO, Farads::ZERO)
            .cascade(NetworkExpr::capacitor(Farads::new(1.0)));
        let tree = expr.to_tree().unwrap();
        assert_eq!(tree.node_count(), 1);
    }
}
