//! The RC tree data model.
//!
//! An *RC tree* (paper, Section II) is a resistor tree with no resistor to
//! ground, in which every node may carry a grounded capacitor and any
//! resistor may be replaced by a uniform distributed RC line.  The tree has a
//! single input (the root, where the step excitation is applied) and any
//! number of outputs, which may be taken at any node.  The defining property
//! exploited by the whole theory is that there is a **unique path** from any
//! point of the tree to the input.
//!
//! [`RcTree`] is an immutable, validated structure produced by
//! [`RcTreeBuilder`](crate::builder::RcTreeBuilder).

use std::fmt;

use crate::element::Branch;
use crate::error::{CoreError, Result};
use crate::units::{Farads, Ohms};

/// Identifier of a node within one [`RcTree`].
///
/// Node ids are indices into the tree's node table; id 0 is always the input
/// node.  Ids are only meaningful for the tree that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The input (root) node of every tree.
    pub const INPUT: NodeId = NodeId(0);

    /// Returns the underlying index of this node id.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Flattened traversal arrays derived from the node table, built once by
/// [`RcTree::from_nodes`] and shared by every whole-tree algorithm.
///
/// Everything here is redundant with `nodes` — it is a cache, indexed by
/// [`NodeId::index`], that turns the hot traversal loops of
/// [`crate::batch`], [`crate::elmore`] and [`crate::moments`] into
/// allocation-free array walks instead of `Result`-returning accessor calls
/// that rebuild `preorder()` / `path_from_input()` vectors per query.
#[derive(Debug, Clone, Default)]
pub(crate) struct TraversalCache {
    /// Node indices in depth-first pre-order (children in insertion order);
    /// entry 0 is always the input.  Iterating it in reverse gives a valid
    /// post-order (children before parents).
    pub(crate) preorder: Vec<u32>,
    /// Parent index per node; the input maps to itself.
    pub(crate) parent: Vec<u32>,
    /// Series resistance of the branch `parent → node` (0 for the input).
    pub(crate) branch_r: Vec<f64>,
    /// Distributed capacitance of the branch `parent → node` (0 for the
    /// input and for lumped resistors).
    pub(crate) branch_c: Vec<f64>,
    /// Lumped grounded capacitance at the node.
    pub(crate) node_cap: Vec<f64>,
    /// Prefix path resistance input → node (`R_kk` of Section III).
    pub(crate) path_r: Vec<f64>,
    /// Capacitance in the subtree rooted at the node: its lumped capacitor,
    /// all descendant capacitors, and the full distributed capacitance of
    /// every branch *below* the node (not the branch feeding it).
    pub(crate) down_cap: Vec<f64>,
    /// Position of each node in `preorder` (the inverse permutation).
    pub(crate) pre_index: Vec<u32>,
    /// Exclusive end of each node's subtree interval in `preorder`: the
    /// subtree rooted at node `i` occupies
    /// `preorder[pre_index[i] .. subtree_end[i]]`.  This is the
    /// subtree-extent index shared by the one-shot batch engine and the
    /// incremental delta engine ([`crate::incremental`]): "the whole subtree
    /// under a node" is always one contiguous slice.
    pub(crate) subtree_end: Vec<u32>,
}

impl TraversalCache {
    fn build(nodes: &[NodeData]) -> Self {
        let n = nodes.len();
        let mut preorder = Vec::with_capacity(n);
        let mut stack = vec![0u32];
        while let Some(i) = stack.pop() {
            preorder.push(i);
            for &child in nodes[i as usize].children.iter().rev() {
                stack.push(child.0 as u32);
            }
        }

        let mut parent = vec![0u32; n];
        let mut branch_r = vec![0.0; n];
        let mut branch_c = vec![0.0; n];
        let mut node_cap = vec![0.0; n];
        let mut path_r = vec![0.0; n];
        for (i, data) in nodes.iter().enumerate() {
            node_cap[i] = data.cap.value();
            if let Some(p) = data.parent {
                parent[i] = p.0 as u32;
            }
            if let Some(branch) = &data.branch {
                branch_r[i] = branch.resistance().value();
                branch_c[i] = branch.capacitance().value();
            }
        }
        for &i in &preorder[1..] {
            let i = i as usize;
            path_r[i] = path_r[parent[i] as usize] + branch_r[i];
        }

        let mut down_cap = node_cap.clone();
        for &i in preorder[1..].iter().rev() {
            let i = i as usize;
            down_cap[parent[i] as usize] += down_cap[i] + branch_c[i];
        }

        let mut cache = TraversalCache {
            preorder,
            parent,
            branch_r,
            branch_c,
            node_cap,
            path_r,
            down_cap,
            pre_index: Vec::new(),
            subtree_end: Vec::new(),
        };
        cache.rebuild_intervals();
        cache
    }

    /// Recomputes `pre_index` and `subtree_end` from `preorder` and
    /// `parent` in `O(n)`.  Called at build time and after every structural
    /// patch (graft/prune) of the incremental engine.
    pub(crate) fn rebuild_intervals(&mut self) {
        let n = self.preorder.len();
        self.pre_index.resize(n, 0);
        self.subtree_end.resize(n, 0);
        for (pos, &i) in self.preorder.iter().enumerate() {
            self.pre_index[i as usize] = pos as u32;
        }
        for (i, end) in self.subtree_end.iter_mut().enumerate() {
            *end = self.pre_index[i] + 1;
        }
        for &i in self.preorder[1..].iter().rev() {
            let i = i as usize;
            let p = self.parent[i] as usize;
            if self.subtree_end[i] > self.subtree_end[p] {
                self.subtree_end[p] = self.subtree_end[i];
            }
        }
    }

    /// The half-open `preorder` interval occupied by the subtree rooted at
    /// node index `i`.
    pub(crate) fn interval(&self, i: usize) -> (usize, usize) {
        (self.pre_index[i] as usize, self.subtree_end[i] as usize)
    }
}

/// Per-node payload stored by [`RcTree`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub(crate) struct NodeData {
    /// Human-readable name, unique within the tree.
    pub(crate) name: String,
    /// Parent node; `None` only for the input node.
    pub(crate) parent: Option<NodeId>,
    /// Branch element connecting this node to its parent; `None` only for
    /// the input node.
    pub(crate) branch: Option<Branch>,
    /// Lumped grounded capacitance attached at this node.
    pub(crate) cap: Farads,
    /// Children in insertion order.
    pub(crate) children: Vec<NodeId>,
    /// Whether this node is marked as an output of interest.
    pub(crate) output: bool,
}

/// A validated RC tree network.
///
/// Construct one with [`RcTreeBuilder`](crate::builder::RcTreeBuilder):
///
/// ```
/// use rctree_core::builder::RcTreeBuilder;
/// use rctree_core::units::{Ohms, Farads};
///
/// # fn main() -> rctree_core::error::Result<()> {
/// let mut b = RcTreeBuilder::new();
/// let a = b.add_resistor(b.input(), "a", Ohms::new(100.0))?;
/// b.add_capacitance(a, Farads::new(1e-12))?;
/// b.mark_output(a)?;
/// let tree = b.build()?;
/// assert_eq!(tree.node_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RcTree {
    pub(crate) nodes: Vec<NodeData>,
    /// Flattened traversal arrays derived from `nodes`; rebuilt on
    /// construction, excluded from equality (it is a pure function of the
    /// node table).
    ///
    /// NOTE for restoring the (currently placeholder) `serde` feature: a
    /// plain derived `Deserialize` would leave this cache empty — the impl
    /// must route through [`RcTree::from_nodes`] so the cache is rebuilt.
    #[cfg_attr(feature = "serde", serde(skip))]
    pub(crate) cache: TraversalCache,
}

impl PartialEq for RcTree {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes
    }
}

impl RcTree {
    /// Builds a tree from a validated node table, deriving the traversal
    /// cache (the only construction path; used by
    /// [`RcTreeBuilder`](crate::builder::RcTreeBuilder)).
    pub(crate) fn from_nodes(nodes: Vec<NodeData>) -> Self {
        let cache = TraversalCache::build(&nodes);
        RcTree { nodes, cache }
    }

    /// The flattened traversal arrays shared by the whole-tree algorithms.
    pub(crate) fn traversal(&self) -> &TraversalCache {
        &self.cache
    }

    /// Rebuilds every piece of derived state (the traversal cache) from the
    /// node table, from scratch.
    ///
    /// The returned tree is structurally identical to `self`
    /// (`rebuilt == *self` under [`PartialEq`], which compares node tables
    /// only) but carries freshly recomputed prefix sums.  This is the
    /// rebuild-and-rerun oracle against which the incremental engine
    /// ([`crate::incremental`]) is validated and benchmarked.
    pub fn rebuild(&self) -> RcTree {
        RcTree::from_nodes(self.nodes.clone())
    }

    /// The input (root) node where the step excitation is applied.
    pub fn input(&self) -> NodeId {
        NodeId::INPUT
    }

    /// Number of nodes in the tree, including the input.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of branches (elements) in the tree.
    pub fn branch_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Iterator over all node ids, input first, in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterator over the node ids marked as outputs.
    pub fn outputs(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.output)
            .map(|(i, _)| NodeId(i))
    }

    /// Returns the name of a node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn name(&self, node: NodeId) -> Result<&str> {
        Ok(&self.data(node)?.name)
    }

    /// Looks up a node by name.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NameNotFound`] if no node has the given name.
    pub fn node_by_name(&self, name: &str) -> Result<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(NodeId)
            .ok_or_else(|| CoreError::NameNotFound {
                name: name.to_string(),
            })
    }

    /// Returns the parent of a node, or `None` for the input node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn parent(&self, node: NodeId) -> Result<Option<NodeId>> {
        Ok(self.data(node)?.parent)
    }

    /// Returns the branch element connecting a node to its parent, or `None`
    /// for the input node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn branch(&self, node: NodeId) -> Result<Option<Branch>> {
        Ok(self.data(node)?.branch)
    }

    /// Returns the lumped grounded capacitance attached at a node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn capacitance(&self, node: NodeId) -> Result<Farads> {
        Ok(self.data(node)?.cap)
    }

    /// Returns the children of a node in insertion order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn children(&self, node: NodeId) -> Result<&[NodeId]> {
        Ok(&self.data(node)?.children)
    }

    /// Returns `true` if the node is marked as an output.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn is_output(&self, node: NodeId) -> Result<bool> {
        Ok(self.data(node)?.output)
    }

    /// Total capacitance of the network: all lumped node capacitors plus the
    /// distributed capacitance of every line (the quantity `C_T` of
    /// Section IV).
    pub fn total_capacitance(&self) -> Farads {
        let lumped: Farads = self.nodes.iter().map(|n| n.cap).sum();
        let distributed: Farads = self
            .nodes
            .iter()
            .filter_map(|n| n.branch.as_ref())
            .map(|b| b.capacitance())
            .sum();
        lumped + distributed
    }

    /// Total series resistance of all branches in the tree.
    pub fn total_resistance(&self) -> Ohms {
        self.nodes
            .iter()
            .filter_map(|n| n.branch.as_ref())
            .map(|b| b.resistance())
            .sum()
    }

    /// The unique path from the input to `node`, inclusive of both ends.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn path_from_input(&self, node: NodeId) -> Result<Vec<NodeId>> {
        self.check(node)?;
        let mut path = Vec::new();
        let mut cur = Some(node);
        while let Some(id) = cur {
            path.push(id);
            cur = self.nodes[id.0].parent;
        }
        path.reverse();
        Ok(path)
    }

    /// Resistance of the unique path between the input and `node`
    /// (the quantity `R_kk` of Section III for `k = node`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn resistance_from_input(&self, node: NodeId) -> Result<Ohms> {
        self.check(node)?;
        Ok(Ohms::new(self.cache.path_r[node.0]))
    }

    /// Depth of a node (number of branches between it and the input).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn depth(&self, node: NodeId) -> Result<usize> {
        Ok(self.path_from_input(node)?.len() - 1)
    }

    /// Returns the node ids in depth-first pre-order starting at the input.
    pub fn preorder(&self) -> Vec<NodeId> {
        self.cache
            .preorder
            .iter()
            .map(|&i| NodeId(i as usize))
            .collect()
    }

    /// Returns the node ids in depth-first post-order (children before
    /// parents), ending at the input.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut order = self.preorder();
        order.reverse();
        order
    }

    /// Lowest common ancestor of two nodes — the node at which the unique
    /// paths from the input to `a` and to `b` diverge.
    ///
    /// The resistance of the common path, `R_ab` in the paper's notation, is
    /// exactly `resistance_from_input(lca(a, b))`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if either node does not belong to
    /// this tree.
    pub fn lowest_common_ancestor(&self, a: NodeId, b: NodeId) -> Result<NodeId> {
        let pa = self.path_from_input(a)?;
        let pb = self.path_from_input(b)?;
        let mut lca = NodeId::INPUT;
        for (x, y) in pa.iter().zip(pb.iter()) {
            if x == y {
                lca = *x;
            } else {
                break;
            }
        }
        Ok(lca)
    }

    /// Returns `true` if `descendant` lies in the subtree rooted at
    /// `ancestor` (a node is its own descendant).
    ///
    /// `O(1)` via the cached pre-order subtree intervals: `descendant` is in
    /// the subtree of `ancestor` exactly when its pre-order position falls
    /// inside `ancestor`'s interval.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if either node does not belong to
    /// this tree.
    pub fn is_descendant(&self, descendant: NodeId, ancestor: NodeId) -> Result<bool> {
        self.check(ancestor)?;
        self.check(descendant)?;
        let (start, end) = self.cache.interval(ancestor.0);
        let pos = self.cache.pre_index[descendant.0] as usize;
        Ok(start <= pos && pos < end)
    }

    /// Number of nodes in the subtree rooted at `node`, including `node`
    /// itself (`O(1)` via the cached pre-order subtree intervals).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn subtree_size(&self, node: NodeId) -> Result<usize> {
        self.check(node)?;
        let (start, end) = self.cache.interval(node.0);
        Ok(end - start)
    }

    /// Total capacitance in the subtree rooted at `node` (its own lumped
    /// capacitance, the full distributed capacitance of branches *below* it,
    /// and all descendant node capacitances).  The branch connecting `node`
    /// to its parent is **not** included.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn subtree_capacitance(&self, node: NodeId) -> Result<Farads> {
        self.check(node)?;
        Ok(Farads::new(self.cache.down_cap[node.0]))
    }

    pub(crate) fn data(&self, node: NodeId) -> Result<&NodeData> {
        self.nodes
            .get(node.0)
            .ok_or(CoreError::NodeNotFound { node })
    }

    pub(crate) fn check(&self, node: NodeId) -> Result<()> {
        if node.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(CoreError::NodeNotFound { node })
        }
    }
}

impl fmt::Display for RcTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "RcTree: {} nodes, {} branches, C_total = {}",
            self.node_count(),
            self.branch_count(),
            self.total_capacitance()
        )?;
        for id in self.preorder() {
            let n = &self.nodes[id.0];
            let indent = self.path_from_input(id).map(|p| p.len() - 1).unwrap_or(0);
            write!(f, "{:indent$}{} ({})", "", n.name, id, indent = indent * 2)?;
            if let Some(branch) = &n.branch {
                match branch {
                    Branch::Resistor { resistance } => write!(f, " -- R {resistance}")?,
                    Branch::Line {
                        resistance,
                        capacitance,
                    } => write!(f, " -- URC {resistance}, {capacitance}")?,
                }
            }
            if !n.cap.is_zero() {
                write!(f, " [C {}]", n.cap)?;
            }
            if n.output {
                write!(f, " <output>")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::RcTreeBuilder;
    use crate::units::{Farads, Ohms};

    use super::*;

    /// The network of Figure 3: R1–R2 to the branching node, then R5 to the
    /// output e and R3–R4 to node k.
    fn fig3() -> (RcTree, NodeId, NodeId) {
        let mut b = RcTreeBuilder::new();
        let n1 = b
            .add_resistor(b.input(), "after_r1", Ohms::new(1.0))
            .unwrap();
        let n2 = b.add_resistor(n1, "after_r2", Ohms::new(2.0)).unwrap();
        let n3 = b.add_resistor(n2, "after_r3", Ohms::new(3.0)).unwrap();
        let k = b.add_resistor(n3, "k", Ohms::new(4.0)).unwrap();
        let e = b.add_resistor(n2, "e", Ohms::new(5.0)).unwrap();
        b.add_capacitance(k, Farads::new(1.0)).unwrap();
        b.add_capacitance(e, Farads::new(1.0)).unwrap();
        b.mark_output(e).unwrap();
        (b.build().unwrap(), k, e)
    }

    #[test]
    fn figure3_path_resistances() {
        let (tree, k, e) = fig3();
        // R_kk = R1 + R2 + R3 + R4 ... careful: the paper's Figure 3 node k is
        // after R3 only; here we check the general machinery instead.
        assert_eq!(tree.resistance_from_input(e).unwrap(), Ohms::new(8.0));
        assert_eq!(tree.resistance_from_input(k).unwrap(), Ohms::new(10.0));
        let lca = tree.lowest_common_ancestor(k, e).unwrap();
        assert_eq!(tree.resistance_from_input(lca).unwrap(), Ohms::new(3.0));
    }

    #[test]
    fn lca_with_self_and_root() {
        let (tree, k, e) = fig3();
        assert_eq!(tree.lowest_common_ancestor(e, e).unwrap(), e);
        assert_eq!(
            tree.lowest_common_ancestor(tree.input(), k).unwrap(),
            tree.input()
        );
    }

    #[test]
    fn descendant_relationships() {
        let (tree, k, e) = fig3();
        assert!(tree.is_descendant(k, tree.input()).unwrap());
        assert!(tree.is_descendant(e, e).unwrap());
        assert!(!tree.is_descendant(e, k).unwrap());
    }

    #[test]
    fn totals_and_counts() {
        let (tree, _, _) = fig3();
        assert_eq!(tree.node_count(), 6);
        assert_eq!(tree.branch_count(), 5);
        assert_eq!(tree.total_capacitance(), Farads::new(2.0));
        assert_eq!(tree.total_resistance(), Ohms::new(15.0));
    }

    #[test]
    fn outputs_iterator() {
        let (tree, _, e) = fig3();
        let outs: Vec<_> = tree.outputs().collect();
        assert_eq!(outs, vec![e]);
        assert!(tree.is_output(e).unwrap());
    }

    #[test]
    fn preorder_visits_every_node_once() {
        let (tree, _, _) = fig3();
        let order = tree.preorder();
        assert_eq!(order.len(), tree.node_count());
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), tree.node_count());
        assert_eq!(order[0], tree.input());
    }

    #[test]
    fn postorder_ends_at_input() {
        let (tree, _, _) = fig3();
        let order = tree.postorder();
        assert_eq!(*order.last().unwrap(), tree.input());
    }

    #[test]
    fn subtree_capacitance_counts_descendants() {
        let (tree, k, e) = fig3();
        assert_eq!(tree.subtree_capacitance(k).unwrap(), Farads::new(1.0));
        assert_eq!(tree.subtree_capacitance(e).unwrap(), Farads::new(1.0));
        assert_eq!(
            tree.subtree_capacitance(tree.input()).unwrap(),
            Farads::new(2.0)
        );
    }

    #[test]
    fn name_lookup_round_trips() {
        let (tree, k, _) = fig3();
        assert_eq!(tree.node_by_name("k").unwrap(), k);
        assert_eq!(tree.name(k).unwrap(), "k");
        assert!(matches!(
            tree.node_by_name("nope"),
            Err(CoreError::NameNotFound { .. })
        ));
    }

    #[test]
    fn unknown_node_is_rejected() {
        let (tree, _, _) = fig3();
        let bogus = NodeId(999);
        assert!(matches!(
            tree.capacitance(bogus),
            Err(CoreError::NodeNotFound { .. })
        ));
        assert!(matches!(
            tree.path_from_input(bogus),
            Err(CoreError::NodeNotFound { .. })
        ));
    }

    #[test]
    fn display_renders_structure() {
        let (tree, _, _) = fig3();
        let text = tree.to_string();
        assert!(text.contains("RcTree"));
        assert!(text.contains("<output>"));
        assert!(text.contains("after_r1"));
    }

    #[test]
    fn cached_subtree_capacitance_matches_explicit_walk() {
        // The cached post-order accumulation must agree with a naive
        // stack-based walk over the node table.
        let (tree, _, _) = fig3();
        for id in tree.node_ids() {
            let mut total = Farads::ZERO;
            let mut stack = vec![id];
            while let Some(cur) = stack.pop() {
                total += tree.capacitance(cur).unwrap();
                for &child in tree.children(cur).unwrap() {
                    if let Some(branch) = tree.branch(child).unwrap() {
                        total += branch.capacitance();
                    }
                    stack.push(child);
                }
            }
            assert_eq!(tree.subtree_capacitance(id).unwrap(), total);
        }
    }

    #[test]
    fn cached_path_resistance_matches_explicit_walk() {
        let (tree, _, _) = fig3();
        for id in tree.node_ids() {
            let mut total = Ohms::ZERO;
            let mut cur = id;
            while let Some(parent) = tree.parent(cur).unwrap() {
                if let Some(branch) = tree.branch(cur).unwrap() {
                    total += branch.resistance();
                }
                cur = parent;
            }
            assert_eq!(tree.resistance_from_input(id).unwrap(), total);
        }
    }

    #[test]
    fn equality_ignores_the_derived_cache() {
        let (a, _, _) = fig3();
        let b = a.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn rebuild_reproduces_the_tree_and_its_cache() {
        let (tree, k, e) = fig3();
        let rebuilt = tree.rebuild();
        assert_eq!(rebuilt, tree);
        assert_eq!(rebuilt.preorder(), tree.preorder());
        assert_eq!(
            rebuilt.resistance_from_input(k).unwrap(),
            tree.resistance_from_input(k).unwrap()
        );
        assert_eq!(
            rebuilt.subtree_capacitance(e).unwrap(),
            tree.subtree_capacitance(e).unwrap()
        );
    }

    #[test]
    fn subtree_intervals_agree_with_parent_walks() {
        let (tree, _, _) = fig3();
        // Interval-based descendant test must agree with a naive parent walk
        // for every node pair.
        for a in tree.node_ids() {
            for d in tree.node_ids() {
                let mut walk = false;
                let mut cur = Some(d);
                while let Some(id) = cur {
                    if id == a {
                        walk = true;
                        break;
                    }
                    cur = tree.parent(id).unwrap();
                }
                assert_eq!(tree.is_descendant(d, a).unwrap(), walk, "{d} under {a}");
            }
            // Subtree size equals the number of interval-descendants.
            let count = tree
                .node_ids()
                .filter(|&d| tree.is_descendant(d, a).unwrap())
                .count();
            assert_eq!(tree.subtree_size(a).unwrap(), count);
        }
        assert_eq!(tree.subtree_size(tree.input()).unwrap(), tree.node_count());
        assert!(matches!(
            tree.subtree_size(NodeId(999)),
            Err(CoreError::NodeNotFound { .. })
        ));
    }
}
