//! The RC tree data model.
//!
//! An *RC tree* (paper, Section II) is a resistor tree with no resistor to
//! ground, in which every node may carry a grounded capacitor and any
//! resistor may be replaced by a uniform distributed RC line.  The tree has a
//! single input (the root, where the step excitation is applied) and any
//! number of outputs, which may be taken at any node.  The defining property
//! exploited by the whole theory is that there is a **unique path** from any
//! point of the tree to the input.
//!
//! [`RcTree`] is an immutable, validated structure produced by
//! [`RcTreeBuilder`](crate::builder::RcTreeBuilder).

use std::fmt;

use crate::element::Branch;
use crate::error::{CoreError, Result};
use crate::units::{Farads, Ohms};

/// Identifier of a node within one [`RcTree`].
///
/// Node ids are indices into the tree's node table; id 0 is always the input
/// node.  Ids are only meaningful for the tree that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The input (root) node of every tree.
    pub const INPUT: NodeId = NodeId(0);

    /// Returns the underlying index of this node id.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Per-node payload stored by [`RcTree`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub(crate) struct NodeData {
    /// Human-readable name, unique within the tree.
    pub(crate) name: String,
    /// Parent node; `None` only for the input node.
    pub(crate) parent: Option<NodeId>,
    /// Branch element connecting this node to its parent; `None` only for
    /// the input node.
    pub(crate) branch: Option<Branch>,
    /// Lumped grounded capacitance attached at this node.
    pub(crate) cap: Farads,
    /// Children in insertion order.
    pub(crate) children: Vec<NodeId>,
    /// Whether this node is marked as an output of interest.
    pub(crate) output: bool,
}

/// A validated RC tree network.
///
/// Construct one with [`RcTreeBuilder`](crate::builder::RcTreeBuilder):
///
/// ```
/// use rctree_core::builder::RcTreeBuilder;
/// use rctree_core::units::{Ohms, Farads};
///
/// # fn main() -> rctree_core::error::Result<()> {
/// let mut b = RcTreeBuilder::new();
/// let a = b.add_resistor(b.input(), "a", Ohms::new(100.0))?;
/// b.add_capacitance(a, Farads::new(1e-12))?;
/// b.mark_output(a)?;
/// let tree = b.build()?;
/// assert_eq!(tree.node_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RcTree {
    pub(crate) nodes: Vec<NodeData>,
}

impl RcTree {
    /// The input (root) node where the step excitation is applied.
    pub fn input(&self) -> NodeId {
        NodeId::INPUT
    }

    /// Number of nodes in the tree, including the input.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of branches (elements) in the tree.
    pub fn branch_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Iterator over all node ids, input first, in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterator over the node ids marked as outputs.
    pub fn outputs(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.output)
            .map(|(i, _)| NodeId(i))
    }

    /// Returns the name of a node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn name(&self, node: NodeId) -> Result<&str> {
        Ok(&self.data(node)?.name)
    }

    /// Looks up a node by name.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NameNotFound`] if no node has the given name.
    pub fn node_by_name(&self, name: &str) -> Result<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(NodeId)
            .ok_or_else(|| CoreError::NameNotFound {
                name: name.to_string(),
            })
    }

    /// Returns the parent of a node, or `None` for the input node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn parent(&self, node: NodeId) -> Result<Option<NodeId>> {
        Ok(self.data(node)?.parent)
    }

    /// Returns the branch element connecting a node to its parent, or `None`
    /// for the input node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn branch(&self, node: NodeId) -> Result<Option<Branch>> {
        Ok(self.data(node)?.branch)
    }

    /// Returns the lumped grounded capacitance attached at a node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn capacitance(&self, node: NodeId) -> Result<Farads> {
        Ok(self.data(node)?.cap)
    }

    /// Returns the children of a node in insertion order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn children(&self, node: NodeId) -> Result<&[NodeId]> {
        Ok(&self.data(node)?.children)
    }

    /// Returns `true` if the node is marked as an output.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn is_output(&self, node: NodeId) -> Result<bool> {
        Ok(self.data(node)?.output)
    }

    /// Total capacitance of the network: all lumped node capacitors plus the
    /// distributed capacitance of every line (the quantity `C_T` of
    /// Section IV).
    pub fn total_capacitance(&self) -> Farads {
        let lumped: Farads = self.nodes.iter().map(|n| n.cap).sum();
        let distributed: Farads = self
            .nodes
            .iter()
            .filter_map(|n| n.branch.as_ref())
            .map(|b| b.capacitance())
            .sum();
        lumped + distributed
    }

    /// Total series resistance of all branches in the tree.
    pub fn total_resistance(&self) -> Ohms {
        self.nodes
            .iter()
            .filter_map(|n| n.branch.as_ref())
            .map(|b| b.resistance())
            .sum()
    }

    /// The unique path from the input to `node`, inclusive of both ends.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn path_from_input(&self, node: NodeId) -> Result<Vec<NodeId>> {
        self.check(node)?;
        let mut path = Vec::new();
        let mut cur = Some(node);
        while let Some(id) = cur {
            path.push(id);
            cur = self.nodes[id.0].parent;
        }
        path.reverse();
        Ok(path)
    }

    /// Resistance of the unique path between the input and `node`
    /// (the quantity `R_kk` of Section III for `k = node`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn resistance_from_input(&self, node: NodeId) -> Result<Ohms> {
        self.check(node)?;
        let mut total = Ohms::ZERO;
        let mut cur = node;
        while let Some(parent) = self.nodes[cur.0].parent {
            if let Some(branch) = &self.nodes[cur.0].branch {
                total += branch.resistance();
            }
            cur = parent;
        }
        Ok(total)
    }

    /// Depth of a node (number of branches between it and the input).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn depth(&self, node: NodeId) -> Result<usize> {
        Ok(self.path_from_input(node)?.len() - 1)
    }

    /// Returns the node ids in depth-first pre-order starting at the input.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![NodeId::INPUT];
        while let Some(id) = stack.pop() {
            order.push(id);
            // Push children in reverse so they pop in insertion order.
            for &child in self.nodes[id.0].children.iter().rev() {
                stack.push(child);
            }
        }
        order
    }

    /// Returns the node ids in depth-first post-order (children before
    /// parents), ending at the input.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut order = self.preorder();
        order.reverse();
        order
    }

    /// Lowest common ancestor of two nodes — the node at which the unique
    /// paths from the input to `a` and to `b` diverge.
    ///
    /// The resistance of the common path, `R_ab` in the paper's notation, is
    /// exactly `resistance_from_input(lca(a, b))`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if either node does not belong to
    /// this tree.
    pub fn lowest_common_ancestor(&self, a: NodeId, b: NodeId) -> Result<NodeId> {
        let pa = self.path_from_input(a)?;
        let pb = self.path_from_input(b)?;
        let mut lca = NodeId::INPUT;
        for (x, y) in pa.iter().zip(pb.iter()) {
            if x == y {
                lca = *x;
            } else {
                break;
            }
        }
        Ok(lca)
    }

    /// Returns `true` if `descendant` lies in the subtree rooted at
    /// `ancestor` (a node is its own descendant).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if either node does not belong to
    /// this tree.
    pub fn is_descendant(&self, descendant: NodeId, ancestor: NodeId) -> Result<bool> {
        self.check(ancestor)?;
        self.check(descendant)?;
        let mut cur = Some(descendant);
        while let Some(id) = cur {
            if id == ancestor {
                return Ok(true);
            }
            cur = self.nodes[id.0].parent;
        }
        Ok(false)
    }

    /// Total capacitance in the subtree rooted at `node` (its own lumped
    /// capacitance, the full distributed capacitance of branches *below* it,
    /// and all descendant node capacitances).  The branch connecting `node`
    /// to its parent is **not** included.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NodeNotFound`] if `node` does not belong to this
    /// tree.
    pub fn subtree_capacitance(&self, node: NodeId) -> Result<Farads> {
        self.check(node)?;
        let mut total = Farads::ZERO;
        let mut stack = vec![node];
        while let Some(id) = stack.pop() {
            total += self.nodes[id.0].cap;
            for &child in &self.nodes[id.0].children {
                if let Some(branch) = &self.nodes[child.0].branch {
                    total += branch.capacitance();
                }
                stack.push(child);
            }
        }
        Ok(total)
    }

    /// Capacitance "hanging below" every branch: for each non-input node `n`
    /// the returned vector holds, at index `n`, the capacitance downstream of
    /// the branch `parent(n) → n` **including half... no — including the
    /// branch's own distributed capacitance in full**, which is the quantity
    /// multiplied by the branch resistance in the Elmore/`T_P` sums only when
    /// the distributed correction terms are added separately.
    ///
    /// This is an internal helper shared by the moment computations; see
    /// [`crate::moments`].
    pub(crate) fn downstream_capacitance(&self) -> Vec<Farads> {
        let mut down = vec![Farads::ZERO; self.nodes.len()];
        for id in self.postorder() {
            let mut total = self.nodes[id.0].cap;
            for &child in &self.nodes[id.0].children {
                total += down[child.0];
                if let Some(branch) = &self.nodes[child.0].branch {
                    total += branch.capacitance();
                }
            }
            down[id.0] = total;
        }
        down
    }

    pub(crate) fn data(&self, node: NodeId) -> Result<&NodeData> {
        self.nodes
            .get(node.0)
            .ok_or(CoreError::NodeNotFound { node })
    }

    pub(crate) fn check(&self, node: NodeId) -> Result<()> {
        if node.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(CoreError::NodeNotFound { node })
        }
    }
}

impl fmt::Display for RcTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "RcTree: {} nodes, {} branches, C_total = {}",
            self.node_count(),
            self.branch_count(),
            self.total_capacitance()
        )?;
        for id in self.preorder() {
            let n = &self.nodes[id.0];
            let indent = self.path_from_input(id).map(|p| p.len() - 1).unwrap_or(0);
            write!(f, "{:indent$}{} ({})", "", n.name, id, indent = indent * 2)?;
            if let Some(branch) = &n.branch {
                match branch {
                    Branch::Resistor { resistance } => write!(f, " -- R {resistance}")?,
                    Branch::Line {
                        resistance,
                        capacitance,
                    } => write!(f, " -- URC {resistance}, {capacitance}")?,
                }
            }
            if !n.cap.is_zero() {
                write!(f, " [C {}]", n.cap)?;
            }
            if n.output {
                write!(f, " <output>")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::RcTreeBuilder;
    use crate::units::{Farads, Ohms};

    use super::*;

    /// The network of Figure 3: R1–R2 to the branching node, then R5 to the
    /// output e and R3–R4 to node k.
    fn fig3() -> (RcTree, NodeId, NodeId) {
        let mut b = RcTreeBuilder::new();
        let n1 = b
            .add_resistor(b.input(), "after_r1", Ohms::new(1.0))
            .unwrap();
        let n2 = b.add_resistor(n1, "after_r2", Ohms::new(2.0)).unwrap();
        let n3 = b.add_resistor(n2, "after_r3", Ohms::new(3.0)).unwrap();
        let k = b.add_resistor(n3, "k", Ohms::new(4.0)).unwrap();
        let e = b.add_resistor(n2, "e", Ohms::new(5.0)).unwrap();
        b.add_capacitance(k, Farads::new(1.0)).unwrap();
        b.add_capacitance(e, Farads::new(1.0)).unwrap();
        b.mark_output(e).unwrap();
        (b.build().unwrap(), k, e)
    }

    #[test]
    fn figure3_path_resistances() {
        let (tree, k, e) = fig3();
        // R_kk = R1 + R2 + R3 + R4 ... careful: the paper's Figure 3 node k is
        // after R3 only; here we check the general machinery instead.
        assert_eq!(tree.resistance_from_input(e).unwrap(), Ohms::new(8.0));
        assert_eq!(tree.resistance_from_input(k).unwrap(), Ohms::new(10.0));
        let lca = tree.lowest_common_ancestor(k, e).unwrap();
        assert_eq!(tree.resistance_from_input(lca).unwrap(), Ohms::new(3.0));
    }

    #[test]
    fn lca_with_self_and_root() {
        let (tree, k, e) = fig3();
        assert_eq!(tree.lowest_common_ancestor(e, e).unwrap(), e);
        assert_eq!(
            tree.lowest_common_ancestor(tree.input(), k).unwrap(),
            tree.input()
        );
    }

    #[test]
    fn descendant_relationships() {
        let (tree, k, e) = fig3();
        assert!(tree.is_descendant(k, tree.input()).unwrap());
        assert!(tree.is_descendant(e, e).unwrap());
        assert!(!tree.is_descendant(e, k).unwrap());
    }

    #[test]
    fn totals_and_counts() {
        let (tree, _, _) = fig3();
        assert_eq!(tree.node_count(), 6);
        assert_eq!(tree.branch_count(), 5);
        assert_eq!(tree.total_capacitance(), Farads::new(2.0));
        assert_eq!(tree.total_resistance(), Ohms::new(15.0));
    }

    #[test]
    fn outputs_iterator() {
        let (tree, _, e) = fig3();
        let outs: Vec<_> = tree.outputs().collect();
        assert_eq!(outs, vec![e]);
        assert!(tree.is_output(e).unwrap());
    }

    #[test]
    fn preorder_visits_every_node_once() {
        let (tree, _, _) = fig3();
        let order = tree.preorder();
        assert_eq!(order.len(), tree.node_count());
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), tree.node_count());
        assert_eq!(order[0], tree.input());
    }

    #[test]
    fn postorder_ends_at_input() {
        let (tree, _, _) = fig3();
        let order = tree.postorder();
        assert_eq!(*order.last().unwrap(), tree.input());
    }

    #[test]
    fn subtree_capacitance_counts_descendants() {
        let (tree, k, e) = fig3();
        assert_eq!(tree.subtree_capacitance(k).unwrap(), Farads::new(1.0));
        assert_eq!(tree.subtree_capacitance(e).unwrap(), Farads::new(1.0));
        assert_eq!(
            tree.subtree_capacitance(tree.input()).unwrap(),
            Farads::new(2.0)
        );
    }

    #[test]
    fn name_lookup_round_trips() {
        let (tree, k, _) = fig3();
        assert_eq!(tree.node_by_name("k").unwrap(), k);
        assert_eq!(tree.name(k).unwrap(), "k");
        assert!(matches!(
            tree.node_by_name("nope"),
            Err(CoreError::NameNotFound { .. })
        ));
    }

    #[test]
    fn unknown_node_is_rejected() {
        let (tree, _, _) = fig3();
        let bogus = NodeId(999);
        assert!(matches!(
            tree.capacitance(bogus),
            Err(CoreError::NodeNotFound { .. })
        ));
        assert!(matches!(
            tree.path_from_input(bogus),
            Err(CoreError::NodeNotFound { .. })
        ));
    }

    #[test]
    fn display_renders_structure() {
        let (tree, _, _) = fig3();
        let text = tree.to_string();
        assert!(text.contains("RcTree"));
        assert!(text.contains("<output>"));
        assert!(text.contains("after_r1"));
    }

    #[test]
    fn downstream_capacitance_matches_subtree() {
        let (tree, _, _) = fig3();
        let down = tree.downstream_capacitance();
        for id in tree.node_ids() {
            assert_eq!(down[id.index()], tree.subtree_capacitance(id).unwrap());
        }
    }
}
