//! # rctree-core
//!
//! A faithful, production-quality implementation of
//! *Signal Delay in RC Tree Networks* (Paul Penfield, Jr. and Jorge
//! Rubinstein, Caltech Conference on VLSI / DAC, 1981).
//!
//! In MOS integrated circuits a driver may fan out to several gates through
//! wires whose distributed resistance and capacitance are not negligible.
//! The exact step response of such an *RC tree* has no closed form, but the
//! paper shows that three easily computed characteristic times —
//! `T_P`, `T_De` (the Elmore delay) and `T_Re` — yield tight **upper and
//! lower bounds** on the response voltage and on the delay to any threshold.
//! Those bounds can (1) bound the delay given a threshold, (2) bound the
//! voltage given a time, or (3) certify that a circuit is "fast enough".
//!
//! ## Crate layout
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`units`] | `Ohms`, `Farads`, `Seconds`, `Volts` newtypes |
//! | [`algebra`] | the delay algebra: `DelayValue` trait, `f64` scalar and `Poly2` symbolic instances |
//! | [`element`], [`tree`], [`builder`] | the RC-tree data model |
//! | [`resistance`] | path and shared resistances `R_kk`, `R_ke` |
//! | [`moments`] | the characteristic times (direct and linear algorithms) |
//! | [`batch`] | all-outputs batch engine: every node's times in `O(n)` total |
//! | [`incremental`] | mutable trees with `O(depth)` ECO delta re-analysis |
//! | [`intern`] | deck-scoped string interning: names to dense `u32` ids |
//! | [`bounds`] | the Penfield–Rubinstein voltage/delay bounds (Eqs. 8–17) |
//! | [`cert`] | the three-valued `OK` certification |
//! | [`corner`] | named PVT corners: per-element R/C/delay scale factors |
//! | [`twoport`], [`expr`] | the constructive `URC`/`WB`/`WC` algebra of Section IV |
//! | [`elmore`] | Elmore delay of every node in one traversal |
//! | [`analysis`] | whole-tree, multi-output reports |
//! | [`ramp`] | finite-slew excitation via the superposition integral |
//!
//! ## Complexity
//!
//! The per-output algorithms in [`moments`] are linear in the tree size `n`,
//! so analysing all `m` outputs of a net by looping over them costs
//! `O(n·m)`.  The [`batch`] engine computes the characteristic times of
//! every node — hence every output — in `O(n + m)` total via one post-order
//! and one pre-order traversal over a flattened array cache built at
//! [`RcTreeBuilder::build`] time; [`analysis::TreeAnalysis`],
//! [`moments::characteristic_times_all`] and the `rctree-sta` stage
//! evaluation all run on it.
//!
//! ## Quick start
//!
//! ```
//! use rctree_core::prelude::*;
//!
//! # fn main() -> rctree_core::error::Result<()> {
//! // A 1 kΩ driver charging a 100 fF load through a short wire.
//! let mut b = RcTreeBuilder::new();
//! let drv = b.add_resistor(b.input(), "driver", Ohms::new(1000.0))?;
//! let load = b.add_line(drv, "wire", Ohms::new(200.0), Farads::from_femto(20.0))?;
//! b.add_capacitance(load, Farads::from_femto(100.0))?;
//! b.mark_output(load)?;
//! let tree = b.build()?;
//!
//! let times = characteristic_times(&tree, tree.node_by_name("wire")?)?;
//! let delay = times.delay_bounds(0.5)?;
//! assert!(delay.lower <= delay.upper);
//!
//! // Certify against a 1 ns budget at the 90% threshold.
//! let verdict = times.certify(0.9, Seconds::from_nano(1.0))?;
//! assert!(verdict.is_pass());
//! # Ok(())
//! # }
//! ```
//!
//! The companion crates `rctree-sim` (exact transient/modal simulation),
//! `rctree-netlist` (SPICE/SPEF-lite ingestion), `rctree-workloads`
//! (paper workloads and generators) and `rctree-sta` (a miniature static
//! timing layer) build on this crate.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod algebra;
pub mod analysis;
pub mod batch;
pub mod bounds;
pub mod builder;
pub mod cert;
pub mod corner;
pub mod element;
pub mod elmore;
pub mod error;
pub mod expr;
pub mod incremental;
pub mod intern;
pub mod moments;
pub mod ramp;
pub mod resistance;
pub mod tree;
pub mod twoport;
pub mod units;

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::algebra::{DelayValue, Poly2, SymbolicTimes};
    pub use crate::analysis::{OutputTiming, TreeAnalysis};
    pub use crate::batch::{
        BatchScratch, BatchTimes, BatchView, LaneArrays, LaneScratch, LanesView, SymbolicScratch,
        SymbolicView,
    };
    pub use crate::bounds::{
        symbolic_delay_bounds, DelayBounds, SymbolicDelayBounds, VoltageBounds,
    };
    pub use crate::builder::RcTreeBuilder;
    pub use crate::cert::Certification;
    pub use crate::corner::{Corner, CornerSet};
    pub use crate::element::Branch;
    pub use crate::elmore::{critical_output, elmore_delay, elmore_delays};
    pub use crate::error::{CoreError, Result};
    pub use crate::expr::NetworkExpr;
    pub use crate::incremental::{EditableTree, IncrementalTimes, TreeEdit};
    pub use crate::intern::{Interner, NameId};
    pub use crate::moments::{
        characteristic_times, characteristic_times_all, characteristic_times_direct,
        CharacteristicTimes,
    };
    pub use crate::ramp::RampResponse;
    pub use crate::resistance::{path_resistance, shared_resistance, shared_resistances_to};
    pub use crate::tree::{NodeId, RcTree};
    pub use crate::twoport::TwoPort;
    pub use crate::units::{Farads, OhmSeconds, Ohms, Seconds, Volts};
}

pub use crate::algebra::{DelayValue, Poly2, SymbolicTimes};
pub use crate::analysis::TreeAnalysis;
pub use crate::batch::{
    BatchScratch, BatchTimes, BatchView, LaneArrays, LaneScratch, LanesView, SymbolicScratch,
    SymbolicView,
};
pub use crate::bounds::{symbolic_delay_bounds, DelayBounds, SymbolicDelayBounds, VoltageBounds};
pub use crate::builder::RcTreeBuilder;
pub use crate::cert::Certification;
pub use crate::corner::{Corner, CornerSet};
pub use crate::error::{CoreError, Result};
pub use crate::incremental::{EditableTree, IncrementalTimes, TreeEdit};
pub use crate::intern::{Interner, NameId};
pub use crate::moments::CharacteristicTimes;
pub use crate::tree::{NodeId, RcTree};
pub use crate::twoport::TwoPort;

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_importable() {
        #[allow(unused_imports)]
        use crate::prelude::*;
    }

    #[test]
    fn core_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::RcTree>();
        assert_send_sync::<crate::CharacteristicTimes>();
        assert_send_sync::<crate::TreeAnalysis>();
        assert_send_sync::<crate::CoreError>();
        assert_send_sync::<crate::TwoPort>();
    }
}
