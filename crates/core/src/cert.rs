//! Certification verdicts (the paper's `OK` function).
//!
//! The third use-case listed in the paper's abstract is "to certify that a
//! circuit is *fast enough*, given both the maximum delay and the voltage
//! threshold".  Because the method produces bounds rather than exact delays,
//! the verdict is three-valued.

use std::fmt;

/// Result of comparing the delay bounds of an output against a timing budget.
///
/// Mirrors the paper's APL function `OK`, which returns `1` (pass), `¯1`
/// (fail) or `0` (cannot tell).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Certification {
    /// The upper delay bound is within the budget: the circuit is guaranteed
    /// fast enough.
    Pass,
    /// Even the lower delay bound exceeds the budget: the circuit definitely
    /// fails the requirement.
    Fail,
    /// The bounds straddle the budget: the method cannot decide; a tighter
    /// analysis (or exact simulation) is needed.
    Indeterminate,
}

impl Certification {
    /// Returns `true` for [`Certification::Pass`].
    pub fn is_pass(self) -> bool {
        self == Certification::Pass
    }

    /// Returns `true` for [`Certification::Fail`].
    pub fn is_fail(self) -> bool {
        self == Certification::Fail
    }

    /// Returns `true` for [`Certification::Indeterminate`].
    pub fn is_indeterminate(self) -> bool {
        self == Certification::Indeterminate
    }

    /// The paper's numeric encoding: `1` for pass, `-1` for fail, `0` for
    /// indeterminate.
    pub fn as_paper_code(self) -> i8 {
        match self {
            Certification::Pass => 1,
            Certification::Fail => -1,
            Certification::Indeterminate => 0,
        }
    }

    /// Combines two verdicts conservatively: a combined circuit passes only
    /// if both parts pass, fails if either definitely fails, and is
    /// indeterminate otherwise.
    pub fn and(self, other: Certification) -> Certification {
        use Certification::*;
        match (self, other) {
            (Fail, _) | (_, Fail) => Fail,
            (Pass, Pass) => Pass,
            _ => Indeterminate,
        }
    }
}

impl fmt::Display for Certification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Certification::Pass => "pass",
            Certification::Fail => "fail",
            Certification::Indeterminate => "indeterminate",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_match_variants() {
        assert!(Certification::Pass.is_pass());
        assert!(Certification::Fail.is_fail());
        assert!(Certification::Indeterminate.is_indeterminate());
        assert!(!Certification::Pass.is_fail());
    }

    #[test]
    fn paper_codes() {
        assert_eq!(Certification::Pass.as_paper_code(), 1);
        assert_eq!(Certification::Fail.as_paper_code(), -1);
        assert_eq!(Certification::Indeterminate.as_paper_code(), 0);
    }

    #[test]
    fn conservative_combination() {
        use Certification::*;
        assert_eq!(Pass.and(Pass), Pass);
        assert_eq!(Pass.and(Indeterminate), Indeterminate);
        assert_eq!(Indeterminate.and(Indeterminate), Indeterminate);
        assert_eq!(Pass.and(Fail), Fail);
        assert_eq!(Fail.and(Indeterminate), Fail);
        assert_eq!(Fail.and(Fail), Fail);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(Certification::Pass.to_string(), "pass");
        assert_eq!(Certification::Fail.to_string(), "fail");
        assert_eq!(Certification::Indeterminate.to_string(), "indeterminate");
    }
}
