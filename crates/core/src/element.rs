//! Branch elements of an RC tree.
//!
//! An RC tree (Section II of the paper) is a resistor tree with grounded
//! capacitors attached to its nodes, in which any resistor may be replaced by
//! a distributed (uniform) RC line.  In this library a *branch* is the series
//! element connecting a node to its parent; grounded capacitors are stored on
//! the nodes themselves (see [`crate::tree::RcTree`]).

use crate::units::{Farads, Ohms};

/// A series element connecting a node to its parent in the RC tree.
///
/// The paper uses a single primitive, the uniform RC line `URC R,C`, and
/// notes that a lumped resistor is `URC R,0` and a lumped capacitor is
/// `URC 0,C`.  We keep lumped resistors and distributed lines as distinct
/// variants because their contributions to the characteristic times differ
/// (a distributed line's own capacitance "sees" only part of the line's
/// resistance), while a pure capacitor is represented as node capacitance.
///
/// ```
/// use rctree_core::element::Branch;
/// use rctree_core::units::{Ohms, Farads};
///
/// let wire = Branch::line(Ohms::new(180.0), Farads::from_pico(0.01));
/// assert_eq!(wire.resistance(), Ohms::new(180.0));
/// assert_eq!(wire.capacitance(), Farads::from_pico(0.01));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Branch {
    /// A lumped resistor of the given resistance.
    Resistor {
        /// Series resistance of the branch.
        resistance: Ohms,
    },
    /// A uniform distributed RC line with the given *total* resistance and
    /// *total* capacitance (uniformly spread along the line).
    Line {
        /// Total series resistance of the line.
        resistance: Ohms,
        /// Total distributed capacitance of the line.
        capacitance: Farads,
    },
}

impl Branch {
    /// Creates a lumped resistor branch.
    pub fn resistor(resistance: Ohms) -> Self {
        Branch::Resistor { resistance }
    }

    /// Creates a uniform distributed RC line branch.
    pub fn line(resistance: Ohms, capacitance: Farads) -> Self {
        Branch::Line {
            resistance,
            capacitance,
        }
    }

    /// Total series resistance of the branch.
    pub fn resistance(&self) -> Ohms {
        match *self {
            Branch::Resistor { resistance } => resistance,
            Branch::Line { resistance, .. } => resistance,
        }
    }

    /// Total distributed capacitance carried by the branch itself
    /// (zero for a lumped resistor).
    pub fn capacitance(&self) -> Farads {
        match *self {
            Branch::Resistor { .. } => Farads::ZERO,
            Branch::Line { capacitance, .. } => capacitance,
        }
    }

    /// Returns `true` if this branch is a distributed line with non-zero
    /// capacitance.
    pub fn is_distributed(&self) -> bool {
        matches!(self, Branch::Line { capacitance, .. } if !capacitance.is_zero())
    }

    /// The contribution of this branch's own distributed capacitance to
    /// `Σ Rkk·Ck` *beyond* the product `R_upstream · C_line`.
    ///
    /// For a uniform line with total resistance `R` and capacitance `C`, a
    /// slice at fractional position `x` sees upstream resistance
    /// `R_up + R·x`, so
    /// `∫₀¹ (R_up + R·x)·C dx = R_up·C + R·C/2`.
    /// This method returns the *internal* part `R·C/2`.
    pub fn internal_elmore(&self) -> crate::units::Seconds {
        match *self {
            Branch::Resistor { .. } => crate::units::Seconds::ZERO,
            Branch::Line {
                resistance,
                capacitance,
            } => resistance * capacitance * 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Seconds;

    #[test]
    fn resistor_has_no_capacitance() {
        let b = Branch::resistor(Ohms::new(10.0));
        assert_eq!(b.resistance(), Ohms::new(10.0));
        assert_eq!(b.capacitance(), Farads::ZERO);
        assert!(!b.is_distributed());
        assert_eq!(b.internal_elmore(), Seconds::ZERO);
    }

    #[test]
    fn line_reports_both_quantities() {
        let b = Branch::line(Ohms::new(4.0), Farads::new(6.0));
        assert_eq!(b.resistance(), Ohms::new(4.0));
        assert_eq!(b.capacitance(), Farads::new(6.0));
        assert!(b.is_distributed());
    }

    #[test]
    fn line_with_zero_capacitance_is_not_distributed() {
        let b = Branch::line(Ohms::new(4.0), Farads::ZERO);
        assert!(!b.is_distributed());
    }

    #[test]
    fn internal_elmore_is_half_rc() {
        // Single uniform RC line driven directly: T_P = T_D = RC/2 (paper,
        // Section III).  The internal term is exactly RC/2.
        let b = Branch::line(Ohms::new(3.0), Farads::new(4.0));
        assert_eq!(b.internal_elmore(), Seconds::new(6.0));
    }
}
