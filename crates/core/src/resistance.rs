//! Path and shared-resistance computations (`R_kk`, `R_ke`, `R_ee`).
//!
//! Section III of the paper defines `R_ke` as "the resistance of the portion
//! of the (unique) path between the input and `e` that is common with the
//! (unique) path between the input and node `k`".  In a tree rooted at the
//! input, that common portion is exactly the path from the input to the
//! lowest common ancestor of `k` and `e`, so
//!
//! ```text
//! R_ke = R(input → lca(k, e))        R_kk = R(input → k)       R_ee = R(input → e)
//! ```
//!
//! and the paper's inequalities `R_ke ≤ R_kk`, `R_ke ≤ R_ee` follow
//! immediately.
//!
//! ```
//! use rctree_core::builder::RcTreeBuilder;
//! use rctree_core::resistance::shared_resistance;
//! use rctree_core::units::{Ohms, Farads};
//!
//! # fn main() -> rctree_core::error::Result<()> {
//! // Figure 3 of the paper: R_ke = R1 + R2.
//! let mut b = RcTreeBuilder::new();
//! let a = b.add_resistor(b.input(), "a", Ohms::new(1.0))?;   // R1
//! let fork = b.add_resistor(a, "fork", Ohms::new(2.0))?;     // R2
//! let k = b.add_resistor(fork, "k", Ohms::new(3.0))?;        // R3
//! let e = b.add_resistor(fork, "e", Ohms::new(5.0))?;        // R5
//! b.add_capacitance(k, Farads::new(1.0))?;
//! b.mark_output(e)?;
//! let tree = b.build()?;
//! assert_eq!(shared_resistance(&tree, k, e)?, Ohms::new(3.0)); // R1 + R2
//! # Ok(())
//! # }
//! ```

use crate::error::Result;
use crate::tree::{NodeId, RcTree};
use crate::units::Ohms;

/// Resistance of the unique path between the input and `node` (`R_kk`).
///
/// This is a thin, discoverable alias for
/// [`RcTree::resistance_from_input`].
///
/// # Errors
///
/// Returns [`CoreError::NodeNotFound`](crate::error::CoreError::NodeNotFound)
/// if `node` does not belong to the tree.
pub fn path_resistance(tree: &RcTree, node: NodeId) -> Result<Ohms> {
    tree.resistance_from_input(node)
}

/// Shared resistance `R_ke`: resistance of the portion of the input→`e` path
/// common with the input→`k` path.
///
/// # Errors
///
/// Returns [`CoreError::NodeNotFound`](crate::error::CoreError::NodeNotFound)
/// if either node does not belong to the tree.
pub fn shared_resistance(tree: &RcTree, k: NodeId, e: NodeId) -> Result<Ohms> {
    let lca = tree.lowest_common_ancestor(k, e)?;
    tree.resistance_from_input(lca)
}

/// For a fixed output `e`, the shared resistance `R_ke` of **every** node
/// `k`, computed in a single O(n) traversal.
///
/// The returned vector is indexed by [`NodeId::index`]; entry `k` is
/// `R_ke`.  For nodes on the path input→`e` the value is their own path
/// resistance; for nodes hanging off that path it is the path resistance of
/// their attachment point.
///
/// # Errors
///
/// Returns [`CoreError::NodeNotFound`](crate::error::CoreError::NodeNotFound)
/// if `e` does not belong to the tree.
pub fn shared_resistances_to(tree: &RcTree, e: NodeId) -> Result<Vec<Ohms>> {
    tree.check(e)?;
    let n = tree.node_count();
    let mut on_path = vec![false; n];
    for id in tree.path_from_input(e)? {
        on_path[id.index()] = true;
    }

    let mut shared = vec![Ohms::ZERO; n];
    // Depth-first walk carrying (node, attachment resistance so far).
    let mut stack: Vec<(NodeId, Ohms)> = vec![(tree.input(), Ohms::ZERO)];
    while let Some((id, att)) = stack.pop() {
        let att_here = if on_path[id.index()] {
            // Nodes on the path to `e` share their entire own path.
            tree.resistance_from_input(id)?
        } else {
            att
        };
        shared[id.index()] = att_here;
        for &child in tree.children(id)? {
            stack.push((child, att_here));
        }
    }
    Ok(shared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RcTreeBuilder;
    use crate::units::Farads;

    /// The exact topology of Figure 3: input --R1-- a --R2-- fork, with
    /// fork --R3-- m --R4-- k (node k after R3 in the paper; we keep both)
    /// and fork --R5-- e (the output).
    fn fig3_tree() -> (RcTree, NodeId, NodeId, NodeId) {
        let mut b = RcTreeBuilder::new();
        let a = b.add_resistor(b.input(), "a", Ohms::new(1.0)).unwrap();
        let fork = b.add_resistor(a, "fork", Ohms::new(2.0)).unwrap();
        let k = b.add_resistor(fork, "k", Ohms::new(3.0)).unwrap();
        let m = b.add_resistor(k, "m", Ohms::new(4.0)).unwrap();
        let e = b.add_resistor(fork, "e", Ohms::new(5.0)).unwrap();
        b.add_capacitance(k, Farads::new(1.0)).unwrap();
        b.add_capacitance(e, Farads::new(1.0)).unwrap();
        b.mark_output(e).unwrap();
        (b.build().unwrap(), k, m, e)
    }

    #[test]
    fn figure3_values_match_paper() {
        // Paper: R_ke = R1 + R2, R_kk = R1 + R2 + R3, R_ee = R1 + R2 + R5.
        let (tree, k, _, e) = fig3_tree();
        assert_eq!(shared_resistance(&tree, k, e).unwrap(), Ohms::new(3.0));
        assert_eq!(path_resistance(&tree, k).unwrap(), Ohms::new(6.0));
        assert_eq!(path_resistance(&tree, e).unwrap(), Ohms::new(8.0));
    }

    #[test]
    fn shared_resistance_is_symmetric() {
        let (tree, k, m, e) = fig3_tree();
        for &a in &[k, m, e, tree.input()] {
            for &b in &[k, m, e, tree.input()] {
                assert_eq!(
                    shared_resistance(&tree, a, b).unwrap(),
                    shared_resistance(&tree, b, a).unwrap()
                );
            }
        }
    }

    #[test]
    fn shared_resistance_bounded_by_path_resistances() {
        // R_ke ≤ R_kk and R_ke ≤ R_ee (paper, Section III).
        let (tree, k, m, e) = fig3_tree();
        for &a in &[k, m, e] {
            for &b in &[k, m, e] {
                let rab = shared_resistance(&tree, a, b).unwrap();
                assert!(rab <= path_resistance(&tree, a).unwrap());
                assert!(rab <= path_resistance(&tree, b).unwrap());
            }
        }
    }

    #[test]
    fn shared_with_self_is_path_resistance() {
        let (tree, k, m, e) = fig3_tree();
        for &a in &[k, m, e] {
            assert_eq!(
                shared_resistance(&tree, a, a).unwrap(),
                path_resistance(&tree, a).unwrap()
            );
        }
    }

    #[test]
    fn shared_with_input_is_zero() {
        let (tree, k, _, _) = fig3_tree();
        assert_eq!(
            shared_resistance(&tree, tree.input(), k).unwrap(),
            Ohms::ZERO
        );
    }

    #[test]
    fn bulk_shared_resistances_match_pairwise() {
        let (tree, _, _, e) = fig3_tree();
        let all = shared_resistances_to(&tree, e).unwrap();
        for id in tree.node_ids() {
            assert_eq!(all[id.index()], shared_resistance(&tree, id, e).unwrap());
        }
    }

    #[test]
    fn bulk_shared_resistances_for_internal_output() {
        // Outputs "may be taken anywhere in the tree": use an internal node.
        let (tree, k, _, _) = fig3_tree();
        let all = shared_resistances_to(&tree, k).unwrap();
        for id in tree.node_ids() {
            assert_eq!(all[id.index()], shared_resistance(&tree, id, k).unwrap());
        }
    }
}
