//! Bounds for finite-slew (ramp) excitation via the superposition integral.
//!
//! The paper treats only the unit-step excitation but remarks (Section VI)
//! that "the results can be extended to upper and lower bounds for arbitrary
//! excitation by use of the superposition integral".  This module implements
//! that extension for the most common practical case: an input ramping
//! linearly from 0 to 1 over a rise time `t_rise`.
//!
//! For a linear time-invariant network, the response to the ramp is the
//! sliding average of the step response:
//!
//! ```text
//! v_ramp(t) = (1/t_rise) · ∫_{max(0, t − t_rise)}^{t} v_step(τ) dτ
//! ```
//!
//! Because integration preserves pointwise inequalities, substituting the
//! Penfield–Rubinstein lower (upper) step bound for `v_step` yields a valid
//! lower (upper) bound for the ramp response.  The integrals are evaluated
//! with composite Simpson quadrature; the default resolution keeps the
//! quadrature error far below the width of the analytic bounds themselves.

use crate::bounds::{DelayBounds, VoltageBounds};
use crate::error::{CoreError, Result};
use crate::moments::CharacteristicTimes;
use crate::units::Seconds;

/// Default number of quadrature panels used per bound evaluation.
const DEFAULT_PANELS: usize = 128;

/// Bounds for the response of one output to a linear-ramp excitation.
///
/// ```
/// use rctree_core::moments::CharacteristicTimes;
/// use rctree_core::ramp::RampResponse;
/// use rctree_core::units::{Ohms, Farads, Seconds};
///
/// # fn main() -> rctree_core::error::Result<()> {
/// let times = CharacteristicTimes::new(
///     Seconds::new(10.0),
///     Seconds::new(6.0),
///     Seconds::new(4.0),
///     Ohms::new(2.0),
///     Farads::new(5.0),
/// )?;
/// let ramp = RampResponse::new(times, Seconds::new(5.0))?;
/// let vb = ramp.voltage_bounds(Seconds::new(10.0))?;
/// assert!(vb.lower <= vb.upper);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampResponse {
    times: CharacteristicTimes,
    rise_time: Seconds,
    panels: usize,
}

impl RampResponse {
    /// Creates a ramp-response evaluator for the given output signature and
    /// input rise time.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NonPositiveRiseTime`] if `rise_time` is zero,
    /// negative or not finite.
    pub fn new(times: CharacteristicTimes, rise_time: Seconds) -> Result<Self> {
        if !rise_time.is_finite() || rise_time.value() <= 0.0 {
            return Err(CoreError::NonPositiveRiseTime {
                rise_time: rise_time.value(),
            });
        }
        Ok(RampResponse {
            times,
            rise_time,
            panels: DEFAULT_PANELS,
        })
    }

    /// Overrides the quadrature resolution (number of Simpson panels).
    ///
    /// Values below 4 are raised to 4; odd values are rounded up to even.
    #[must_use]
    pub fn with_panels(mut self, panels: usize) -> Self {
        let p = panels.max(4);
        self.panels = if p.is_multiple_of(2) { p } else { p + 1 };
        self
    }

    /// The input rise time.
    pub fn rise_time(&self) -> Seconds {
        self.rise_time
    }

    /// The underlying step-response signature.
    pub fn characteristic_times(&self) -> &CharacteristicTimes {
        &self.times
    }

    /// Bounds on the normalized ramp response at time `t`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NegativeTime`] if `t` is negative or not finite.
    pub fn voltage_bounds(&self, t: Seconds) -> Result<VoltageBounds> {
        if !t.is_finite() || t.is_negative() {
            return Err(CoreError::NegativeTime { time: t.value() });
        }
        let tr = self.rise_time.value();
        let tv = t.value();
        let lo_limit = (tv - tr).max(0.0);
        // The portion of the averaging window that falls before t = 0
        // contributes zero (the step response is zero for negative time).
        let lower = self.integrate(lo_limit, tv, BoundKind::Lower)? / tr;
        let upper = self.integrate(lo_limit, tv, BoundKind::Upper)? / tr;
        Ok(VoltageBounds {
            lower: lower.clamp(0.0, 1.0).min(upper.clamp(0.0, 1.0)),
            upper: upper.clamp(0.0, 1.0),
        })
    }

    /// Bounds on the time at which the ramp response reaches `threshold`.
    ///
    /// The ramp response inherits monotonicity from the step response, so
    /// the crossing times of the lower/upper voltage bounds bracket the true
    /// crossing time.  They are located by bisection.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ThresholdOutOfRange`] unless
    /// `0 < threshold < 1`.
    pub fn delay_bounds(&self, threshold: f64) -> Result<DelayBounds> {
        if !(threshold.is_finite() && threshold > 0.0 && threshold < 1.0) {
            return Err(CoreError::ThresholdOutOfRange { threshold });
        }
        // The ramp can only be slower than the step: the step's upper delay
        // bound plus the full rise time is a safe bracket end.
        let step_bounds = self.times.delay_bounds(threshold)?;
        let hi = step_bounds.upper + self.rise_time + self.times.t_p;
        let lower = self.bisect_crossing(threshold, hi, BoundKind::Upper)?;
        let upper = self.bisect_crossing(threshold, hi, BoundKind::Lower)?;
        Ok(DelayBounds {
            lower,
            upper: upper.max(lower),
        })
    }

    /// Finds the first time at which the selected voltage bound reaches
    /// `threshold`, searching in `[0, hi]` by bisection.
    fn bisect_crossing(&self, threshold: f64, hi: Seconds, kind: BoundKind) -> Result<Seconds> {
        let eval = |t: f64| -> Result<f64> {
            let b = self.voltage_bounds(Seconds::new(t))?;
            Ok(match kind {
                BoundKind::Lower => b.lower,
                BoundKind::Upper => b.upper,
            })
        };
        let mut lo = 0.0_f64;
        let mut hi = hi.value().max(1e-300);
        // Expand until the bound exceeds the threshold (it approaches 1).
        let mut guard = 0;
        while eval(hi)? < threshold && guard < 128 {
            hi *= 2.0;
            guard += 1;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if eval(mid)? >= threshold {
                hi = mid;
            } else {
                lo = mid;
            }
            if hi - lo <= 1e-12 * hi.max(1.0) {
                break;
            }
        }
        Ok(Seconds::new(hi))
    }

    /// Composite Simpson integration of a step-response bound on `[a, b]`.
    fn integrate(&self, a: f64, b: f64, kind: BoundKind) -> Result<f64> {
        if b <= a {
            return Ok(0.0);
        }
        let n = self.panels;
        let h = (b - a) / n as f64;
        let f = |t: f64| -> Result<f64> {
            let time = Seconds::new(t.max(0.0));
            Ok(match kind {
                BoundKind::Lower => self.times.voltage_lower_bound(time)?,
                BoundKind::Upper => self.times.voltage_upper_bound(time)?,
            })
        };
        let mut acc = f(a)? + f(b)?;
        for i in 1..n {
            let x = a + i as f64 * h;
            acc += f(x)? * if i % 2 == 1 { 4.0 } else { 2.0 };
        }
        Ok(acc * h / 3.0)
    }
}

#[derive(Debug, Clone, Copy)]
enum BoundKind {
    Lower,
    Upper,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Farads, Ohms};

    fn sample_times() -> CharacteristicTimes {
        CharacteristicTimes::new(
            Seconds::new(10.0),
            Seconds::new(6.0),
            Seconds::new(4.0),
            Ohms::new(2.0),
            Farads::new(5.0),
        )
        .unwrap()
    }

    fn single_pole(tau: f64) -> CharacteristicTimes {
        CharacteristicTimes::new(
            Seconds::new(tau),
            Seconds::new(tau),
            Seconds::new(tau),
            Ohms::new(1.0),
            Farads::new(tau),
        )
        .unwrap()
    }

    #[test]
    fn rejects_non_positive_rise_time() {
        assert!(RampResponse::new(sample_times(), Seconds::ZERO).is_err());
        assert!(RampResponse::new(sample_times(), Seconds::new(-1.0)).is_err());
    }

    #[test]
    fn bounds_are_ordered_and_clamped() {
        let ramp = RampResponse::new(sample_times(), Seconds::new(5.0)).unwrap();
        for &t in &[0.0, 1.0, 3.0, 5.0, 10.0, 30.0, 100.0] {
            let b = ramp.voltage_bounds(Seconds::new(t)).unwrap();
            assert!(b.lower >= 0.0 && b.upper <= 1.0);
            assert!(b.lower <= b.upper);
        }
    }

    #[test]
    fn ramp_response_lags_step_response() {
        // At any time, averaging the (monotone) step response over the past
        // rise-time window can only give a smaller value than the step
        // response itself, so the ramp upper bound must not exceed the step
        // upper bound.
        let times = sample_times();
        let ramp = RampResponse::new(times, Seconds::new(8.0)).unwrap();
        for &t in &[1.0, 5.0, 10.0, 20.0, 50.0] {
            let rb = ramp.voltage_bounds(Seconds::new(t)).unwrap();
            let sb = times.voltage_bounds(Seconds::new(t)).unwrap();
            assert!(rb.upper <= sb.upper + 1e-9, "t={t}");
        }
    }

    #[test]
    fn single_pole_ramp_matches_analytic_solution() {
        // For a single pole τ and ramp rise time T, the exact response for
        // t ≥ T is 1 − (τ/T)·(e^{T/τ} − 1)·e^{−t/τ}.  The PR bounds are tight
        // for a single pole, so our ramp bounds should match the analytic
        // value to quadrature accuracy.
        let tau = 3.0;
        let t_rise = 2.0;
        let times = single_pole(tau);
        let ramp = RampResponse::new(times, Seconds::new(t_rise))
            .unwrap()
            .with_panels(512);
        for &t in &[2.0, 3.0, 5.0, 8.0, 12.0] {
            let exact = 1.0 - (tau / t_rise) * ((t_rise / tau).exp() - 1.0) * (-t / tau).exp();
            let b = ramp.voltage_bounds(Seconds::new(t)).unwrap();
            assert!(
                (b.lower - exact).abs() < 1e-3 && (b.upper - exact).abs() < 1e-3,
                "t={t}: [{}, {}] vs {exact}",
                b.lower,
                b.upper
            );
        }
    }

    #[test]
    fn delay_bounds_bracket_and_exceed_step_delay() {
        let times = sample_times();
        let ramp = RampResponse::new(times, Seconds::new(5.0)).unwrap();
        let rb = ramp.delay_bounds(0.5).unwrap();
        let sb = times.delay_bounds(0.5).unwrap();
        assert!(rb.lower <= rb.upper);
        // A finite-slew input can only delay the crossing.
        assert!(rb.upper >= sb.lower);
    }

    #[test]
    fn short_rise_time_approaches_step_bounds() {
        let times = sample_times();
        let ramp = RampResponse::new(times, Seconds::new(1e-6))
            .unwrap()
            .with_panels(64);
        for &t in &[2.0, 6.0, 12.0] {
            let rb = ramp.voltage_bounds(Seconds::new(t)).unwrap();
            let sb = times.voltage_bounds(Seconds::new(t)).unwrap();
            assert!((rb.lower - sb.lower).abs() < 1e-3);
            assert!((rb.upper - sb.upper).abs() < 1e-3);
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let ramp = RampResponse::new(sample_times(), Seconds::new(5.0)).unwrap();
        assert!(ramp.voltage_bounds(Seconds::new(-1.0)).is_err());
        assert!(ramp.delay_bounds(0.0).is_err());
        assert!(ramp.delay_bounds(1.0).is_err());
    }

    #[test]
    fn with_panels_normalizes_values() {
        let ramp = RampResponse::new(sample_times(), Seconds::new(5.0))
            .unwrap()
            .with_panels(3);
        // 3 is raised to the nearest valid even count ≥ 4.
        assert!(ramp.voltage_bounds(Seconds::new(1.0)).is_ok());
        assert_eq!(ramp.rise_time(), Seconds::new(5.0));
        assert_eq!(ramp.characteristic_times().t_p, Seconds::new(10.0));
    }
}
