//! The constructive two-port algebra of Section IV (Figures 6, 8).
//!
//! Instead of computing `R_ke`/`R_kk` for every capacitor, the paper shows
//! that a small *state vector* can be carried while the network is built
//! bottom-up from uniform-RC-line primitives with two wiring functions:
//!
//! * `WB A` — turn a previously built subtree `A` into a **side branch**
//!   (its far port is left open);
//! * `A WC B` — **cascade** two subtrees, connecting `A`'s far port to `B`'s
//!   near port.
//!
//! The state carried for each partially built network is
//! `(C_T, T_P, R₂₂, T_D2, T_R2·R₂₂)` — the total capacitance, the
//! `T_P` time constant, and the three output-port quantities with port 2
//! (the far port of the cascade chain) regarded as the output.  The update
//! rules are Eqs. (19)–(28); the whole computation is **linear** in the
//! number of elements.
//!
//! This module is a direct transliteration of the paper's APL functions
//! `URC`, `WB` and `WC` (Figure 8) into a typed Rust API.
//!
//! ```
//! use rctree_core::twoport::TwoPort;
//! use rctree_core::units::{Ohms, Farads};
//!
//! # fn main() -> rctree_core::error::Result<()> {
//! // The example of Figure 7 / Eq. (18).
//! let branch = TwoPort::resistor(Ohms::new(8.0))
//!     .cascade(TwoPort::capacitor(Farads::new(7.0)))
//!     .into_side_branch();
//! let net = TwoPort::resistor(Ohms::new(15.0))
//!     .cascade(TwoPort::capacitor(Farads::new(2.0)))
//!     .cascade(branch)
//!     .cascade(TwoPort::line(Ohms::new(3.0), Farads::new(4.0)))
//!     .cascade(TwoPort::capacitor(Farads::new(9.0)));
//! let times = net.characteristic_times()?;
//! assert!((times.t_p.value() - 419.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

use crate::error::{CoreError, Result};
use crate::moments::CharacteristicTimes;
use crate::units::{Farads, OhmSeconds, Ohms, Seconds};

/// State vector of a partially constructed RC tree, with port 1 at the input
/// side and port 2 at the output side of the cascade chain.
///
/// This is the five-component vector `C_T, T_P, R₂₂, T_D2, T_R2·R₂₂` passed
/// around by the paper's APL programs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TwoPort {
    total_cap: Farads,
    t_p: Seconds,
    r22: Ohms,
    t_d2: Seconds,
    t_r2_r22: OhmSeconds,
}

impl TwoPort {
    /// The empty network (identity element of [`cascade`](Self::cascade)).
    pub const EMPTY: TwoPort = TwoPort {
        total_cap: Farads::ZERO,
        t_p: Seconds::ZERO,
        r22: Ohms::ZERO,
        t_d2: Seconds::ZERO,
        t_r2_r22: OhmSeconds::ZERO,
    };

    /// The primitive element: a uniform RC line `URC R,C` (Figure 8).
    ///
    /// The state of a bare line is
    /// `(C, R·C/2, R, R·C/2, R²·C/3)`.
    pub fn line(resistance: Ohms, capacitance: Farads) -> Self {
        let r = resistance.value();
        let c = capacitance.value();
        TwoPort {
            total_cap: capacitance,
            t_p: Seconds::new(r * c / 2.0),
            r22: resistance,
            t_d2: Seconds::new(r * c / 2.0),
            t_r2_r22: OhmSeconds::new(r * r * c / 3.0),
        }
    }

    /// A lumped resistor, i.e. `URC R,0`.
    pub fn resistor(resistance: Ohms) -> Self {
        Self::line(resistance, Farads::ZERO)
    }

    /// A lumped grounded capacitor, i.e. `URC 0,C`.
    pub fn capacitor(capacitance: Farads) -> Self {
        Self::line(Ohms::ZERO, capacitance)
    }

    /// The cascade wiring function `self WC other` (Eqs. 19–23): `other` is
    /// attached to the far port of `self`, and the far port of `other`
    /// becomes the new port 2.
    #[must_use]
    pub fn cascade(self, other: TwoPort) -> TwoPort {
        let a = self;
        let b = other;
        let r22a = a.r22.value();
        let ctb = b.total_cap.value();
        TwoPort {
            // Eq. (19): C_T = C_TA + C_TB.
            total_cap: a.total_cap + b.total_cap,
            // Eq. (20): T_P = T_PA + T_PB + R₂₂A·C_TB.
            t_p: a.t_p + b.t_p + Seconds::new(r22a * ctb),
            // Eq. (21): R₂₂ = R₂₂A + R₂₂B.
            r22: a.r22 + b.r22,
            // Eq. (22): T_D2 = T_D2A + T_D2B + R₂₂A·C_TB.
            t_d2: a.t_d2 + b.t_d2 + Seconds::new(r22a * ctb),
            // Eq. (23): T_R2·R₂₂ = (T_R2·R₂₂)A + (T_R2·R₂₂)B
            //                      + 2·R₂₂A·T_D2B + R₂₂A²·C_TB.
            t_r2_r22: OhmSeconds::new(
                a.t_r2_r22.value()
                    + b.t_r2_r22.value()
                    + 2.0 * r22a * b.t_d2.value()
                    + r22a * r22a * ctb,
            ),
        }
    }

    /// The side-branch wiring function `WB self` (Eqs. 24–28): the far port
    /// of `self` is left open and the whole subtree becomes a branch hanging
    /// off whatever it is later cascaded onto.
    ///
    /// Only `C_T` and `T_P` survive; all port-2 quantities reset to zero.
    #[must_use]
    pub fn into_side_branch(self) -> TwoPort {
        TwoPort {
            total_cap: self.total_cap,
            t_p: self.t_p,
            r22: Ohms::ZERO,
            t_d2: Seconds::ZERO,
            t_r2_r22: OhmSeconds::ZERO,
        }
    }

    /// Total capacitance `C_T` of the network built so far.
    pub fn total_cap(&self) -> Farads {
        self.total_cap
    }

    /// The `T_P` time constant of the network built so far.
    pub fn t_p(&self) -> Seconds {
        self.t_p
    }

    /// Resistance `R₂₂` between the input and port 2.
    pub fn r22(&self) -> Ohms {
        self.r22
    }

    /// Elmore delay `T_D2` with port 2 regarded as the output.
    pub fn t_d2(&self) -> Seconds {
        self.t_d2
    }

    /// The product `T_R2·R₂₂` carried by the constructive algorithm.
    pub fn t_r2_r22(&self) -> OhmSeconds {
        self.t_r2_r22
    }

    /// The rise-time constant `T_R2` with port 2 as the output.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoPathResistance`] if `R₂₂` is zero while
    /// `T_R2·R₂₂` is not (the quotient would be undefined).
    pub fn t_r2(&self) -> Result<Seconds> {
        if self.t_r2_r22.value() == 0.0 {
            return Ok(Seconds::ZERO);
        }
        if self.r22.is_zero() {
            return Err(CoreError::NoPathResistance {
                output: crate::tree::NodeId::INPUT,
            });
        }
        Ok(self.t_r2_r22 / self.r22)
    }

    /// Packages the state as a [`CharacteristicTimes`] signature with port 2
    /// as the output, ready for bound evaluation.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoCapacitance`] if the network carries no capacitance;
    /// * [`CoreError::NoPathResistance`] if `T_R2` is undefined.
    pub fn characteristic_times(&self) -> Result<CharacteristicTimes> {
        if self.total_cap.is_zero() {
            return Err(CoreError::NoCapacitance);
        }
        CharacteristicTimes::new(self.t_p, self.t_d2, self.t_r2()?, self.r22, self.total_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urc_primitive_matches_figure8() {
        let p = TwoPort::line(Ohms::new(4.0), Farads::new(6.0));
        assert_eq!(p.total_cap(), Farads::new(6.0));
        assert_eq!(p.t_p(), Seconds::new(12.0));
        assert_eq!(p.r22(), Ohms::new(4.0));
        assert_eq!(p.t_d2(), Seconds::new(12.0));
        assert_eq!(p.t_r2_r22(), OhmSeconds::new(32.0));
        assert_eq!(p.t_r2().unwrap(), Seconds::new(8.0)); // RC/3 = 8
    }

    #[test]
    fn resistor_and_capacitor_are_degenerate_lines() {
        let r = TwoPort::resistor(Ohms::new(5.0));
        assert_eq!(r.total_cap(), Farads::ZERO);
        assert_eq!(r.r22(), Ohms::new(5.0));
        assert_eq!(r.t_p(), Seconds::ZERO);

        let c = TwoPort::capacitor(Farads::new(5.0));
        assert_eq!(c.total_cap(), Farads::new(5.0));
        assert_eq!(c.r22(), Ohms::ZERO);
        assert_eq!(c.t_d2(), Seconds::ZERO);
    }

    #[test]
    fn cascade_with_empty_is_identity() {
        let p = TwoPort::line(Ohms::new(3.0), Farads::new(4.0));
        assert_eq!(p.cascade(TwoPort::EMPTY), p);
        assert_eq!(TwoPort::EMPTY.cascade(p), p);
    }

    #[test]
    fn cascade_of_r_then_c_is_single_lump() {
        // R driving a lumped C: T_P = T_D2 = RC, T_R2 = RC.
        let net = TwoPort::resistor(Ohms::new(2.0)).cascade(TwoPort::capacitor(Farads::new(3.0)));
        assert_eq!(net.t_p(), Seconds::new(6.0));
        assert_eq!(net.t_d2(), Seconds::new(6.0));
        assert_eq!(net.r22(), Ohms::new(2.0));
        assert_eq!(net.t_r2().unwrap(), Seconds::new(6.0));
    }

    #[test]
    fn side_branch_keeps_only_cap_and_tp() {
        let sub = TwoPort::resistor(Ohms::new(8.0)).cascade(TwoPort::capacitor(Farads::new(7.0)));
        let b = sub.into_side_branch();
        assert_eq!(b.total_cap(), Farads::new(7.0));
        assert_eq!(b.t_p(), Seconds::new(56.0));
        assert_eq!(b.r22(), Ohms::ZERO);
        assert_eq!(b.t_d2(), Seconds::ZERO);
        assert_eq!(b.t_r2_r22(), OhmSeconds::ZERO);
    }

    #[test]
    fn figure7_network_characteristic_times() {
        // NET ← (URC 15 0) WC (URC 0 2) WC (WB ((URC 8 0) WC (URC 0 7)))
        //        WC (URC 3 4) WC (URC 0 9)          — Eq. (18) / Figure 10.
        let branch = TwoPort::resistor(Ohms::new(8.0))
            .cascade(TwoPort::capacitor(Farads::new(7.0)))
            .into_side_branch();
        let net = TwoPort::resistor(Ohms::new(15.0))
            .cascade(TwoPort::capacitor(Farads::new(2.0)))
            .cascade(branch)
            .cascade(TwoPort::line(Ohms::new(3.0), Farads::new(4.0)))
            .cascade(TwoPort::capacitor(Farads::new(9.0)));

        // Hand-computed values for the Figure 7 network:
        //   C_T  = 2 + 7 + 4 + 9 = 22 F
        //   T_P  = 15·2 + (15+8)·7 + 4·(15 + 3/2) + 18·9 = 419 s
        //   T_D2 = 15·2 + 15·7     + 4·(15 + 3/2) + 18·9 = 363 s
        //   Σ R_ke²·C_k = 15²·2 + 15²·7 + 4·(15² + 15·3 + 3²/3) + 18²·9 = 6033 Ω²·F
        //   R₂₂  = 18 Ω, so T_R2 = 6033/18 = 335.1666… s
        assert_eq!(net.total_cap(), Farads::new(22.0));
        assert!((net.t_p().value() - 419.0).abs() < 1e-9);
        assert!((net.t_d2().value() - 363.0).abs() < 1e-9);
        assert_eq!(net.r22(), Ohms::new(18.0));
        assert!((net.t_r2().unwrap().value() - 6033.0 / 18.0).abs() < 1e-9);

        let t = net.characteristic_times().unwrap();
        assert!(t.satisfies_ordering());
        assert!(t.t_r < t.t_d);
    }

    #[test]
    fn characteristic_times_requires_capacitance() {
        let net = TwoPort::resistor(Ohms::new(5.0));
        assert!(matches!(
            net.characteristic_times(),
            Err(CoreError::NoCapacitance)
        ));
    }

    #[test]
    fn t_r2_of_capacitor_only_network_is_zero() {
        let net = TwoPort::capacitor(Farads::new(3.0));
        assert_eq!(net.t_r2().unwrap(), Seconds::ZERO);
        assert!(net.characteristic_times().is_ok());
    }

    #[test]
    fn cascade_is_associative() {
        let a = TwoPort::line(Ohms::new(1.0), Farads::new(2.0));
        let b = TwoPort::line(Ohms::new(3.0), Farads::new(4.0));
        let c = TwoPort::line(Ohms::new(5.0), Farads::new(6.0));
        let left = a.cascade(b).cascade(c);
        let right = a.cascade(b.cascade(c));
        assert!((left.t_p().value() - right.t_p().value()).abs() < 1e-12);
        assert!((left.t_d2().value() - right.t_d2().value()).abs() < 1e-12);
        assert!((left.t_r2_r22().value() - right.t_r2_r22().value()).abs() < 1e-12);
        assert_eq!(left.r22(), right.r22());
        assert_eq!(left.total_cap(), right.total_cap());
    }

    #[test]
    fn cascade_is_not_commutative_in_general() {
        let a = TwoPort::resistor(Ohms::new(10.0));
        let b = TwoPort::capacitor(Farads::new(1.0));
        let ab = a.cascade(b);
        let ba = b.cascade(a);
        assert_ne!(ab.t_d2(), ba.t_d2());
    }
}
