//! Physical-quantity newtypes used throughout the library.
//!
//! The Penfield–Rubinstein formulas mix resistances, capacitances, times and
//! voltages; confusing them is the classic source of silent unit errors in
//! timing code.  Each quantity is wrapped in a thin `f64` newtype
//! ([C-NEWTYPE]) with only the physically meaningful arithmetic implemented:
//! for example `Ohms * Farads = Seconds`, but `Ohms + Farads` does not
//! compile.
//!
//! All quantities are stored in SI base units (ohms, farads, seconds, volts).
//! The paper's examples use plain ohms/farads/seconds, and Section V uses
//! ohms and picofarads; helper constructors such as [`Farads::from_pico`]
//! keep call sites readable.
//!
//! ```
//! use rctree_core::units::{Ohms, Farads, Seconds};
//!
//! let r = Ohms::new(380.0);
//! let c = Farads::from_pico(0.04);
//! let tau: Seconds = r * c;
//! assert!((tau.value() - 1.52e-11).abs() < 1e-24);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the shared boilerplate for a scalar `f64` newtype.
macro_rules! scalar_newtype {
    ($(#[$doc:meta])* $name:ident, $unit:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(f64);

        impl $name {
            /// Zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new quantity from a raw value in SI base units.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in SI base units.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (neither NaN nor infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns `true` if the value is exactly zero.
            #[inline]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// Returns `true` if the value is negative.
            #[inline]
            pub fn is_negative(self) -> bool {
                self.0 < 0.0
            }

            /// Returns the smaller of two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            fn from(value: $name) -> f64 {
                value.0
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|x| x.0).sum())
            }
        }
    };
}

scalar_newtype!(
    /// Electrical resistance in ohms (Ω).
    Ohms,
    "Ω"
);

scalar_newtype!(
    /// Capacitance in farads (F).
    Farads,
    "F"
);

scalar_newtype!(
    /// Time in seconds (s).
    Seconds,
    "s"
);

scalar_newtype!(
    /// Voltage in volts (V).
    ///
    /// Step responses in this library are normalized so the input step is
    /// one volt; a normalized voltage of `0.7` therefore means 0.7·V_DD.
    Volts,
    "V"
);

impl Ohms {
    /// Creates a resistance from a value in kiloohms.
    #[inline]
    pub fn from_kilo(kohms: f64) -> Self {
        Self(kohms * 1e3)
    }
}

impl Farads {
    /// Creates a capacitance from a value in picofarads.
    #[inline]
    pub fn from_pico(pf: f64) -> Self {
        Self(pf * 1e-12)
    }

    /// Creates a capacitance from a value in femtofarads.
    #[inline]
    pub fn from_femto(ff: f64) -> Self {
        Self(ff * 1e-15)
    }

    /// Returns the value in picofarads.
    #[inline]
    pub fn as_pico(self) -> f64 {
        self.0 * 1e12
    }
}

impl Seconds {
    /// Creates a time from a value in nanoseconds.
    #[inline]
    pub fn from_nano(ns: f64) -> Self {
        Self(ns * 1e-9)
    }

    /// Creates a time from a value in picoseconds.
    #[inline]
    pub fn from_pico(ps: f64) -> Self {
        Self(ps * 1e-12)
    }

    /// Returns the value in nanoseconds.
    #[inline]
    pub fn as_nano(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the value in picoseconds.
    #[inline]
    pub fn as_pico(self) -> f64 {
        self.0 * 1e12
    }
}

/// `R · C = τ` — the fundamental RC time-constant product.
impl Mul<Farads> for Ohms {
    type Output = Seconds;
    fn mul(self, rhs: Farads) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

/// `C · R = τ` (commutative convenience).
impl Mul<Ohms> for Farads {
    type Output = Seconds;
    fn mul(self, rhs: Ohms) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

/// `τ / R = C`.
impl Div<Ohms> for Seconds {
    type Output = Farads;
    fn div(self, rhs: Ohms) -> Farads {
        Farads(self.0 / rhs.0)
    }
}

/// `τ / C = R`.
impl Div<Farads> for Seconds {
    type Output = Ohms;
    fn div(self, rhs: Farads) -> Ohms {
        Ohms(self.0 / rhs.0)
    }
}

/// Resistance-time product `R·τ` (ohm-seconds).
///
/// The constructive algorithm of Section IV carries `T_R2 · R₂₂` through the
/// network construction instead of `T_R2` itself (see the remark under
/// "Practical Algorithms" in the paper); this newtype keeps that intermediate
/// dimensionally distinct from a plain time.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OhmSeconds(f64);

impl OhmSeconds {
    /// Zero quantity.
    pub const ZERO: Self = Self(0.0);

    /// Creates a new ohm-second quantity.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the raw value in ohm-seconds.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns `true` if the value is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Display for OhmSeconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Ω·s", self.0)
    }
}

impl Add for OhmSeconds {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for OhmSeconds {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for OhmSeconds {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

/// `R · τ = R·τ`.
impl Mul<Seconds> for Ohms {
    type Output = OhmSeconds;
    fn mul(self, rhs: Seconds) -> OhmSeconds {
        OhmSeconds(self.0 * rhs.0)
    }
}

/// `τ · R = R·τ`.
impl Mul<Ohms> for Seconds {
    type Output = OhmSeconds;
    fn mul(self, rhs: Ohms) -> OhmSeconds {
        OhmSeconds(self.0 * rhs.0)
    }
}

/// `(R·τ) / R = τ`.
impl Div<Ohms> for OhmSeconds {
    type Output = Seconds;
    fn div(self, rhs: Ohms) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_times_farads_is_seconds() {
        let tau = Ohms::new(100.0) * Farads::new(0.5);
        assert_eq!(tau, Seconds::new(50.0));
    }

    #[test]
    fn farads_times_ohms_commutes() {
        assert_eq!(
            Farads::new(2.0) * Ohms::new(3.0),
            Ohms::new(3.0) * Farads::new(2.0)
        );
    }

    #[test]
    fn seconds_divided_by_ohms_is_farads() {
        let c = Seconds::new(10.0) / Ohms::new(2.0);
        assert_eq!(c, Farads::new(5.0));
    }

    #[test]
    fn seconds_divided_by_farads_is_ohms() {
        let r = Seconds::new(10.0) / Farads::new(2.0);
        assert_eq!(r, Ohms::new(5.0));
    }

    #[test]
    fn like_quantities_divide_to_dimensionless() {
        let ratio: f64 = Seconds::new(6.0) / Seconds::new(3.0);
        assert_eq!(ratio, 2.0);
    }

    #[test]
    fn ohm_seconds_round_trip() {
        let rt = Ohms::new(4.0) * Seconds::new(5.0);
        assert_eq!(rt, OhmSeconds::new(20.0));
        assert_eq!(rt / Ohms::new(4.0), Seconds::new(5.0));
    }

    #[test]
    fn pico_and_nano_helpers() {
        assert!((Farads::from_pico(1.0).value() - 1e-12).abs() < 1e-27);
        assert!((Seconds::from_nano(2.0).value() - 2e-9).abs() < 1e-21);
        assert!((Seconds::new(3e-9).as_nano() - 3.0).abs() < 1e-12);
        assert!((Farads::new(3e-12).as_pico() - 3.0).abs() < 1e-12);
        assert!((Farads::from_femto(5.0).value() - 5e-15).abs() < 1e-28);
        assert!((Ohms::from_kilo(2.5).value() - 2500.0).abs() < 1e-9);
        assert!((Seconds::from_pico(7.0).value() - 7e-12).abs() < 1e-24);
        assert!((Seconds::new(7e-12).as_pico() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Ohms::new(15.0).to_string(), "15 Ω");
        assert_eq!(Farads::new(2.0).to_string(), "2 F");
        assert_eq!(Seconds::new(1.5).to_string(), "1.5 s");
        assert_eq!(Volts::new(0.7).to_string(), "0.7 V");
        assert_eq!(OhmSeconds::new(3.0).to_string(), "3 Ω·s");
    }

    #[test]
    fn min_max_abs_helpers() {
        assert_eq!(Seconds::new(2.0).min(Seconds::new(3.0)), Seconds::new(2.0));
        assert_eq!(Seconds::new(2.0).max(Seconds::new(3.0)), Seconds::new(3.0));
        assert_eq!(Seconds::new(-2.0).abs(), Seconds::new(2.0));
        assert!(Seconds::new(-1.0).is_negative());
        assert!(!Seconds::new(1.0).is_negative());
        assert!(Seconds::ZERO.is_zero());
    }

    #[test]
    fn sum_of_quantities() {
        let total: Ohms = [Ohms::new(1.0), Ohms::new(2.0), Ohms::new(3.0)]
            .into_iter()
            .sum();
        assert_eq!(total, Ohms::new(6.0));
    }

    #[test]
    fn arithmetic_with_scalars() {
        assert_eq!(Ohms::new(2.0) * 3.0, Ohms::new(6.0));
        assert_eq!(3.0 * Ohms::new(2.0), Ohms::new(6.0));
        assert_eq!(Ohms::new(6.0) / 3.0, Ohms::new(2.0));
        assert_eq!(-Ohms::new(2.0), Ohms::new(-2.0));
        let mut x = Seconds::new(1.0);
        x += Seconds::new(2.0);
        x -= Seconds::new(0.5);
        assert_eq!(x, Seconds::new(2.5));
    }

    #[test]
    fn conversions_from_into_f64() {
        let r: Ohms = 5.0.into();
        assert_eq!(r, Ohms::new(5.0));
        let raw: f64 = r.into();
        assert_eq!(raw, 5.0);
    }
}
