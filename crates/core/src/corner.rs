//! Multi-corner (PVT) scaling model.
//!
//! Real signoff evaluates the same deck at several process / voltage /
//! temperature corners.  The Penfield–Rubinstein characteristic times are
//! built from sums of `R·C` products, so a corner that scales every
//! resistance by `r_scale` and every capacitance by `c_scale` can reuse the
//! *topology* of the nominal analysis unchanged — only the element values
//! differ.  [`CornerSet`] names those corners and carries their scale
//! factors; the `rctree-sta` arena appends one value lane per corner and
//! sweeps all lanes in a single traversal per net.
//!
//! ## Scaling semantics
//!
//! For a corner `(r_scale, c_scale, delay_scale)`:
//!
//! * every **wire** branch resistance and capacitance, and every lumped
//!   interconnect node capacitance, is multiplied by the corner's
//!   `(r_scale, c_scale)` — or by a per-net override registered with
//!   [`CornerSet::override_net`] (modelling e.g. a metal layer whose RC
//!   tracks a different process axis);
//! * every **driver** resistance is multiplied by the *global* `r_scale`
//!   (cell drive strength tracks the process corner, not the wire stack);
//! * every **sink load** capacitance is multiplied by the global `c_scale`;
//! * every instance **intrinsic delay** is multiplied by `delay_scale`.
//!
//! Each scaling is a single `x * s` multiplication of the original nominal
//! value — one IEEE-754 rounding — so scaling at arena-build time, at sweep
//! time, or by materialising a fully scaled design all produce bit-identical
//! floats.  (Scaled *sums* would not: `(a + b) * s != a*s + b*s` in floating
//! point.  Every consumer therefore scales elements before accumulating.)
//!
//! Corner 0 is always the implicit **nominal** corner with unit scales; its
//! lane runs the exact float sequence of the single-corner path.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// One named corner: global scale factors applied to the nominal deck.
#[derive(Debug, Clone, PartialEq)]
pub struct Corner {
    /// Corner name (unique within a [`CornerSet`]).
    pub name: String,
    /// Multiplier on every resistance (wire and driver).
    pub r_scale: f64,
    /// Multiplier on every capacitance (wire, node, and sink load).
    pub c_scale: f64,
    /// Multiplier on every instance intrinsic delay.
    pub delay_scale: f64,
}

/// A named set of corners; index 0 is always the implicit nominal corner
/// with unit scales.
///
/// ```
/// use rctree_core::corner::CornerSet;
///
/// let mut corners = CornerSet::nominal();
/// corners.push("slow", 1.3, 1.2, 1.25).unwrap();
/// corners.push("fast", 0.8, 0.9, 0.85).unwrap();
/// assert_eq!(corners.len(), 3);
/// assert_eq!(corners.corner(0).name, "nominal");
/// assert_eq!(corners.index_of("fast"), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CornerSet {
    corners: Vec<Corner>,
    /// Per-net wire-scale overrides: net name -> corner index -> (r, c).
    overrides: HashMap<String, BTreeMap<usize, (f64, f64)>>,
}

/// A malformed corner specification (invalid scale, duplicate name,
/// unknown corner in an override, or unparseable spec text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CornerError(String);

impl fmt::Display for CornerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corner spec: {}", self.0)
    }
}

impl std::error::Error for CornerError {}

fn check_scale(what: &str, value: f64) -> Result<(), CornerError> {
    if !value.is_finite() || value <= 0.0 {
        Err(CornerError(format!(
            "{what} scale {value} must be finite and positive"
        )))
    } else {
        Ok(())
    }
}

impl CornerSet {
    /// The single-corner set: just the implicit nominal corner.
    pub fn nominal() -> CornerSet {
        CornerSet {
            corners: vec![Corner {
                name: "nominal".to_string(),
                r_scale: 1.0,
                c_scale: 1.0,
                delay_scale: 1.0,
            }],
            overrides: HashMap::new(),
        }
    }

    /// Appends a corner and returns its index.  Scales must be finite and
    /// strictly positive (so zero elements stay zero and the per-lane error
    /// behaviour mirrors the nominal lane); names must be unique.
    pub fn push(
        &mut self,
        name: &str,
        r_scale: f64,
        c_scale: f64,
        delay_scale: f64,
    ) -> Result<usize, CornerError> {
        if name.is_empty() || name.contains(char::is_whitespace) || name.contains(',') {
            return Err(CornerError(format!(
                "corner name `{name}` must be non-empty without whitespace or commas"
            )));
        }
        if self.index_of(name).is_some() {
            return Err(CornerError(format!("duplicate corner name `{name}`")));
        }
        check_scale("resistance", r_scale)?;
        check_scale("capacitance", c_scale)?;
        check_scale("delay", delay_scale)?;
        self.corners.push(Corner {
            name: name.to_string(),
            r_scale,
            c_scale,
            delay_scale,
        });
        Ok(self.corners.len() - 1)
    }

    /// Registers a per-net wire-scale override: at corner `corner`, net
    /// `net`'s wire branch R/C and interconnect node caps use
    /// `(r_scale, c_scale)` instead of the corner's global scales.  Driver
    /// resistance and sink loads keep the global scales.
    pub fn override_net(
        &mut self,
        net: &str,
        corner: usize,
        r_scale: f64,
        c_scale: f64,
    ) -> Result<(), CornerError> {
        if corner == 0 {
            return Err(CornerError(
                "the nominal corner cannot be overridden (lane 0 is the unscaled deck)".to_string(),
            ));
        }
        if corner >= self.corners.len() {
            return Err(CornerError(format!(
                "override names corner index {corner}, but only {} corners exist",
                self.corners.len()
            )));
        }
        check_scale("resistance", r_scale)?;
        check_scale("capacitance", c_scale)?;
        self.overrides
            .entry(net.to_string())
            .or_default()
            .insert(corner, (r_scale, c_scale));
        Ok(())
    }

    /// Number of corners, nominal included (always `>= 1`).
    pub fn len(&self) -> usize {
        self.corners.len()
    }

    /// `true` iff only the nominal corner is present.
    pub fn is_nominal_only(&self) -> bool {
        self.corners.len() == 1 && self.overrides.is_empty()
    }

    /// Never empty: corner 0 always exists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The corner at index `k` (panics if out of range).
    pub fn corner(&self, k: usize) -> &Corner {
        &self.corners[k]
    }

    /// All corners in index order.
    pub fn corners(&self) -> &[Corner] {
        &self.corners
    }

    /// The index of the named corner, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.corners.iter().position(|c| c.name == name)
    }

    /// Comma-joined corner names, in index order (the protocol tail).
    pub fn names_csv(&self) -> String {
        let names: Vec<&str> = self.corners.iter().map(|c| c.name.as_str()).collect();
        names.join(",")
    }

    /// The wire `(r_scale, c_scale)` for net `net` at corner `k`: the
    /// per-net override if one is registered, else the corner's globals.
    pub fn wire_scales(&self, net: &str, k: usize) -> (f64, f64) {
        if let Some(per_net) = self.overrides.get(net) {
            if let Some(&scales) = per_net.get(&k) {
                return scales;
            }
        }
        let c = &self.corners[k];
        (c.r_scale, c.c_scale)
    }

    /// Parses a corner specification.
    ///
    /// One entry per line (or `;`-separated); `#` starts a comment.
    ///
    /// ```text
    /// <name>=<r_scale>,<c_scale>[,<delay_scale>]     # appends a corner
    /// override <net> <corner-name> <r_scale> <c_scale>
    /// ```
    ///
    /// `delay_scale` defaults to 1.  Corner 0 (`nominal`, unit scales) is
    /// implicit and must not be redeclared.  Overrides may only reference
    /// corners already declared.
    pub fn parse(spec: &str) -> Result<CornerSet, CornerError> {
        let mut set = CornerSet::nominal();
        for raw in spec.lines().flat_map(|l| l.split(';')) {
            let entry = raw.split('#').next().unwrap_or("").trim();
            if entry.is_empty() {
                continue;
            }
            if let Some(rest) = entry.strip_prefix("override ") {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                let [net, corner_name, rs, cs] = parts[..] else {
                    return Err(CornerError(format!(
                        "override `{entry}` must be `override <net> <corner> <r_scale> <c_scale>`"
                    )));
                };
                let k = set.index_of(corner_name).ok_or_else(|| {
                    CornerError(format!("override names unknown corner `{corner_name}`"))
                })?;
                let rs = parse_scale("resistance", rs)?;
                let cs = parse_scale("capacitance", cs)?;
                set.override_net(net, k, rs, cs)?;
                continue;
            }
            let Some((name, scales)) = entry.split_once('=') else {
                return Err(CornerError(format!(
                    "entry `{entry}` must be `<name>=<r_scale>,<c_scale>[,<delay_scale>]`"
                )));
            };
            let name = name.trim();
            let parts: Vec<&str> = scales.split(',').map(str::trim).collect();
            let (rs, cs, ds) = match parts[..] {
                [rs, cs] => (rs, cs, "1"),
                [rs, cs, ds] => (rs, cs, ds),
                _ => {
                    return Err(CornerError(format!(
                        "corner `{name}` must list 2 or 3 scales, got {}",
                        parts.len()
                    )))
                }
            };
            let rs = parse_scale("resistance", rs)?;
            let cs = parse_scale("capacitance", cs)?;
            let ds = parse_scale("delay", ds)?;
            set.push(name, rs, cs, ds)?;
        }
        Ok(set)
    }
}

fn parse_scale(what: &str, text: &str) -> Result<f64, CornerError> {
    let value: f64 = text
        .parse()
        .map_err(|_| CornerError(format!("{what} scale `{text}` is not a number")))?;
    check_scale(what, value)?;
    Ok(value)
}

impl Default for CornerSet {
    fn default() -> Self {
        CornerSet::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_corner_zero() {
        let set = CornerSet::nominal();
        assert_eq!(set.len(), 1);
        assert!(set.is_nominal_only());
        assert!(!set.is_empty());
        let c = set.corner(0);
        assert_eq!(c.name, "nominal");
        assert_eq!((c.r_scale, c.c_scale, c.delay_scale), (1.0, 1.0, 1.0));
    }

    #[test]
    fn push_validates_scales_and_names() {
        let mut set = CornerSet::nominal();
        assert!(set.push("slow", 1.3, 1.2, 1.25).is_ok());
        assert!(set.push("slow", 1.0, 1.0, 1.0).is_err(), "duplicate name");
        assert!(set.push("nominal", 1.0, 1.0, 1.0).is_err());
        assert!(set.push("bad", 0.0, 1.0, 1.0).is_err(), "zero scale");
        assert!(set.push("bad", -1.0, 1.0, 1.0).is_err());
        assert!(set.push("bad", f64::NAN, 1.0, 1.0).is_err());
        assert!(set.push("bad", 1.0, f64::INFINITY, 1.0).is_err());
        assert!(set.push("has space", 1.0, 1.0, 1.0).is_err());
        assert!(set.push("has,comma", 1.0, 1.0, 1.0).is_err());
        assert!(!set.is_nominal_only());
    }

    #[test]
    fn wire_scales_use_override_when_present() {
        let mut set = CornerSet::nominal();
        let slow = set.push("slow", 1.3, 1.2, 1.0).unwrap();
        set.override_net("n1", slow, 1.5, 1.6).unwrap();
        assert_eq!(set.wire_scales("n1", slow), (1.5, 1.6));
        assert_eq!(set.wire_scales("n2", slow), (1.3, 1.2));
        assert_eq!(set.wire_scales("n1", 0), (1.0, 1.0));
        assert!(set.override_net("n1", 7, 1.0, 1.0).is_err());
        assert!(set.override_net("n1", slow, 0.0, 1.0).is_err());
        assert!(set.override_net("n1", 0, 1.1, 1.1).is_err(), "nominal");
    }

    #[test]
    fn parse_round_trips_a_spec() {
        let set = CornerSet::parse(
            "# three extra corners\n\
             slow=1.3,1.2,1.25\n\
             fast=0.8,0.9,0.85; hot=1.1,1.05\n\
             override n42 slow 1.45 1.35\n",
        )
        .unwrap();
        assert_eq!(set.len(), 4);
        assert_eq!(set.names_csv(), "nominal,slow,fast,hot");
        assert_eq!(set.corner(3).delay_scale, 1.0);
        assert_eq!(set.wire_scales("n42", 1), (1.45, 1.35));
        assert_eq!(set.wire_scales("n42", 2), (0.8, 0.9));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(CornerSet::parse("slow=1.3").is_err(), "one scale");
        assert!(CornerSet::parse("slow 1.3,1.2").is_err(), "no equals");
        assert!(CornerSet::parse("slow=a,b").is_err(), "non-numeric");
        assert!(CornerSet::parse("slow=1.3,0").is_err(), "zero scale");
        assert!(CornerSet::parse("nominal=1,1").is_err(), "redeclared");
        assert!(
            CornerSet::parse("override n1 ghost 1 1").is_err(),
            "unknown corner"
        );
        assert!(CornerSet::parse("override n1 nominal 1").is_err());
    }

    /// The exact error strings are part of the CLI/server surface (they are
    /// echoed verbatim to users), so pin them rather than just `is_err()`.
    #[test]
    fn parse_errors_name_the_offending_entry() {
        let msg = |spec: &str| CornerSet::parse(spec).unwrap_err().to_string();

        // Malformed override lines: wrong arity, unknown corner, bad scale.
        assert_eq!(
            msg("slow=1.3,1.2\noverride n1 slow 1.4"),
            "corner spec: override `override n1 slow 1.4` must be \
             `override <net> <corner> <r_scale> <c_scale>`"
        );
        assert_eq!(
            msg("override n1 ghost 1.1 1.1"),
            "corner spec: override names unknown corner `ghost`"
        );
        assert_eq!(
            msg("slow=1.3,1.2\noverride n1 slow 1.1 oops"),
            "corner spec: capacitance scale `oops` is not a number"
        );
        assert_eq!(
            msg("slow=1.3,1.2\noverride n1 nominal 1.1 1.1"),
            "corner spec: the nominal corner cannot be overridden \
             (lane 0 is the unscaled deck)"
        );

        // Duplicate corner names, including the implicit nominal lane.
        assert_eq!(
            msg("slow=1.3,1.2;slow=1.1,1.1"),
            "corner spec: duplicate corner name `slow`"
        );
        assert_eq!(
            msg("nominal=1,1"),
            "corner spec: duplicate corner name `nominal`"
        );

        // Non-finite and non-positive scales name axis and value.
        assert_eq!(
            msg("slow=inf,1.2"),
            "corner spec: resistance scale inf must be finite and positive"
        );
        assert_eq!(
            msg("slow=1.3,NaN"),
            "corner spec: capacitance scale NaN must be finite and positive"
        );
        assert_eq!(
            msg("slow=1.3,1.2,-2"),
            "corner spec: delay scale -2 must be finite and positive"
        );
        assert_eq!(
            msg("slow=0,1.2"),
            "corner spec: resistance scale 0 must be finite and positive"
        );

        // Entry-shape errors echo the offending text.
        assert_eq!(
            msg("slow 1.3,1.2"),
            "corner spec: entry `slow 1.3,1.2` must be \
             `<name>=<r_scale>,<c_scale>[,<delay_scale>]`"
        );
        assert_eq!(
            msg("slow=1.1,1.2,1.3,1.4"),
            "corner spec: corner `slow` must list 2 or 3 scales, got 4"
        );
    }
}
