//! Error types for RC-tree construction and analysis.

use std::fmt;

use crate::tree::NodeId;

/// Errors produced while building or analysing an RC tree.
///
/// All public fallible operations in this crate return [`CoreError`] so that
/// downstream users have a single error type to match on.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The tree contains no capacitance at all, so every characteristic time
    /// is zero and the bound formulas are undefined (the paper's Figure 9
    /// functions "fail for networks without any resistances or capacitances").
    NoCapacitance,
    /// The tree has no resistance on the path to the requested output, so the
    /// rise-time constant `T_Re` is undefined (division by `R_ee = 0`).
    NoPathResistance {
        /// Output node whose path to the input has zero resistance.
        output: NodeId,
    },
    /// A negative or non-finite element value was supplied.
    InvalidValue {
        /// Human-readable description of the offending quantity.
        what: &'static str,
        /// The offending raw value.
        value: f64,
    },
    /// A node id does not belong to the tree it was used with.
    NodeNotFound {
        /// The unknown node id.
        node: NodeId,
    },
    /// The requested node is not marked as an output.
    NotAnOutput {
        /// The node that is not an output.
        node: NodeId,
    },
    /// A voltage threshold outside the open interval `(0, 1)` was supplied.
    ///
    /// The bound formulas divide by `1 − v` and take `ln` of expressions
    /// involving `v`, so thresholds of exactly 0 or 1 are rejected (the paper
    /// notes its APL functions "fail ... for V = 0").
    ThresholdOutOfRange {
        /// The offending threshold.
        threshold: f64,
    },
    /// A negative time was supplied where a non-negative time is required.
    NegativeTime {
        /// The offending time in seconds.
        time: f64,
    },
    /// A duplicate node name was used during construction.
    DuplicateName {
        /// The repeated name.
        name: String,
    },
    /// The tree has no outputs marked, so there is nothing to analyse.
    NoOutputs,
    /// An empty tree (input node only, no branches, no capacitors) was built.
    EmptyTree,
    /// A named node was not found during lookup by name.
    NameNotFound {
        /// The name that could not be resolved.
        name: String,
    },
    /// The rise time of a ramp excitation must be strictly positive.
    NonPositiveRiseTime {
        /// The offending rise time in seconds.
        rise_time: f64,
    },
    /// A structural edit targeted the input node, which has no feeding
    /// branch and cannot be replaced or pruned.
    CannotEditInput,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoCapacitance => {
                write!(
                    f,
                    "network contains no capacitance; delay bounds are undefined"
                )
            }
            CoreError::NoPathResistance { output } => write!(
                f,
                "no resistance between input and output node {output:?}; T_R is undefined"
            ),
            CoreError::InvalidValue { what, value } => {
                write!(
                    f,
                    "invalid value for {what}: {value} (must be finite and non-negative)"
                )
            }
            CoreError::NodeNotFound { node } => {
                write!(f, "node {node:?} does not belong to this tree")
            }
            CoreError::NotAnOutput { node } => {
                write!(f, "node {node:?} is not marked as an output")
            }
            CoreError::ThresholdOutOfRange { threshold } => write!(
                f,
                "voltage threshold {threshold} is outside the open interval (0, 1)"
            ),
            CoreError::NegativeTime { time } => {
                write!(f, "time {time} s is negative")
            }
            CoreError::DuplicateName { name } => {
                write!(f, "duplicate node name `{name}`")
            }
            CoreError::NoOutputs => write!(f, "tree has no output nodes marked"),
            CoreError::EmptyTree => write!(f, "tree has no elements"),
            CoreError::NameNotFound { name } => write!(f, "no node named `{name}`"),
            CoreError::NonPositiveRiseTime { rise_time } => {
                write!(f, "ramp rise time {rise_time} s must be strictly positive")
            }
            CoreError::CannotEditInput => {
                write!(
                    f,
                    "the input node has no feeding branch and cannot be edited structurally"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias used by every fallible function in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_meaningful_messages() {
        let cases: Vec<(CoreError, &str)> = vec![
            (CoreError::NoCapacitance, "no capacitance"),
            (
                CoreError::ThresholdOutOfRange { threshold: 1.5 },
                "outside the open interval",
            ),
            (
                CoreError::InvalidValue {
                    what: "resistance",
                    value: -3.0,
                },
                "invalid value for resistance",
            ),
            (CoreError::NoOutputs, "no output"),
            (CoreError::EmptyTree, "no elements"),
            (
                CoreError::DuplicateName {
                    name: "n1".to_string(),
                },
                "duplicate node name",
            ),
            (
                CoreError::NameNotFound {
                    name: "missing".to_string(),
                },
                "no node named",
            ),
            (CoreError::NegativeTime { time: -1.0 }, "negative"),
            (
                CoreError::NonPositiveRiseTime { rise_time: 0.0 },
                "strictly positive",
            ),
            (CoreError::CannotEditInput, "input node"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "message `{msg}` should contain `{needle}`"
            );
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<CoreError>();
    }
}
