//! The three characteristic times `T_P`, `T_De`, `T_Re` of an RC tree.
//!
//! Section III of the paper defines, for an output node `e` and capacitors
//! `k` of capacitance `C_k`:
//!
//! ```text
//! T_De = Σ_k R_ke · C_k                (Eq. 1 — the Elmore delay of output e)
//! T_P  = Σ_k R_kk · C_k                (Eq. 5 — identical for every output)
//! T_Re = ( Σ_k R_ke² · C_k ) / R_ee    (Eq. 6)
//! ```
//!
//! with `T_Re ≤ T_De ≤ T_P` (Eq. 7).  For RC trees that contain uniform
//! distributed lines the sums become integrals over the line capacitance;
//! the closed forms used here are derived in the module documentation of
//! [`crate::element`].
//!
//! Two independent algorithms are provided:
//!
//! * [`characteristic_times_direct`] — the straightforward "compute `R_ke`
//!   and `R_kk` for every capacitor" method of Section IV, whose cost per
//!   output is proportional to the number of elements times the tree depth
//!   (quadratic for a chain, as the paper notes);
//! * [`characteristic_times`] — a single-traversal method whose cost per
//!   output is linear in the number of elements, matching the complexity of
//!   the paper's constructive algorithm while working on an explicit tree
//!   rather than a wiring expression.
//!
//! The two must agree to floating-point accuracy; the test-suite and the
//! `algorithm_equivalence` integration tests enforce this, and the
//! [`crate::twoport`] algebra provides a third independent implementation
//! for chain-expressible networks.

use crate::error::{CoreError, Result};
use crate::resistance::shared_resistances_to;
use crate::tree::{NodeId, RcTree};
use crate::units::{Farads, Ohms, Seconds};

/// The three characteristic times of one output of an RC tree, together with
/// the path resistance `R_ee` used to normalize `T_Re`.
///
/// This is the complete "signature" from which every Penfield–Rubinstein
/// bound is evaluated (see [`crate::bounds`]).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CharacteristicTimes {
    /// `T_P = Σ R_kk C_k`: identical for every output of the tree.
    pub t_p: Seconds,
    /// `T_De = Σ R_ke C_k`: the Elmore delay of this output.
    pub t_d: Seconds,
    /// `T_Re = Σ R_ke² C_k / R_ee`: the rise-time constant of this output.
    pub t_r: Seconds,
    /// `R_ee`: resistance of the unique path between input and output.
    pub r_ee: Ohms,
    /// Total capacitance of the network (`C_T` of Section IV).
    pub total_cap: Farads,
}

impl CharacteristicTimes {
    /// Builds a signature from raw values.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidValue`] if any quantity is negative or not
    /// finite.
    pub fn new(
        t_p: Seconds,
        t_d: Seconds,
        t_r: Seconds,
        r_ee: Ohms,
        total_cap: Farads,
    ) -> Result<Self> {
        for (what, v) in [
            ("T_P", t_p.value()),
            ("T_D", t_d.value()),
            ("T_R", t_r.value()),
            ("R_ee", r_ee.value()),
            ("C_T", total_cap.value()),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(CoreError::InvalidValue { what, value: v });
            }
        }
        Ok(CharacteristicTimes {
            t_p,
            t_d,
            t_r,
            r_ee,
            total_cap,
        })
    }

    /// The Elmore delay `T_De` (first moment of the impulse response).
    pub fn elmore_delay(&self) -> Seconds {
        self.t_d
    }

    /// Checks the paper's Eq. (7) ordering `T_Re ≤ T_De ≤ T_P`, with a small
    /// relative tolerance for floating-point rounding.
    pub fn satisfies_ordering(&self) -> bool {
        let tol = 1e-9 * self.t_p.value().max(1e-300);
        self.t_r.value() <= self.t_d.value() + tol && self.t_d.value() <= self.t_p.value() + tol
    }
}

/// Characteristic times of `output`, computed by the direct per-capacitor
/// method of Section IV ("compute for each capacitor the appropriate `R_ke`
/// and `R_kk`").
///
/// The cost is `O(n · depth)` per output — quadratic in the worst case, as
/// the paper notes — which makes it a useful independent reference for the
/// linear-time methods.
///
/// # Errors
///
/// * [`CoreError::NodeNotFound`] if `output` is not a node of `tree`;
/// * [`CoreError::NoCapacitance`] if the tree carries no capacitance;
/// * [`CoreError::NoPathResistance`] if there is no resistance between the
///   input and `output` (then `T_Re` is undefined).
pub fn characteristic_times_direct(tree: &RcTree, output: NodeId) -> Result<CharacteristicTimes> {
    tree.check(output)?;
    let total_cap = tree.total_capacitance();
    if total_cap.is_zero() {
        return Err(CoreError::NoCapacitance);
    }
    let r_ee = tree.resistance_from_input(output)?;

    let mut t_p = 0.0_f64;
    let mut t_d = 0.0_f64;
    let mut t_r_num = 0.0_f64; // Σ R_ke² C_k

    for k in tree.node_ids() {
        // Lumped capacitor attached at node k.
        let cap = tree.capacitance(k)?.value();
        if cap > 0.0 {
            let r_kk = tree.resistance_from_input(k)?.value();
            let lca = tree.lowest_common_ancestor(k, output)?;
            let r_ke = tree.resistance_from_input(lca)?.value();
            t_p += r_kk * cap;
            t_d += r_ke * cap;
            t_r_num += r_ke * r_ke * cap;
        }

        // Distributed capacitance of the branch parent(k) → k.
        if let Some(branch) = tree.branch(k)? {
            let c_line = branch.capacitance().value();
            if c_line > 0.0 {
                let parent = tree.parent(k)?.expect("non-input node always has a parent");
                let r_parent = tree.resistance_from_input(parent)?.value();
                let r_line = branch.resistance().value();

                // T_P: every slice sees its own upstream resistance.
                t_p += c_line * (r_parent + r_line / 2.0);

                if tree.is_descendant(output, k)? {
                    // Output lies beyond the far end of the line: the common
                    // path includes the portion of the line up to the slice.
                    t_d += c_line * (r_parent + r_line / 2.0);
                    t_r_num +=
                        c_line * (r_parent * r_parent + r_parent * r_line + r_line * r_line / 3.0);
                } else {
                    // Paths diverge at or above the line's driving node.
                    let lca = tree.lowest_common_ancestor(parent, output)?;
                    let r_shared = tree.resistance_from_input(lca)?.value();
                    t_d += c_line * r_shared;
                    t_r_num += c_line * r_shared * r_shared;
                }
            }
        }
    }

    finish(t_p, t_d, t_r_num, r_ee, total_cap, output)
}

/// Characteristic times of `output`, computed in a single linear traversal.
///
/// One depth-first walk labels every node with its shared resistance
/// `R_ke` (see [`shared_resistances_to`]); the three sums then accumulate in
/// one pass over nodes and branches.  The asymptotic cost per output is
/// `O(n)`, matching the paper's constructive algorithm.
///
/// # Errors
///
/// Same conditions as [`characteristic_times_direct`].
pub fn characteristic_times(tree: &RcTree, output: NodeId) -> Result<CharacteristicTimes> {
    tree.check(output)?;
    let total_cap = tree.total_capacitance();
    if total_cap.is_zero() {
        return Err(CoreError::NoCapacitance);
    }
    let r_ee = tree.resistance_from_input(output)?;

    // R_ke for every node k, and R_kk via a prefix pass.
    let shared = shared_resistances_to(tree, output)?;
    let n = tree.node_count();
    let mut r_kk = vec![0.0_f64; n];
    let mut on_path = vec![false; n];
    for id in tree.path_from_input(output)? {
        on_path[id.index()] = true;
    }
    for id in tree.preorder() {
        if let Some(parent) = tree.parent(id)? {
            let r_branch = tree
                .branch(id)?
                .map(|b| b.resistance().value())
                .unwrap_or(0.0);
            r_kk[id.index()] = r_kk[parent.index()] + r_branch;
        }
    }

    let mut t_p = 0.0_f64;
    let mut t_d = 0.0_f64;
    let mut t_r_num = 0.0_f64;

    for id in tree.node_ids() {
        let i = id.index();
        let cap = tree.capacitance(id)?.value();
        if cap > 0.0 {
            let r_ke = shared[i].value();
            t_p += r_kk[i] * cap;
            t_d += r_ke * cap;
            t_r_num += r_ke * r_ke * cap;
        }
        if let Some(branch) = tree.branch(id)? {
            let c_line = branch.capacitance().value();
            if c_line > 0.0 {
                let parent = tree
                    .parent(id)?
                    .expect("non-input node always has a parent");
                let p = parent.index();
                let r_parent = r_kk[p];
                let r_line = branch.resistance().value();
                t_p += c_line * (r_parent + r_line / 2.0);
                if on_path[i] {
                    t_d += c_line * (r_parent + r_line / 2.0);
                    t_r_num +=
                        c_line * (r_parent * r_parent + r_parent * r_line + r_line * r_line / 3.0);
                } else {
                    let r_shared = shared[p].value();
                    t_d += c_line * r_shared;
                    t_r_num += c_line * r_shared * r_shared;
                }
            }
        }
    }

    finish(t_p, t_d, t_r_num, r_ee, total_cap, output)
}

/// Characteristic times of **every marked output** of the tree.
///
/// Returns `(output, times)` pairs in output order.
///
/// Runs on the [`BatchTimes`](crate::batch::BatchTimes) engine: one `O(n)`
/// sweep covers all `m` outputs, instead of the `O(n·m)` cost of calling
/// [`characteristic_times`] once per output.
///
/// # Errors
///
/// * [`CoreError::NoOutputs`] if the tree has no outputs marked;
/// * otherwise the same conditions as [`characteristic_times`].
pub fn characteristic_times_all(tree: &RcTree) -> Result<Vec<(NodeId, CharacteristicTimes)>> {
    if tree.outputs().next().is_none() {
        return Err(CoreError::NoOutputs);
    }
    let batch = crate::batch::BatchTimes::of(tree)?;
    tree.outputs()
        .map(|e| batch.times(e).map(|t| (e, t)))
        .collect()
}

fn finish(
    t_p: f64,
    t_d: f64,
    t_r_num: f64,
    r_ee: Ohms,
    total_cap: Farads,
    output: NodeId,
) -> Result<CharacteristicTimes> {
    let t_r = if t_r_num == 0.0 {
        // No capacitor shares any resistance with the output; T_R is zero
        // regardless of R_ee.
        0.0
    } else {
        if r_ee.is_zero() {
            return Err(CoreError::NoPathResistance { output });
        }
        t_r_num / r_ee.value()
    };
    CharacteristicTimes::new(
        Seconds::new(t_p),
        Seconds::new(t_d),
        Seconds::new(t_r),
        r_ee,
        total_cap,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RcTreeBuilder;

    fn single_lump(r: f64, c: f64) -> (RcTree, NodeId) {
        let mut b = RcTreeBuilder::new();
        let n = b.add_resistor(b.input(), "n", Ohms::new(r)).unwrap();
        b.add_capacitance(n, Farads::new(c)).unwrap();
        b.mark_output(n).unwrap();
        (b.build().unwrap(), n)
    }

    #[test]
    fn single_rc_lump_has_equal_times() {
        // One resistor feeding one capacitor: T_P = T_D = T_R = RC.
        let (tree, n) = single_lump(2.0, 3.0);
        let t = characteristic_times(&tree, n).unwrap();
        assert!((t.t_p.value() - 6.0).abs() < 1e-12);
        assert!((t.t_d.value() - 6.0).abs() < 1e-12);
        assert!((t.t_r.value() - 6.0).abs() < 1e-12);
        assert_eq!(t.r_ee, Ohms::new(2.0));
        assert!(t.satisfies_ordering());
    }

    #[test]
    fn single_uniform_line_matches_paper_constants() {
        // Paper, Section III: for a single uniform RC line T_P = T_D = RC/2
        // and T_R = RC/3.
        let mut b = RcTreeBuilder::new();
        let n = b
            .add_line(b.input(), "line", Ohms::new(4.0), Farads::new(6.0))
            .unwrap();
        b.mark_output(n).unwrap();
        let tree = b.build().unwrap();
        let t = characteristic_times(&tree, n).unwrap();
        let rc = 24.0;
        assert!((t.t_p.value() - rc / 2.0).abs() < 1e-12);
        assert!((t.t_d.value() - rc / 2.0).abs() < 1e-12);
        assert!((t.t_r.value() - rc / 3.0).abs() < 1e-12);
    }

    #[test]
    fn chain_without_side_branches_has_td_equal_tp() {
        // "For nonuniform RC lines (i.e., RC trees without side branches)
        // T_De = T_P" — paper, Section III.
        let mut b = RcTreeBuilder::new();
        let n1 = b.add_resistor(b.input(), "n1", Ohms::new(1.0)).unwrap();
        b.add_capacitance(n1, Farads::new(2.0)).unwrap();
        let n2 = b
            .add_line(n1, "n2", Ohms::new(3.0), Farads::new(4.0))
            .unwrap();
        b.add_capacitance(n2, Farads::new(5.0)).unwrap();
        let n3 = b.add_resistor(n2, "n3", Ohms::new(6.0)).unwrap();
        b.add_capacitance(n3, Farads::new(7.0)).unwrap();
        b.mark_output(n3).unwrap();
        let tree = b.build().unwrap();
        let t = characteristic_times(&tree, n3).unwrap();
        assert!((t.t_p.value() - t.t_d.value()).abs() < 1e-9 * t.t_p.value());
        assert!(t.satisfies_ordering());
    }

    #[test]
    fn side_branch_reduces_elmore_delay_below_tp() {
        let mut b = RcTreeBuilder::new();
        let stem = b.add_resistor(b.input(), "stem", Ohms::new(10.0)).unwrap();
        let out = b.add_resistor(stem, "out", Ohms::new(5.0)).unwrap();
        let side = b.add_resistor(stem, "side", Ohms::new(20.0)).unwrap();
        b.add_capacitance(out, Farads::new(1.0)).unwrap();
        b.add_capacitance(side, Farads::new(1.0)).unwrap();
        b.mark_output(out).unwrap();
        let tree = b.build().unwrap();
        let t = characteristic_times(&tree, out).unwrap();
        // Side-branch cap sees only the shared 10 Ω towards `out`.
        assert!((t.t_d.value() - (15.0 + 10.0)).abs() < 1e-12);
        // ... but its own full 30 Ω in T_P.
        assert!((t.t_p.value() - (15.0 + 30.0)).abs() < 1e-12);
        assert!(t.t_d < t.t_p);
        assert!(t.t_r < t.t_d);
    }

    #[test]
    fn direct_and_linear_methods_agree() {
        let mut b = RcTreeBuilder::new();
        let a = b
            .add_line(b.input(), "a", Ohms::new(15.0), Farads::new(1.5))
            .unwrap();
        b.add_capacitance(a, Farads::new(2.0)).unwrap();
        let s1 = b.add_resistor(a, "s1", Ohms::new(8.0)).unwrap();
        b.add_capacitance(s1, Farads::new(7.0)).unwrap();
        let s2 = b
            .add_line(s1, "s2", Ohms::new(2.0), Farads::new(0.5))
            .unwrap();
        b.add_capacitance(s2, Farads::new(0.25)).unwrap();
        let o = b
            .add_line(a, "o", Ohms::new(3.0), Farads::new(4.0))
            .unwrap();
        b.add_capacitance(o, Farads::new(9.0)).unwrap();
        b.mark_output(o).unwrap();
        b.mark_output(s2).unwrap();
        let tree = b.build().unwrap();
        for e in tree.outputs().collect::<Vec<_>>() {
            let fast = characteristic_times(&tree, e).unwrap();
            let slow = characteristic_times_direct(&tree, e).unwrap();
            assert!((fast.t_p.value() - slow.t_p.value()).abs() < 1e-9);
            assert!((fast.t_d.value() - slow.t_d.value()).abs() < 1e-9);
            assert!((fast.t_r.value() - slow.t_r.value()).abs() < 1e-9);
        }
    }

    #[test]
    fn tp_is_identical_across_outputs() {
        let mut b = RcTreeBuilder::new();
        let a = b.add_resistor(b.input(), "a", Ohms::new(4.0)).unwrap();
        let x = b.add_resistor(a, "x", Ohms::new(1.0)).unwrap();
        let y = b.add_resistor(a, "y", Ohms::new(9.0)).unwrap();
        b.add_capacitance(x, Farads::new(2.0)).unwrap();
        b.add_capacitance(y, Farads::new(3.0)).unwrap();
        b.mark_output(x).unwrap();
        b.mark_output(y).unwrap();
        let tree = b.build().unwrap();
        let all = characteristic_times_all(&tree).unwrap();
        assert_eq!(all.len(), 2);
        assert!((all[0].1.t_p.value() - all[1].1.t_p.value()).abs() < 1e-12);
    }

    #[test]
    fn no_capacitance_is_an_error() {
        let mut b = RcTreeBuilder::new();
        let n = b.add_resistor(b.input(), "n", Ohms::new(1.0)).unwrap();
        b.mark_output(n).unwrap();
        let tree = b.build().unwrap();
        assert!(matches!(
            characteristic_times(&tree, n),
            Err(CoreError::NoCapacitance)
        ));
    }

    #[test]
    fn output_with_no_path_resistance_is_an_error() {
        // A capacitor elsewhere but zero resistance between input and output.
        let mut b = RcTreeBuilder::new();
        let out = b
            .add_line(b.input(), "out", Ohms::ZERO, Farads::ZERO)
            .unwrap();
        let far = b.add_resistor(b.input(), "far", Ohms::new(5.0)).unwrap();
        b.add_capacitance(far, Farads::new(1.0)).unwrap();
        b.add_capacitance(out, Farads::new(1.0)).unwrap();
        b.mark_output(out).unwrap();
        let tree = b.build().unwrap();
        // Σ R_ke² C_k is zero here (no shared resistance), so T_R is simply 0.
        let t = characteristic_times(&tree, out).unwrap();
        assert_eq!(t.t_r, Seconds::ZERO);
        assert_eq!(t.t_d, Seconds::ZERO);
    }

    #[test]
    fn zero_path_resistance_with_shared_capacitance_errors() {
        // Capacitance at the input itself shares zero resistance; an output
        // connected by a zero-ohm branch to a resistive subtree is fine, but
        // here we force R_ee = 0 with nonzero Σ R_ke² C_k impossible, so we
        // instead check the NoOutputs path of the "all" helper.
        let mut b = RcTreeBuilder::new();
        let n = b.add_resistor(b.input(), "n", Ohms::new(1.0)).unwrap();
        b.add_capacitance(n, Farads::new(1.0)).unwrap();
        let tree = b.build().unwrap();
        assert!(matches!(
            characteristic_times_all(&tree),
            Err(CoreError::NoOutputs)
        ));
    }

    #[test]
    fn invalid_raw_values_rejected() {
        assert!(CharacteristicTimes::new(
            Seconds::new(-1.0),
            Seconds::ZERO,
            Seconds::ZERO,
            Ohms::ZERO,
            Farads::ZERO
        )
        .is_err());
        assert!(CharacteristicTimes::new(
            Seconds::new(f64::NAN),
            Seconds::ZERO,
            Seconds::ZERO,
            Ohms::ZERO,
            Farads::ZERO
        )
        .is_err());
    }

    #[test]
    fn elmore_delay_accessor() {
        let (tree, n) = single_lump(2.0, 3.0);
        let t = characteristic_times(&tree, n).unwrap();
        assert_eq!(t.elmore_delay(), t.t_d);
    }
}
