//! # rctree-par
//!
//! A hand-rolled scoped work-stealing thread pool for the multi-net layers
//! of the Penfield–Rubinstein reproduction.  Once each net costs one `O(n)`
//! sweep (the batch engine of `rctree-core`), a realistic deck of thousands
//! of nets is embarrassingly parallel — this crate is the runtime that
//! exploits that, end-to-end: SPEF deck parsing (`rctree-netlist`),
//! design-wide stage evaluation (`rctree-sta`), and the `deck_pipeline`
//! benchmark.
//!
//! It exists in lieu of [rayon](https://crates.io/crates/rayon) because this
//! build environment has no crates.io access; the API is deliberately a tiny
//! rayon-shaped subset so a later swap is mechanical.  See `README.md` in
//! this crate for the scheduling model and determinism guarantees.
//!
//! * [`scope`] — run a closure with a pool of scoped workers; spawned jobs
//!   may borrow the environment and are all joined before `scope` returns;
//! * [`par_map_indexed`] — order-preserving parallel map over a slice,
//!   bit-identical to the serial map for any worker count;
//! * [`global_pool`] / [`par_map_global`] — a persistent, lazily-started
//!   pool for `'static` (`Arc`-owned) jobs, reused across calls so that
//!   repeated small parallel regions (the ECO edit→re-query loop, a CLI
//!   session over many decks) stop paying thread startup;
//! * [`JobDeque`] — the per-worker steal-half deque underneath the scoped
//!   pool;
//! * [`available_parallelism`] / [`default_jobs`] — worker-count policy
//!   (`RCTREE_JOBS` overrides the hardware default).
//!
//! ```
//! let squares = rctree_par::par_map_indexed(4, &[1u64, 2, 3, 4], |_, x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod deque;
pub mod global;
pub mod pool;

pub use crate::deque::JobDeque;
pub use crate::global::{global_pool, par_map_global, GlobalPool};
pub use crate::pool::{par_map_indexed, scope, Scope};

/// Environment variable overriding the default worker count (used by CI to
/// force the parallel paths onto a fixed width).
pub const JOBS_ENV: &str = "RCTREE_JOBS";

/// The number of hardware threads available to this process (at least 1).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The default worker count for the analysis pipelines: the value of the
/// `RCTREE_JOBS` environment variable when it parses to a positive integer,
/// otherwise [`available_parallelism`].
pub fn default_jobs() -> usize {
    std::env::var(JOBS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&jobs| jobs >= 1)
        .unwrap_or_else(available_parallelism)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_is_positive() {
        assert!(available_parallelism() >= 1);
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<JobDeque<usize>>();
    }
}
