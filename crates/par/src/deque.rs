//! Per-worker job deques with steal-half semantics.
//!
//! Each worker owns one [`JobDeque`] and treats its *back* as a LIFO stack:
//! newly produced work is pushed there and popped from there, which keeps
//! the worker on recently touched (cache-warm) jobs.  Idle workers steal
//! from the *front* — the oldest, largest-granularity work — and take half
//! of the victim's queue in one lock acquisition, which amortises the cost
//! of stealing and spreads load in `O(log n)` steal operations instead of
//! one steal per job.
//!
//! The deque is a mutex-protected `VecDeque` rather than a lock-free
//! Chase–Lev deque: the workspace forbids `unsafe`, and the jobs this pool
//! schedules (whole-net timing sweeps, SPEF sections) are orders of
//! magnitude more expensive than an uncontended lock.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A mutex-protected work deque: owner pushes/pops at the back, thieves
/// steal half of the queue from the front.
#[derive(Debug, Default)]
pub struct JobDeque<T> {
    jobs: Mutex<VecDeque<T>>,
}

impl<T> JobDeque<T> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        JobDeque {
            jobs: Mutex::new(VecDeque::new()),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        // A poisoned deque only means a job panicked while another thread
        // held the lock; the queue itself is still structurally sound.
        self.jobs.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pushes a job at the owner (LIFO) end.
    pub fn push(&self, job: T) {
        self.locked().push_back(job);
    }

    /// Pops a job from the owner (LIFO) end.
    pub fn pop(&self) -> Option<T> {
        self.locked().pop_back()
    }

    /// Steals the older half of the queue (rounded up, so a single queued
    /// job can be stolen too) from the front.  Returns the stolen jobs in
    /// queue order; an empty vector means there was nothing to steal.
    pub fn steal_half(&self) -> Vec<T> {
        let mut jobs = self.locked();
        let take = jobs.len().div_ceil(2);
        jobs.drain(..take).collect()
    }

    /// Number of queued jobs (snapshot; may be stale immediately).
    pub fn len(&self) -> usize {
        self.locked().len()
    }

    /// Whether the deque is currently empty (snapshot; may be stale).
    pub fn is_empty(&self) -> bool {
        self.locked().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_end_is_lifo() {
        let d = JobDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn steal_takes_the_older_half_from_the_front() {
        let d = JobDeque::new();
        for i in 0..5 {
            d.push(i);
        }
        // ceil(5 / 2) = 3 oldest jobs leave in queue order.
        assert_eq!(d.steal_half(), vec![0, 1, 2]);
        assert_eq!(d.len(), 2);
        // The owner still sees its most recent job first.
        assert_eq!(d.pop(), Some(4));
    }

    #[test]
    fn steal_half_of_one_takes_it() {
        let d = JobDeque::new();
        d.push(7);
        assert_eq!(d.steal_half(), vec![7]);
        assert!(d.is_empty());
        assert!(d.steal_half().is_empty());
    }
}
