//! A persistent, lazily-started global worker pool.
//!
//! [`scope`](crate::scope) starts fresh OS threads for every call, which is
//! fine for one deck-sized analysis but wasteful for the edit→re-query loops
//! of the ECO flow, where `Design::apply_eco` may run thousands of times in
//! a session and each call's parallel region is small.  [`global_pool`]
//! amortises that: worker threads are spawned on first demand, parked on a
//! condvar while idle, and reused by every subsequent parallel region in
//! the process (`rctree-sta`'s design analysis, and through it the CLI
//! across decks and edit scripts).
//!
//! The trade-off against the scoped pool is ownership: this workspace
//! forbids `unsafe`, and safe Rust cannot hand a non-`'static` closure to
//! an already-running thread (only `std::thread::scope`'s join-before-return
//! proof makes borrowing sound).  Global-pool jobs therefore own their data
//! — in practice an `Arc` of the shared state, which is exactly how
//! `rctree-sta` now stores its design core.  Borrow-based callers
//! (`parse_spef_deck` slicing one big input string) stay on the scoped
//! pool.
//!
//! Determinism matches [`par_map_indexed`](crate::par_map_indexed): results
//! are written into slots addressed by input index and concatenated in
//! index order, so the output is bit-identical to the serial map for every
//! width, even though chunks are claimed dynamically by whichever worker is
//! free.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// A unit of work owned by the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    /// Worker threads started so far (they never exit).
    workers: usize,
}

/// The process-wide persistent worker pool; obtain it with [`global_pool`].
pub struct GlobalPool {
    state: Mutex<QueueState>,
    work: Condvar,
}

impl std::fmt::Debug for GlobalPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalPool")
            .field("workers", &self.workers())
            .finish()
    }
}

static POOL: OnceLock<GlobalPool> = OnceLock::new();

/// The process-wide persistent pool, started lazily on first use.
pub fn global_pool() -> &'static GlobalPool {
    POOL.get_or_init(|| GlobalPool {
        state: Mutex::new(QueueState::default()),
        work: Condvar::new(),
    })
}

impl GlobalPool {
    fn locked(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of worker threads currently alive (monotonically grows to the
    /// largest width any caller has requested).
    pub fn workers(&self) -> usize {
        self.locked().workers
    }

    /// Lazily starts workers until at least `target` are alive.  The
    /// worker count is reserved under the lock but the (slow) OS spawns
    /// happen outside it, so concurrent sessions keep enqueuing and
    /// dequeuing while the pool grows.
    fn ensure_workers(&'static self, target: usize) {
        let (first, last) = {
            let mut st = self.locked();
            let first = st.workers + 1;
            if st.workers < target {
                st.workers = target;
            }
            (first, st.workers)
        };
        for id in first..=last {
            std::thread::Builder::new()
                .name(format!("rctree-global-{id}"))
                .spawn(move || self.worker_loop())
                .expect("spawning a global-pool worker thread");
        }
    }

    fn worker_loop(&'static self) {
        loop {
            let job = {
                let mut st = self.locked();
                loop {
                    if let Some(job) = st.jobs.pop_front() {
                        break job;
                    }
                    st = self.work.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            // Sessions handle their own panics; this guard only keeps a
            // stray unwind from killing a pooled worker.
            let _ = catch_unwind(AssertUnwindSafe(job));
        }
    }

    /// Queues one owned job on the pool (fire-and-forget; see
    /// [`par_map_global`] for the join-and-collect pattern).
    pub fn spawn(&'static self, job: impl FnOnce() + Send + 'static) {
        self.locked().jobs.push_back(Box::new(job));
        self.work.notify_one();
    }
}

/// One parallel-map session: dynamic chunk claiming, index-addressed result
/// slots, panic capture, and a completion latch the caller waits on.
struct Session<S, U, F> {
    state: Arc<S>,
    f: F,
    len: usize,
    chunk: usize,
    next: AtomicUsize,
    slots: Vec<Mutex<Vec<U>>>,
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl<S, U, F> Session<S, U, F>
where
    F: Fn(usize, &S) -> U,
{
    /// Claims and runs chunks until none are left.  Returns once this
    /// runner can make no further progress.
    fn run(&self) {
        loop {
            let ci = self.next.fetch_add(1, Ordering::Relaxed);
            if ci >= self.slots.len() {
                return;
            }
            let start = ci * self.chunk;
            let end = (start + self.chunk).min(self.len);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                (start..end).map(|i| (self.f)(i, &self.state)).collect()
            }));
            match outcome {
                Ok(out) => {
                    *self.slots[ci].lock().unwrap_or_else(|e| e.into_inner()) = out;
                }
                Err(payload) => {
                    let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                    slot.get_or_insert(payload);
                }
            }
            let mut remaining = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
            *remaining -= 1;
            if *remaining == 0 {
                self.done.notify_all();
            }
        }
    }
}

/// How many chunks each worker is seeded with (matches the scoped pool's
/// [`par_map_indexed`](crate::par_map_indexed) granularity policy).
const CHUNKS_PER_WORKER: usize = 4;

/// Order-preserving parallel map over indices `0..len` of a shared
/// `Arc`-owned state, executed on the persistent [`global_pool`].
///
/// `f(i, &state)` is evaluated for every index; results come back in index
/// order, **bit-identical** to the serial loop for any `jobs` width and any
/// scheduling (slots are addressed by index).  `jobs` bounds the
/// concurrency of this call: `jobs - 1` pool workers plus the calling
/// thread, which participates instead of idling.  Inputs too small to
/// amortise the handoff (fewer than two items per worker) run serially on
/// the caller.
///
/// # Ownership caveat
///
/// The `jobs - 1` runner jobs queued on the pool each hold a clone of the
/// session (and therefore of `state`).  All *chunks* are guaranteed
/// complete when this returns, but a runner that never got dequeued (the
/// caller drained every chunk first) may sit in the pool queue briefly
/// afterwards, keeping `state`'s strong count above one.  Callers that
/// rely on unique ownership after the call (e.g. a subsequent
/// [`Arc::make_mut`]) should hand the pool a [`std::sync::Weak`] and
/// upgrade per item instead of sharing the `Arc` itself.
///
/// # Panics
///
/// Re-throws the first panic raised inside `f` after every chunk has
/// settled, mirroring [`scope`](crate::scope).
pub fn par_map_global<S, U, F>(jobs: usize, state: Arc<S>, len: usize, f: F) -> Vec<U>
where
    S: Send + Sync + 'static,
    U: Send + 'static,
    F: Fn(usize, &S) -> U + Send + Sync + 'static,
{
    let jobs = jobs.max(1).min(len.max(1));
    if jobs == 1 || len < 2 * jobs {
        return (0..len).map(|i| f(i, &state)).collect();
    }

    let chunk = len.div_ceil(jobs * CHUNKS_PER_WORKER).max(1);
    let n_chunks = len.div_ceil(chunk);
    let session = Arc::new(Session {
        state,
        f,
        len,
        chunk,
        next: AtomicUsize::new(0),
        slots: (0..n_chunks).map(|_| Mutex::new(Vec::new())).collect(),
        remaining: Mutex::new(n_chunks),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });

    let pool = global_pool();
    pool.ensure_workers(jobs - 1);
    for _ in 0..jobs - 1 {
        let session = Arc::clone(&session);
        pool.spawn(move || session.run());
    }
    // The caller is the final runner, then waits out any stragglers.
    session.run();
    {
        let mut remaining = session.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *remaining > 0 {
            remaining = session
                .done
                .wait(remaining)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    let payload = session
        .panic
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }

    let mut result = Vec::with_capacity(len);
    for slot in &session.slots {
        result.append(&mut slot.lock().unwrap_or_else(|e| e.into_inner()));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_map_matches_serial_for_every_width() {
        let items: Vec<u64> = (0..311).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| i as u64 * x)
            .collect();
        let shared = Arc::new(items);
        for jobs in [1, 2, 3, 7, 16] {
            let par = par_map_global(jobs, Arc::clone(&shared), shared.len(), |i, items| {
                i as u64 * items[i]
            });
            assert_eq!(par, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn pool_threads_persist_across_calls() {
        // The pool is process-global and other tests in this binary use it
        // concurrently, so only monotone properties are asserted: workers
        // exist after the first wide call and the count never shrinks.
        let shared = Arc::new((0..64u64).collect::<Vec<_>>());
        let _ = par_map_global(4, Arc::clone(&shared), 64, |i, v| v[i]);
        let after_first = global_pool().workers();
        assert!(after_first >= 3, "got {after_first}");
        let _ = par_map_global(4, Arc::clone(&shared), 64, |i, v| v[i] * 2);
        let _ = par_map_global(2, shared, 64, |i, v| v[i] * 3);
        assert!(global_pool().workers() >= after_first);
    }

    #[test]
    fn tiny_inputs_fall_back_to_the_caller() {
        let shared = Arc::new(vec![5u32, 6, 7]);
        assert_eq!(
            par_map_global(8, Arc::clone(&shared), 3, |i, v| v[i] + 1),
            vec![6, 7, 8]
        );
        assert!(par_map_global(4, shared, 0, |i, v: &Vec<u32>| v[i]).is_empty());
    }

    #[test]
    fn panic_in_a_chunk_propagates_after_the_session_drains() {
        let shared = Arc::new((0..128u64).collect::<Vec<_>>());
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_map_global(4, shared, 128, |i, v| {
                if i == 77 {
                    panic!("boom");
                }
                v[i]
            })
        }));
        assert!(result.is_err());
        // The pool survives the panic and keeps serving.
        let shared = Arc::new(vec![1u64; 64]);
        let sum: u64 = par_map_global(4, shared, 64, |i, v| v[i]).iter().sum();
        assert_eq!(sum, 64);
    }
}
