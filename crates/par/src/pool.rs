//! The scoped work-stealing pool: [`scope`], [`Scope::spawn`] and
//! [`par_map_indexed`].
//!
//! # Scheduling model
//!
//! [`scope`] starts `workers` threads for the duration of one closure.
//! Jobs spawned through the [`Scope`] handle are distributed round-robin
//! across per-worker [`JobDeque`]s; each worker pops its own deque LIFO and,
//! when empty, sweeps the other deques and steals *half* of the first
//! non-empty queue it finds (see [`crate::deque`]).  Idle workers sleep on a
//! condvar guarded by a version counter, so a quiet pool costs nothing.
//!
//! # Determinism
//!
//! The pool never reorders *results*: [`par_map_indexed`] writes every
//! element into a slot chosen by its input index and concatenates the slots
//! in index order, so its output is byte-for-byte identical to the serial
//! map regardless of worker count or steal interleaving (provided the
//! mapped function itself is deterministic).  Scheduling only affects *when*
//! a job runs, never where its result lands.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::deque::JobDeque;

/// A unit of work: a boxed closure that may borrow from the environment of
/// the enclosing [`scope`] call.
type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Bookkeeping shared by the scope owner and every worker.
#[derive(Debug)]
struct State {
    /// Jobs spawned but not yet finished.
    pending: usize,
    /// Bumped on every spawn; lets a worker detect "work arrived between my
    /// failed sweep and my wait" without missing a wakeup.
    version: u64,
    /// Set once the scope closure has returned and all jobs finished (or the
    /// closure panicked); workers exit at the next dispatch point.
    shutdown: bool,
}

struct Shared<'env> {
    deques: Vec<JobDeque<Job<'env>>>,
    state: Mutex<State>,
    /// Workers wait here for new work.
    work: Condvar,
    /// The scope owner waits here for `pending` to reach zero.
    done: Condvar,
    /// First panic payload raised by a job; re-thrown by [`scope`].
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl<'env> Shared<'env> {
    fn new(workers: usize) -> Self {
        Shared {
            deques: (0..workers).map(|_| JobDeque::new()).collect(),
            state: Mutex::new(State {
                pending: 0,
                version: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn locked_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pops from the worker's own deque, else steals half of the first
    /// non-empty victim deque (scanning from the worker's right neighbour so
    /// contention spreads instead of piling on worker 0).
    fn find_job(&self, me: usize) -> Option<Job<'env>> {
        if let Some(job) = self.deques[me].pop() {
            return Some(job);
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            let mut stolen = self.deques[victim].steal_half();
            if let Some(job) = stolen.pop() {
                // Keep the rest of the loot runnable locally (and stealable
                // by others); run the newest stolen job first.
                for job in stolen {
                    self.deques[me].push(job);
                }
                return Some(job);
            }
        }
        None
    }

    /// Runs one job, decrementing `pending` even if the job panics, and
    /// stashing the first panic payload for the scope owner to re-throw.
    fn run_job(&self, job: Job<'env>) {
        let outcome = catch_unwind(AssertUnwindSafe(job));
        if let Err(payload) = outcome {
            let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
            slot.get_or_insert(payload);
        }
        let mut st = self.locked_state();
        st.pending -= 1;
        if st.pending == 0 {
            self.done.notify_all();
        }
    }

    fn worker(&self, me: usize) {
        loop {
            if self.locked_state().shutdown {
                return;
            }
            if let Some(job) = self.find_job(me) {
                self.run_job(job);
                continue;
            }
            // Nothing found: record the spawn version, re-sweep once (a job
            // may have been pushed between the sweep and now), then sleep
            // until the version moves.
            let seen = {
                let st = self.locked_state();
                if st.shutdown {
                    return;
                }
                st.version
            };
            if let Some(job) = self.find_job(me) {
                self.run_job(job);
                continue;
            }
            let mut st = self.locked_state();
            while !st.shutdown && st.version == seen {
                st = self.work.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

/// Handle for spawning jobs into an active [`scope`].
///
/// Spawned jobs may borrow anything that outlives the `scope` call (the
/// `'env` lifetime); the scope does not return until every spawned job has
/// finished.  Jobs run on the pool's worker threads, never on the caller's.
pub struct Scope<'pool, 'env> {
    shared: &'pool Shared<'env>,
    next: AtomicUsize,
}

impl std::fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("workers", &self.shared.deques.len())
            .finish()
    }
}

impl<'env> Scope<'_, 'env> {
    /// Queues a job on the pool.  Jobs are seeded round-robin across the
    /// per-worker deques; load imbalance is fixed up by stealing.
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, job: F) {
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.shared.deques.len();
        {
            // `pending` must be visible before the job can complete, and the
            // push must land before the version bump that re-sweeping
            // workers key off, so both happen under the state lock.
            let mut st = self.shared.locked_state();
            st.pending += 1;
            self.shared.deques[slot].push(Box::new(job));
            st.version = st.version.wrapping_add(1);
        }
        self.shared.work.notify_one();
    }
}

/// Ensures workers are released even if the scope closure panics: without
/// the shutdown flag they would sleep on the condvar forever and
/// `std::thread::scope` would never finish joining them.
struct ShutdownGuard<'pool, 'env>(&'pool Shared<'env>);

impl Drop for ShutdownGuard<'_, '_> {
    fn drop(&mut self) {
        let mut st = self.0.locked_state();
        st.shutdown = true;
        st.version = st.version.wrapping_add(1);
        drop(st);
        self.0.work.notify_all();
    }
}

/// Runs `f` with a [`Scope`] backed by `workers` freshly spawned threads,
/// waits for every spawned job to finish, then tears the threads down and
/// returns `f`'s result.
///
/// A panic inside a spawned job does not poison the pool: remaining jobs
/// still run, and the first panic payload is re-thrown from `scope` itself
/// once the pool has drained.
///
/// # Panics
///
/// Panics if `workers` is zero (a pool with no workers could never run a
/// job), or to propagate a panic from `f` or from a spawned job.
pub fn scope<'env, F, R>(workers: usize, f: F) -> R
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    assert!(workers > 0, "scope requires at least one worker");
    let shared = Shared::new(workers);
    let result = std::thread::scope(|ts| {
        for me in 0..workers {
            let shared = &shared;
            ts.spawn(move || shared.worker(me));
        }
        let guard = ShutdownGuard(&shared);
        let handle = Scope {
            shared: &shared,
            next: AtomicUsize::new(0),
        };
        let result = f(&handle);
        // Wait for the pool to drain, then release the workers.
        let mut st = shared.locked_state();
        while st.pending > 0 {
            st = shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        drop(st);
        drop(guard);
        result
    });
    // Re-throw a job panic only after the thread scope has joined, so worker
    // threads are never leaked even on the panic path.
    let payload = shared
        .panic
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
    result
}

/// How many jobs each worker is seeded with in [`par_map_indexed`]: more
/// than one so that stealing has granularity to work with, few enough that
/// per-job overhead stays negligible.
const CHUNKS_PER_WORKER: usize = 4;

/// Applies `f` to every element of `items` (with its index) and returns the
/// results in input order, sharding the work over `jobs` workers.
///
/// The output is **bit-identical** to
/// `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` for any
/// deterministic `f`, for every `jobs` value: results are written into
/// per-chunk slots addressed by input index and concatenated in index
/// order, so scheduling can never reorder them.
///
/// Inputs too small to amortise thread startup (fewer than two items per
/// worker) take a chunked serial fallback path on the calling thread.
pub fn par_map_indexed<T, U, F>(jobs: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs == 1 || n < 2 * jobs {
        // Chunked-index fallback: same chunk walk as the parallel path,
        // executed in place.
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let chunk = n.div_ceil(jobs * CHUNKS_PER_WORKER).max(1);
    let n_chunks = n.div_ceil(chunk);
    let slots: Vec<Mutex<Vec<U>>> = (0..n_chunks).map(|_| Mutex::new(Vec::new())).collect();
    let f = &f;

    scope(jobs, |s| {
        for (ci, slot) in slots.iter().enumerate() {
            let start = ci * chunk;
            let end = (start + chunk).min(n);
            s.spawn(move || {
                let out: Vec<U> = items[start..end]
                    .iter()
                    .enumerate()
                    .map(|(k, x)| f(start + k, x))
                    .collect();
                *slot.lock().unwrap_or_else(|e| e.into_inner()) = out;
            });
        }
    });

    let mut result = Vec::with_capacity(n);
    for slot in slots {
        result.extend(slot.into_inner().unwrap_or_else(|e| e.into_inner()));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_every_spawned_job() {
        let counter = AtomicU64::new(0);
        scope(3, |s| {
            for i in 0..100u64 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), (0..100).sum());
    }

    #[test]
    fn scope_returns_the_closure_result() {
        let out = scope(2, |_| 42);
        assert_eq!(out, 42);
    }

    #[test]
    fn jobs_can_borrow_the_environment() {
        let data = vec![1, 2, 3, 4];
        let sum = AtomicU64::new(0);
        scope(2, |s| {
            for x in &data {
                let sum = &sum;
                s.spawn(move || {
                    sum.fetch_add(*x, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn par_map_matches_serial_for_every_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| i as u64 * x)
            .collect();
        for jobs in [1, 2, 3, 7, 16] {
            let par = par_map_indexed(jobs, &items, |i, x| i as u64 * x);
            assert_eq!(par, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn par_map_handles_tiny_and_empty_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_indexed(4, &empty, |_, x| *x).is_empty());
        assert_eq!(par_map_indexed(4, &[9], |i, x| (i, *x)), vec![(0, 9)]);
        assert_eq!(par_map_indexed(4, &[1, 2, 3], |_, x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn par_map_results_are_in_index_order_not_completion_order() {
        // Earlier indices sleep longer, so completion order is roughly the
        // reverse of index order; the output must still be index-ordered.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map_indexed(4, &items, |i, x| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            *x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn job_panic_propagates_after_the_pool_drains() {
        let ran = AtomicU64::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            scope(2, |s| {
                s.spawn(|| panic!("boom"));
                for _ in 0..10 {
                    let ran = &ran;
                    s.spawn(move || {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err());
        // The panic did not cancel the other jobs.
        assert_eq!(ran.load(Ordering::Relaxed), 10);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        scope(0, |_| ());
    }
}
