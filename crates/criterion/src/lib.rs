//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This build environment has no access to crates.io, so the workspace ships
//! a minimal API-compatible subset of criterion: `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`], benchmark groups with
//! [`Throughput`] annotations, and [`Bencher::iter`].  Measurement is plain
//! wall-clock sampling (warm-up, then a fixed number of timed samples with
//! median/mean reporting) — adequate for the order-of-magnitude and scaling
//! claims the benches assert, not for microsecond-level regression tracking.
//!
//! Environment knobs:
//!
//! * `BENCH_SAMPLE_MS` — target milliseconds of measurement per benchmark
//!   (default 300);
//! * `BENCH_WARMUP_MS` — target milliseconds of warm-up (default 100).
//!
//! Swapping back to real criterion requires only restoring the crates.io
//! dependency; no bench source changes are needed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of elements or bytes processed per iteration, used to derive a
/// throughput figure alongside the per-iteration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many abstract elements (reported as elem/s).
    Elements(u64),
    /// Iterations process this many bytes (reported as B/s).
    Bytes(u64),
}

/// Identifier of one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    sample_target: Duration,
    warmup_target: Duration,
    /// Filled in by [`Bencher::iter`]: (mean, median, iterations).
    result: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    mean: Duration,
    median: Duration,
    iterations: u64,
}

impl Bencher {
    fn new(sample_target: Duration, warmup_target: Duration) -> Self {
        Bencher {
            sample_target,
            warmup_target,
            result: None,
        }
    }

    /// Times `routine`, first warming up, then sampling until the target
    /// measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() >= self.warmup_target {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        // Split the measurement budget into ~31 samples of >= 1 iteration.
        const SAMPLES: usize = 31;
        let budget = self.sample_target.as_secs_f64();
        let iters_per_sample =
            ((budget / SAMPLES as f64 / per_iter.max(1e-12)).round() as u64).max(1);
        let mut times = Vec::with_capacity(SAMPLES);
        let mut total = Duration::ZERO;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            times.push(elapsed.as_secs_f64() / iters_per_sample as f64);
            total += elapsed;
        }
        times.sort_by(f64::total_cmp);
        let mean = total.as_secs_f64() / (SAMPLES as u64 * iters_per_sample) as f64;
        self.result = Some(Sample {
            mean: Duration::from_secs_f64(mean),
            median: Duration::from_secs_f64(times[SAMPLES / 2]),
            iterations: SAMPLES as u64 * iters_per_sample,
        });
    }
}

/// The top-level harness handle passed to every registered bench function.
#[derive(Debug)]
pub struct Criterion {
    sample_target: Duration,
    warmup_target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = |var: &str, default_ms: u64| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .map_or(Duration::from_millis(default_ms), Duration::from_millis)
        };
        Criterion {
            sample_target: ms("BENCH_SAMPLE_MS", 300),
            warmup_target: ms("BENCH_WARMUP_MS", 100),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, self.sample_target, self.warmup_target, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput
/// annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for reporting until changed.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the measurement budget for this group (accepted for
    /// criterion compatibility; the shim derives iteration counts itself).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one parameterised benchmark with its input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.throughput,
            self.criterion.sample_target,
            self.criterion.warmup_target,
            |b| f(b, input),
        );
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(
            &label,
            self.throughput,
            self.criterion.sample_target,
            self.criterion.warmup_target,
            |b| f(b),
        );
        self
    }

    /// Ends the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnOnce(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    sample_target: Duration,
    warmup_target: Duration,
    f: F,
) {
    let mut bencher = Bencher::new(sample_target, warmup_target);
    f(&mut bencher);
    match bencher.result {
        Some(sample) => {
            let median_s = sample.median.as_secs_f64();
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => format!("  {:.3e} elem/s", n as f64 / median_s),
                Throughput::Bytes(n) => format!("  {:.3e} B/s", n as f64 / median_s),
            });
            println!(
                "{label:<60} median {:>12}  mean {:>12}  ({} iters){}",
                format_duration(sample.median),
                format_duration(sample.mean),
                sample.iterations,
                rate.unwrap_or_default(),
            );
        }
        None => println!("{label:<60} (no measurement: Bencher::iter never called)"),
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Registers bench functions under a group name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the registered groups, mirroring criterion's
/// macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_sample() {
        let mut c = Criterion {
            sample_target: Duration::from_millis(5),
            warmup_target: Duration::from_millis(1),
        };
        // Should not panic and should print a sample line.
        c.bench_function("smoke", |b| b.iter(|| black_box(2u64 + 2)));
    }

    #[test]
    fn group_with_throughput_runs() {
        let mut c = Criterion {
            sample_target: Duration::from_millis(5),
            warmup_target: Duration::from_millis(1),
        };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("f", 10), &10usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats_with_parameter() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}
