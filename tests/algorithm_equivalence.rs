//! Cross-validation of the three independent characteristic-time algorithms
//! (direct per-capacitor, linear single-traversal, constructive two-port)
//! and of the Elmore-delay fast path, across the workload generators.

use penfield_rubinstein::core::elmore::elmore_delays;
use penfield_rubinstein::core::moments::{characteristic_times, characteristic_times_direct};
use penfield_rubinstein::core::units::{Farads, Ohms};
use penfield_rubinstein::workloads::htree::{h_tree, HTreeParams};
use penfield_rubinstein::workloads::ladder::{distributed_line, rc_ladder};
use penfield_rubinstein::workloads::pla::PlaLine;
use penfield_rubinstein::workloads::random::RandomTreeConfig;

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-30)
}

fn assert_algorithms_agree(tree: &penfield_rubinstein::core::RcTree, label: &str) {
    let elmore = elmore_delays(tree).expect("analysable");
    for out in tree.outputs().collect::<Vec<_>>() {
        let fast = characteristic_times(tree, out).expect("fast");
        let slow = characteristic_times_direct(tree, out).expect("direct");
        assert!(
            rel(fast.t_p.value(), slow.t_p.value()) < 1e-9,
            "{label} T_P"
        );
        assert!(
            rel(fast.t_d.value(), slow.t_d.value()) < 1e-9,
            "{label} T_D"
        );
        assert!(
            rel(fast.t_r.value(), slow.t_r.value()) < 1e-9,
            "{label} T_R"
        );
        assert!(
            rel(elmore[out.index()].value(), fast.t_d.value()) < 1e-9,
            "{label} Elmore fast path"
        );
        assert!(fast.satisfies_ordering(), "{label} Eq. (7) ordering");
    }
}

#[test]
fn agreement_on_pla_lines() {
    for minterms in [2, 10, 50, 100] {
        let (tree, _) = PlaLine::new(minterms).tree();
        assert_algorithms_agree(&tree, &format!("PLA {minterms} minterms"));
    }
}

#[test]
fn agreement_on_h_trees() {
    for levels in 1..=5 {
        let (tree, _) = h_tree(HTreeParams {
            levels,
            ..HTreeParams::default()
        });
        assert_algorithms_agree(&tree, &format!("H-tree {levels} levels"));
    }
}

#[test]
fn agreement_on_random_trees() {
    for seed in 0..25 {
        let tree = RandomTreeConfig {
            nodes: 40,
            ..RandomTreeConfig::default()
        }
        .generate(seed);
        assert_algorithms_agree(&tree, &format!("random seed {seed}"));
    }
}

#[test]
fn agreement_on_ladders_and_lines() {
    let (line, _) = distributed_line(Ohms::new(100.0), Farads::new(1e-12));
    assert_algorithms_agree(&line, "distributed line");
    for sections in [1, 4, 64] {
        let (ladder, _) = rc_ladder(Ohms::new(100.0), Farads::new(1e-12), sections);
        assert_algorithms_agree(&ladder, &format!("ladder {sections} sections"));
    }
}

#[test]
fn ladder_moments_converge_to_the_distributed_line() {
    // The paper's closed-form distributed-line handling (RC/2, RC/3) is the
    // n → ∞ limit of the lumped ladder; verify first-order convergence.
    let (line, line_out) = distributed_line(Ohms::new(50.0), Farads::new(2e-12));
    let exact = characteristic_times(&line, line_out).unwrap();
    let mut errors = Vec::new();
    for sections in [4, 8, 16, 32, 64] {
        let (ladder, out) = rc_ladder(Ohms::new(50.0), Farads::new(2e-12), sections);
        let t = characteristic_times(&ladder, out).unwrap();
        errors.push(rel(t.t_d.value(), exact.t_d.value()));
    }
    for pair in errors.windows(2) {
        // Halving the section size should roughly halve the error.
        assert!(pair[1] < pair[0] * 0.7, "errors {errors:?}");
    }
}
