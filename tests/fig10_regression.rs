//! Regression test against every number printed in Figure 10 of the paper.
//!
//! The paper's Figure 10 lists, for the example network of Figure 7, the
//! delay bounds `T_MIN`/`T_MAX` at nine thresholds and the voltage bounds
//! `V_MIN`/`V_MAX` at eleven times.  Reproducing those values end-to-end
//! (network construction → characteristic times → bound formulas) is the
//! primary numeric check of this reproduction.

use penfield_rubinstein::core::moments::{characteristic_times, characteristic_times_direct};
use penfield_rubinstein::core::units::Seconds;
use penfield_rubinstein::netlist::parse_expr;
use penfield_rubinstein::workloads::fig7::{
    figure7_expr, figure7_tree, FIG10_DELAY_TABLE, FIG10_VOLTAGE_TABLE,
};

/// Relative tolerance matching the five significant digits printed in the
/// paper (plus a small absolute floor for the 0.0 entry).
fn assert_close(actual: f64, paper: f64, what: &str) {
    let tol = (paper.abs() * 1.5e-3).max(0.06);
    assert!(
        (actual - paper).abs() < tol,
        "{what}: computed {actual}, paper prints {paper}"
    );
}

#[test]
fn delay_table_matches_paper() {
    let (tree, out) = figure7_tree();
    let times = characteristic_times(&tree, out).expect("analysable network");
    for &(threshold, t_min, t_max) in FIG10_DELAY_TABLE {
        let bounds = times.delay_bounds(threshold).expect("valid threshold");
        assert_close(bounds.lower.value(), t_min, &format!("T_MIN({threshold})"));
        assert_close(bounds.upper.value(), t_max, &format!("T_MAX({threshold})"));
    }
}

#[test]
fn voltage_table_matches_paper() {
    let (tree, out) = figure7_tree();
    let times = characteristic_times(&tree, out).expect("analysable network");
    for &(time, v_min, v_max) in FIG10_VOLTAGE_TABLE {
        let bounds = times
            .voltage_bounds(Seconds::new(time))
            .expect("valid time");
        assert!(
            (bounds.lower - v_min).abs() < 6e-4,
            "V_MIN({time}): computed {}, paper prints {v_min}",
            bounds.lower
        );
        assert!(
            (bounds.upper - v_max).abs() < 6e-4,
            "V_MAX({time}): computed {}, paper prints {v_max}",
            bounds.upper
        );
    }
}

#[test]
fn all_three_construction_routes_give_the_same_tables() {
    // Route 1: explicit tree + linear-time algorithm.
    let (tree, out) = figure7_tree();
    let a = characteristic_times(&tree, out).unwrap();
    // Route 2: explicit tree + direct per-capacitor algorithm.
    let b = characteristic_times_direct(&tree, out).unwrap();
    // Route 3: the paper's own constructive two-port algebra.
    let c = figure7_expr().evaluate().characteristic_times().unwrap();
    // Route 4: the textual Eq. (18) notation through the parser.
    let d = parse_expr(
        "(URC 15 0) WC (URC 0 2) WC (WB ((URC 8 0) WC (URC 0 7))) WC (URC 3 4) WC (URC 0 9)",
    )
    .unwrap()
    .evaluate()
    .characteristic_times()
    .unwrap();

    for (label, t) in [("direct", &b), ("two-port", &c), ("parsed", &d)] {
        assert!((t.t_p.value() - a.t_p.value()).abs() < 1e-9, "{label} T_P");
        assert!((t.t_d.value() - a.t_d.value()).abs() < 1e-9, "{label} T_D");
        assert!((t.t_r.value() - a.t_r.value()).abs() < 1e-9, "{label} T_R");
    }

    // And therefore identical Figure 10 rows.
    for &(threshold, _, _) in FIG10_DELAY_TABLE {
        let ba = a.delay_bounds(threshold).unwrap();
        let bc = c.delay_bounds(threshold).unwrap();
        assert!((ba.lower.value() - bc.lower.value()).abs() < 1e-9);
        assert!((ba.upper.value() - bc.upper.value()).abs() < 1e-9);
    }
}

#[test]
fn certification_verdicts_match_the_table() {
    // The OK function should pass for budgets above T_MAX, fail below T_MIN
    // and be indeterminate in between, for every row of the table.
    let (tree, out) = figure7_tree();
    let times = characteristic_times(&tree, out).unwrap();
    for &(threshold, t_min, t_max) in FIG10_DELAY_TABLE.iter().skip(1) {
        let pass = times
            .certify(threshold, Seconds::new(t_max * 1.01))
            .unwrap();
        assert!(pass.is_pass(), "threshold {threshold}");
        let fail = times
            .certify(threshold, Seconds::new(t_min * 0.99))
            .unwrap();
        assert!(fail.is_fail(), "threshold {threshold}");
        let mid = times
            .certify(threshold, Seconds::new(0.5 * (t_min + t_max)))
            .unwrap();
        assert!(mid.is_indeterminate(), "threshold {threshold}");
    }
}
