//! Equivalence of the incremental (ECO) engine against the
//! rebuild-and-rerun oracle: seeded edit streams over **every** workload
//! generator, asserting after **every** edit that the live
//! `EditableTree`/`IncrementalTimes` state matches a from-scratch
//! `RcTree::rebuild()` + `BatchTimes::of` to 1e-9 relative at every node —
//! and that `Design::apply_eco` matches a full `Design::analyze` of the
//! edited design bit for bit.

use penfield_rubinstein::core::batch::BatchTimes;
use penfield_rubinstein::core::incremental::{EditableTree, TreeEdit};
use penfield_rubinstein::core::tree::RcTree;
use penfield_rubinstein::core::units::{Farads, Ohms, Seconds};
use penfield_rubinstein::sta::{CellLibrary, Design, EcoEdit, EcoEditKind};
use penfield_rubinstein::workloads::eco::{EcoStream, EcoStreamParams};
use penfield_rubinstein::workloads::htree::HTreeParams;
use penfield_rubinstein::workloads::ladder::{distributed_line, rc_ladder, repeated_chain};
use penfield_rubinstein::workloads::{
    figure3_tree, figure7_tree, h_tree, representative_mos_fanout, Figure3Values, PlaLine,
    RandomTreeConfig, SpefDeckParams,
};

/// One tree from every generator family in `rctree-workloads`.
fn generators() -> Vec<(String, RcTree)> {
    let mut trees: Vec<(String, RcTree)> = vec![
        ("fig3".into(), figure3_tree(Figure3Values::default()).0),
        ("fig7".into(), figure7_tree().0),
        (
            "htree".into(),
            h_tree(HTreeParams {
                levels: 4,
                ..HTreeParams::default()
            })
            .0,
        ),
        (
            "ladder".into(),
            rc_ladder(Ohms::new(100.0), Farads::from_pico(1.0), 24).0,
        ),
        (
            "line".into(),
            distributed_line(Ohms::new(500.0), Farads::from_pico(0.4)).0,
        ),
        (
            "chain".into(),
            repeated_chain(Ohms::new(10.0), Farads::from_femto(50.0), 16),
        ),
        ("pla".into(), PlaLine::new(12).tree().0),
        ("mos".into(), representative_mos_fanout().0),
    ];
    for (seed, nodes, chains) in [(1u64, 24usize, true), (2, 40, false)] {
        trees.push((
            format!("random{seed}"),
            RandomTreeConfig {
                nodes,
                prefer_chains: chains,
                ..RandomTreeConfig::default()
            }
            .generate(seed),
        ));
    }
    let deck = SpefDeckParams {
        nets: 3,
        ..SpefDeckParams::default()
    };
    for (name, tree) in deck.trees(77) {
        trees.push((format!("deck/{name}"), tree));
    }
    trees
}

/// The acceptance bar: incremental state equals a from-scratch rebuild +
/// `BatchTimes` oracle to 1e-9 relative at every node.
///
/// An absolute floor of `1e-12 × <whole-tree scale>` backs the relative
/// comparison: the lazy difference-array structure stores `±Δ` pairs in
/// separate accumulators, so a node whose true value is *exactly zero* can
/// carry an `eps`-scale rounding residue (~1e-24 in these workloads) that
/// no relative tolerance can absorb, while every physically meaningful
/// value sits many orders of magnitude above the floor.
fn assert_matches_oracle(eco: &EditableTree, context: &str) {
    let rebuilt = eco.tree().rebuild();
    assert_eq!(
        rebuilt.preorder(),
        eco.tree().preorder(),
        "{context}: patched pre-order drifted from a rebuild"
    );
    let oracle = BatchTimes::of(&rebuilt).expect("edited trees stay analysable");
    let time_scale = oracle.t_p().value();
    let r_scale = rebuilt.total_resistance().value().max(1e-30);
    let c_scale = rebuilt.total_capacitance().value();
    for node in rebuilt.node_ids() {
        let want = oracle.times(node).unwrap();
        let got = eco.characteristic_times(node).unwrap();
        for (label, g, w, scale) in [
            ("T_P", got.t_p.value(), want.t_p.value(), time_scale),
            ("T_D", got.t_d.value(), want.t_d.value(), time_scale),
            ("T_R", got.t_r.value(), want.t_r.value(), time_scale),
            ("R_ee", got.r_ee.value(), want.r_ee.value(), r_scale),
            (
                "C_T",
                got.total_cap.value(),
                want.total_cap.value(),
                c_scale,
            ),
        ] {
            let tol = 1e-9 * w.abs().max(1e-3 * scale);
            assert!(
                (g - w).abs() <= tol,
                "{context}, node {node}: {label} {g} vs oracle {w}"
            );
        }
    }
}

#[test]
fn incremental_matches_rebuild_oracle_on_every_generator() {
    for (label, tree) in generators() {
        for stream_seed in [5u64, 6] {
            let mut eco = EditableTree::new(tree.clone());
            let mut stream = EcoStream::new(EcoStreamParams::default(), stream_seed);
            for step in 0..40 {
                let edit = stream.next_edit(eco.tree());
                eco.apply(&edit)
                    .unwrap_or_else(|e| panic!("{label} seed {stream_seed} step {step}: {e}"));
                assert_matches_oracle(&eco, &format!("{label}, seed {stream_seed}, step {step}"));
            }
        }
    }
}

#[test]
fn caps_only_streams_match_the_oracle_too() {
    // The benchmark's hot path (single-capacitor tweaks, the shallowest
    // dirty region) gets its own dense sweep.
    for (label, tree) in generators() {
        let mut eco = EditableTree::new(tree);
        let mut stream = EcoStream::new(EcoStreamParams::caps_only(), 99);
        for step in 0..60 {
            let edit = stream.next_edit(eco.tree());
            eco.apply(&edit).expect("cap edits are always valid");
            if step % 10 == 9 {
                assert_matches_oracle(&eco, &format!("{label}, caps-only, step {step}"));
            }
        }
        assert_matches_oracle(&eco, &format!("{label}, caps-only, final"));
    }
}

/// Translates a generated id-based edit into the name-based design-level
/// vocabulary.
fn to_eco_edit(net: &str, tree: &RcTree, edit: &TreeEdit) -> EcoEdit {
    let name = |node: &penfield_rubinstein::core::tree::NodeId| {
        tree.name(*node).expect("generated node exists").to_string()
    };
    let kind = match edit {
        TreeEdit::SetCap { node, cap } => EcoEditKind::SetCap {
            node: name(node),
            cap: *cap,
        },
        TreeEdit::SetBranch { node, branch } => EcoEditKind::SetBranch {
            node: name(node),
            branch: *branch,
        },
        TreeEdit::GraftSubtree {
            parent,
            via,
            subtree,
        } => EcoEditKind::Graft {
            parent: name(parent),
            via: *via,
            subtree: subtree.clone(),
        },
        TreeEdit::PruneSubtree { node } => EcoEditKind::Prune { node: name(node) },
    };
    EcoEdit {
        net: net.to_string(),
        kind,
    }
}

#[test]
fn design_apply_eco_matches_full_analyze() {
    let nets = SpefDeckParams {
        nets: 10,
        ..SpefDeckParams::default()
    }
    .trees(123);
    let mut design = Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", nets.clone())
        .expect("generated deck builds");
    let budget = Seconds::from_nano(100.0);
    let threshold = 0.5;

    // Shadow copies of the net interconnects drive the edit generation
    // (the design does not expose its trees).  Prunes are excluded here:
    // every leaf of a generated deck net is a sink, and `apply_eco`
    // correctly refuses to prune a node a sink hangs on (covered by the
    // sta unit tests).
    let mut shadows: Vec<(String, EditableTree)> = nets
        .into_iter()
        .map(|(name, tree)| (name, EditableTree::new(tree)))
        .collect();
    let params = EcoStreamParams {
        p_prune: 0.0,
        ..EcoStreamParams::default()
    };
    let mut stream = EcoStream::new(params, 2024);

    for round in 0..30 {
        let (net_name, shadow) = &mut shadows[round % 10];
        let edit = stream.next_edit(shadow.tree());
        let eco_edit = to_eco_edit(net_name, shadow.tree(), &edit);
        shadow.apply(&edit).expect("generated edits are valid");

        let incremental = design
            .apply_eco(std::slice::from_ref(&eco_edit), threshold, budget)
            .unwrap_or_else(|e| panic!("round {round}: {e} applying {eco_edit:?}"));
        let full = design
            .analyze(threshold, budget)
            .expect("edited design analyses");
        assert_eq!(incremental, full, "round {round}");
    }
}
