//! Equivalence of the O(n) batch engine with the per-output oracles.
//!
//! [`BatchTimes`] must agree with `characteristic_times_direct` (the
//! paper's straightforward per-capacitor method, kept as an independent
//! oracle) to 1e-9 relative for **every output of every workload
//! generator** — ladders, distributed lines, H-trees, the paper's Figure 3
//! and Figure 7 networks, PLA lines, the MOS fan-out, and a seeded sweep of
//! random trees — and the Eq. (7) ordering `T_Re ≤ T_De ≤ T_P` must hold at
//! every node, not just at the marked outputs.

use penfield_rubinstein::core::batch::BatchTimes;
use penfield_rubinstein::core::moments::{characteristic_times, characteristic_times_direct};
use penfield_rubinstein::core::tree::RcTree;
use penfield_rubinstein::core::units::{Farads, Ohms};
use penfield_rubinstein::workloads::fig3::{figure3_tree, Figure3Values};
use penfield_rubinstein::workloads::fig7::figure7_tree;
use penfield_rubinstein::workloads::htree::{h_tree, HTreeParams};
use penfield_rubinstein::workloads::ladder::{distributed_line, rc_ladder};
use penfield_rubinstein::workloads::mos_net::representative_mos_fanout;
use penfield_rubinstein::workloads::pla::PlaLine;
use penfield_rubinstein::workloads::random::RandomTreeConfig;
use penfield_rubinstein::workloads::rng::Rng;

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-30)
}

/// Checks the batch engine against both per-output oracles on every node of
/// `tree`, plus the Eq. (7) ordering.
fn assert_batch_matches(tree: &RcTree, label: &str) {
    let batch = BatchTimes::of(tree).expect("analysable");
    assert_eq!(batch.node_count(), tree.node_count());
    for node in tree.node_ids() {
        let got = batch.times(node).expect("valid node");
        let direct = characteristic_times_direct(tree, node).expect("direct oracle");
        let linear = characteristic_times(tree, node).expect("linear oracle");
        for (g, want) in [
            (got.t_p.value(), direct.t_p.value()),
            (got.t_d.value(), direct.t_d.value()),
            (got.t_r.value(), direct.t_r.value()),
            (got.t_p.value(), linear.t_p.value()),
            (got.t_d.value(), linear.t_d.value()),
            (got.t_r.value(), linear.t_r.value()),
        ] {
            assert!(rel(g, want) < 1e-9, "{label}: node {node}: {g} vs {want}");
        }
        assert_eq!(got.r_ee, direct.r_ee, "{label}: node {node}");
        assert!(got.satisfies_ordering(), "{label}: node {node}");
    }
}

#[test]
fn ladders_and_lines_match() {
    for sections in [1usize, 2, 7, 64] {
        let (tree, _) = rc_ladder(Ohms::new(150.0), Farads::new(2e-12), sections);
        assert_batch_matches(&tree, &format!("ladder[{sections}]"));
    }
    let (line, _) = distributed_line(Ohms::new(500.0), Farads::new(1e-12));
    assert_batch_matches(&line, "distributed_line");
}

#[test]
fn h_trees_match() {
    for levels in [1usize, 3, 6] {
        let (tree, _) = h_tree(HTreeParams {
            levels,
            ..HTreeParams::default()
        });
        assert_batch_matches(&tree, &format!("htree[{levels}]"));
    }
}

#[test]
fn paper_networks_match() {
    let (fig3, _) = figure3_tree(Figure3Values::default());
    assert_batch_matches(&fig3, "figure3");
    let (fig7, _) = figure7_tree();
    assert_batch_matches(&fig7, "figure7");
    let (mos, _) = representative_mos_fanout();
    assert_batch_matches(&mos, "mos_fanout");
}

#[test]
fn pla_lines_match() {
    for minterms in [2usize, 10, 40] {
        let (tree, _) = PlaLine::new(minterms).tree();
        assert_batch_matches(&tree, &format!("pla[{minterms}]"));
    }
}

#[test]
fn random_trees_match() {
    let mut rng = Rng::from_seed(0xBA7C4);
    for case in 0..64u64 {
        let cfg = RandomTreeConfig {
            nodes: 2 + rng.index(60),
            line_probability: rng.uniform(),
            capacitor_probability: rng.range_f64(0.3, 1.0),
            prefer_chains: rng.chance(0.5),
            ..RandomTreeConfig::default()
        };
        let tree = cfg.generate(rng.next_u64());
        assert_batch_matches(&tree, &format!("random[{case}]"));
    }
}

#[test]
fn batch_agrees_with_characteristic_times_all() {
    // The `characteristic_times_all` convenience wrapper (now itself backed
    // by the batch engine) must stay consistent with direct batch queries.
    let (tree, _) = h_tree(HTreeParams::default());
    let batch = BatchTimes::of(&tree).expect("analysable");
    let all =
        penfield_rubinstein::core::moments::characteristic_times_all(&tree).expect("analysable");
    assert_eq!(all.len(), tree.outputs().count());
    for (node, times) in all {
        assert_eq!(times, batch.times(node).expect("valid node"));
    }
}
