//! Cross-crate netlist tests: SPICE and SPEF ingestion feeding the analysis
//! and simulation pipelines, and writer/parser round trips on generated
//! workloads.

use penfield_rubinstein::core::moments::characteristic_times;
use penfield_rubinstein::core::units::Seconds;
use penfield_rubinstein::netlist::{parse_expr, parse_spef_net, parse_spice, write_spice};
use penfield_rubinstein::sim::modal::ModalStepResponse;
use penfield_rubinstein::sim::network::LumpedNetwork;
use penfield_rubinstein::workloads::htree::{h_tree, HTreeParams};
use penfield_rubinstein::workloads::pla::PlaLine;
use penfield_rubinstein::workloads::random::RandomTreeConfig;

#[test]
fn spice_deck_of_figure7_reproduces_figure10_first_row() {
    let deck = r"
* Figure 7 network
R1   in  n1  15
C1   n1  0   2
RB   n1  ns  8
CB   ns  0   7
U1   n1  n2  3 4
C2   n2  0   9
.output n2
";
    let tree = parse_spice(deck).expect("valid deck");
    let out = tree.node_by_name("n2").unwrap();
    let t = characteristic_times(&tree, out).unwrap();
    let b = t.delay_bounds(0.1).unwrap();
    assert!((b.upper.value() - 68.167).abs() < 0.05);
    let v = t.voltage_bounds(Seconds::new(20.0)).unwrap();
    assert!((v.upper - 0.18138).abs() < 5e-4);
}

#[test]
fn generated_workloads_round_trip_through_the_spice_writer() {
    let workloads: Vec<(penfield_rubinstein::core::RcTree, &str)> = vec![
        (PlaLine::new(20).tree().0, "PLA"),
        (
            h_tree(HTreeParams {
                levels: 3,
                ..HTreeParams::default()
            })
            .0,
            "H-tree",
        ),
        (
            RandomTreeConfig {
                nodes: 25,
                ..RandomTreeConfig::default()
            }
            .generate(11),
            "random",
        ),
    ];
    for (tree, label) in workloads {
        let deck = write_spice(&tree, label);
        let reparsed = parse_spice(&deck).expect("writer output parses");
        assert_eq!(reparsed.node_count(), tree.node_count(), "{label}");
        assert!(
            (reparsed.total_capacitance().value() - tree.total_capacitance().value()).abs()
                < 1e-9 * tree.total_capacitance().value().max(1e-30),
            "{label}"
        );
        // Characteristic times survive the round trip for every output.
        for out in tree.outputs().collect::<Vec<_>>() {
            let name = tree.name(out).unwrap();
            let out2 = reparsed.node_by_name(name).unwrap();
            let a = characteristic_times(&tree, out).unwrap();
            let b = characteristic_times(&reparsed, out2).unwrap();
            let rel = |x: f64, y: f64| (x - y).abs() / y.abs().max(1e-30);
            // The writer prints with engineering prefixes (finite decimal
            // digits), so allow a small formatting round-off.
            assert!(rel(a.t_p.value(), b.t_p.value()) < 1e-6, "{label} T_P");
            assert!(rel(a.t_d.value(), b.t_d.value()) < 1e-6, "{label} T_D");
            assert!(rel(a.t_r.value(), b.t_r.value()) < 1e-6, "{label} T_R");
        }
    }
}

#[test]
fn spef_net_feeds_both_bounds_and_simulation() {
    let spef = r#"
*SPEF "IEEE 1481-1998"
*R_UNIT 1 OHM
*C_UNIT 1 PF

*D_NET clk_local 0.035
*CONN
*I clkbuf:Z I
*P ff1:CK O
*P ff2:CK O
*CAP
1 t1 0.005
2 ff1:CK 0.013
3 ff2:CK 0.013
4 t2 0.004
*RES
1 clkbuf:Z t1 120
2 t1 ff1:CK 80
3 t1 t2 60
4 t2 ff2:CK 40
*END
"#;
    let net = parse_spef_net(spef, "clk_local").expect("valid SPEF");
    assert!((net.tree.total_capacitance().value() - 0.035e-12).abs() < 1e-18);

    // Bounds for both flops.
    let ff1 = net.tree.node_by_name("ff1:CK").unwrap();
    let ff2 = net.tree.node_by_name("ff2:CK").unwrap();
    let t1 = characteristic_times(&net.tree, ff1).unwrap();
    let t2 = characteristic_times(&net.tree, ff2).unwrap();
    assert!(t1.satisfies_ordering());
    assert!(t2.satisfies_ordering());

    // Exact simulation brackets them.
    let lumped = LumpedNetwork::from_tree(&net.tree, 4).unwrap();
    let modal = ModalStepResponse::new(&lumped).unwrap();
    for (node, times) in [(ff1, &t1), (ff2, &t2)] {
        let idx = lumped.index_of(node).unwrap().unwrap();
        let crossing = modal.crossing_time(idx, 0.5).unwrap();
        let bounds = times.delay_bounds(0.5).unwrap();
        assert!(crossing >= bounds.lower.value() - 1e-15);
        assert!(crossing <= bounds.upper.value() + 1e-15);
    }
}

#[test]
fn expression_notation_and_spice_agree_on_the_pla_line() {
    // The PLA generator exposes both representations; write the tree out as
    // SPICE, re-read it, and compare against the expression evaluation.
    let line = PlaLine::new(16);
    let (tree, out) = line.tree();
    let deck = write_spice(&tree, "pla 16");
    let reparsed = parse_spice(&deck).unwrap();
    let out_name = tree.name(out).unwrap();
    let t_spice =
        characteristic_times(&reparsed, reparsed.node_by_name(out_name).unwrap()).unwrap();
    let t_expr = line.expr().evaluate().characteristic_times().unwrap();
    let rel = |x: f64, y: f64| (x - y).abs() / y.abs().max(1e-30);
    assert!(rel(t_spice.t_p.value(), t_expr.t_p.value()) < 1e-6);
    assert!(rel(t_spice.t_d.value(), t_expr.t_d.value()) < 1e-6);
    assert!(rel(t_spice.t_r.value(), t_expr.t_r.value()) < 1e-6);
}

#[test]
fn textual_expression_matches_paper_tables() {
    let expr = parse_expr(
        "(URC 15 0) WC (URC 0 2) WC (WB ((URC 8 0) WC (URC 0 7))) WC (URC 3 4) WC (URC 0 9)",
    )
    .unwrap();
    let times = expr.evaluate().characteristic_times().unwrap();
    let bounds = times.delay_bounds(0.9).unwrap();
    assert!((bounds.lower.value() - 723.66).abs() < 0.05);
    assert!((bounds.upper.value() - 988.5).abs() < 0.6);
}
