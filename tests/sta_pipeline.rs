//! End-to-end static-timing pipeline tests: SPEF-extracted interconnect,
//! cell library, stage analysis and multi-stage certification, with the
//! exact simulator as the referee for single stages.

use penfield_rubinstein::core::units::{Farads, Ohms, Seconds};
use penfield_rubinstein::netlist::parse_spice;
use penfield_rubinstein::sim::modal::ModalStepResponse;
use penfield_rubinstein::sim::network::LumpedNetwork;
use penfield_rubinstein::sta::{
    analyze_stage, prepend_driver, CellLibrary, Design, Driver, Load, Net, Sink,
};
use penfield_rubinstein::workloads::htree::{h_tree, HTreeParams};

#[test]
fn stage_bounds_bracket_exact_crossing_for_spice_net() {
    let deck = r"
* extracted fan-out net
U1 in   a   150 0.02p
U2 a    b   300 0.05p
R3 a    c   80
C3 c    0   0.01p
.output b c
";
    let net = parse_spice(deck).unwrap();
    let b_node = net.node_by_name("b").unwrap();
    let c_node = net.node_by_name("c").unwrap();
    let loads = vec![
        (b_node, Farads::from_pico(0.013)),
        (c_node, Farads::from_pico(0.013)),
    ];
    let driver = Ohms::new(2_000.0);
    let stage = analyze_stage(driver, &net, &loads, 0.5).unwrap();

    // Exact check: rebuild the augmented tree and simulate it.
    let (augmented, map) = prepend_driver(driver, &net, &loads).unwrap();
    let lumped = LumpedNetwork::from_tree(&augmented, 16).unwrap();
    let modal = ModalStepResponse::new(&lumped).unwrap();
    for sink in &stage.sinks {
        let mapped = map[sink.node.index()];
        let idx = lumped.index_of(mapped).unwrap().unwrap();
        let crossing = modal.crossing_time(idx, 0.5).unwrap();
        assert!(
            crossing >= sink.bounds.lower.value() * 0.995 - 1e-15,
            "{}: exact {crossing} below lower bound {}",
            sink.name,
            sink.bounds.lower
        );
        assert!(
            crossing <= sink.bounds.upper.value() * 1.005 + 1e-15,
            "{}: exact {crossing} above upper bound {}",
            sink.name,
            sink.bounds.upper
        );
    }
}

#[test]
fn clock_tree_design_certifies_against_budget() {
    // A buffer driving an H-tree whose leaves are primary outputs.
    let (htree, leaves) = h_tree(HTreeParams {
        levels: 3,
        ..HTreeParams::default()
    });
    let mut design = Design::new(CellLibrary::nmos_1981());
    design.add_instance("clkbuf", "superbuffer").unwrap();

    // Primary input to the buffer through a short wire.
    let mut b = penfield_rubinstein::core::builder::RcTreeBuilder::new();
    b.add_line(b.input(), "load", Ohms::new(25.0), Farads::from_femto(5.0))
        .unwrap();
    design
        .add_net(Net {
            name: "n_in".into(),
            driver: Driver::PrimaryInput,
            interconnect: b.build().unwrap(),
            sinks: vec![Sink {
                node: "load".into(),
                load: Load::Instance("clkbuf".into()),
            }],
        })
        .unwrap();

    // The H-tree itself, driven by the buffer, leaves as primary outputs.
    let sinks: Vec<Sink> = leaves
        .iter()
        .map(|&leaf| Sink {
            node: htree.name(leaf).unwrap().to_string(),
            load: Load::PrimaryOutput(format!("ff_{}", htree.name(leaf).unwrap())),
        })
        .collect();
    design
        .add_net(Net {
            name: "n_clk".into(),
            driver: Driver::Instance("clkbuf".into()),
            interconnect: htree.clone(),
            sinks,
        })
        .unwrap();

    let report = design.analyze(0.9, Seconds::from_nano(10.0)).unwrap();
    assert_eq!(report.endpoints.len(), leaves.len());
    // Symmetric tree: every endpoint has (numerically) the same arrival.
    let first = report.endpoints[0].arrival;
    for e in &report.endpoints {
        assert!((e.arrival.max.value() - first.max.value()).abs() < 1e-12 * first.max.value());
    }
    assert!(report.certification().is_pass());
    assert!(report.worst_slack().value() > 0.0);

    // An aggressive budget cannot be certified.
    let tight = design
        .analyze(0.9, report.endpoints[0].arrival.min * 0.5)
        .unwrap();
    assert!(tight.certification().is_fail());
}

#[test]
fn library_drive_strength_trades_off_as_expected() {
    // Upsizing the driver must reduce the certified worst arrival of a
    // wire-dominated net, and the improvement must be visible through the
    // whole pipeline (library -> stage -> report).
    let lib = CellLibrary::nmos_1981();
    let wire = {
        let mut b = penfield_rubinstein::core::builder::RcTreeBuilder::new();
        b.add_line(b.input(), "load", Ohms::new(500.0), Farads::from_pico(0.3))
            .unwrap();
        b.build().unwrap()
    };
    let mut arrivals = Vec::new();
    for cell in ["inv_1x", "inv_4x", "buf_8x"] {
        let mut design = Design::new(lib.clone());
        design.add_instance("u_drv", cell).unwrap();
        design
            .add_net(Net {
                name: "n_in".into(),
                driver: Driver::PrimaryInput,
                interconnect: {
                    let mut b = penfield_rubinstein::core::builder::RcTreeBuilder::new();
                    b.add_resistor(b.input(), "load", Ohms::new(1.0)).unwrap();
                    b.build().unwrap()
                },
                sinks: vec![Sink {
                    node: "load".into(),
                    load: Load::Instance("u_drv".into()),
                }],
            })
            .unwrap();
        design
            .add_net(Net {
                name: "n_out".into(),
                driver: Driver::Instance("u_drv".into()),
                interconnect: wire.clone(),
                sinks: vec![Sink {
                    node: "load".into(),
                    load: Load::PrimaryOutput("po".into()),
                }],
            })
            .unwrap();
        let report = design.analyze(0.5, Seconds::from_nano(100.0)).unwrap();
        arrivals.push((cell, report.endpoints[0].arrival.max));
    }
    // Wire delay shrinks with drive strength; intrinsic delays differ by
    // less, so the net interconnect-limited arrival must be ordered.
    let inv1 = arrivals[0].1;
    let inv4 = arrivals[1].1;
    assert!(inv4 < inv1, "{arrivals:?}");
}
