//! Streaming/whole-text seam equivalence: `parse_spef_read` must return
//! **byte-identical** results (and errors) to `parse_spef_deck` on the
//! same bytes, for every chunk size.
//!
//! Sweeping chunk sizes of 1..=17 bytes places a chunk boundary at every
//! byte offset of each fixture, so every seam is exercised: mid-line,
//! mid-token, mid-`*D_NET` section, between the `\r` and `\n` of a CRLF
//! pair, and at end of input with and without a trailing newline.

use penfield_rubinstein::netlist::{parse_spef_deck, NetlistError, SpefNet};
use penfield_rubinstein::workloads::deck::{spef_deck, SpefDeckParams};
use rctree_netlist::stream::SpefReader;

/// Chunk sizes that cover every byte boundary of small fixtures plus a
/// couple of larger strides.
fn chunk_sweep() -> Vec<usize> {
    let mut sizes: Vec<usize> = (1..=17).collect();
    sizes.extend([64, 4096, 1 << 20]);
    sizes
}

/// Streams `text` at every chunk size and checks exact agreement —
/// parsed nets and errors alike — with the whole-text deck parser.
fn assert_stream_matches(text: &str) {
    let want: Result<Vec<SpefNet>, NetlistError> = parse_spef_deck(text, 2);
    for chunk in chunk_sweep() {
        let got = SpefReader::with_chunk_size(text.as_bytes(), chunk).parse_all(2);
        assert_eq!(got, want, "chunk size {chunk} diverged on:\n{text}");
    }
}

fn small_deck() -> String {
    spef_deck(
        &SpefDeckParams {
            nets: 9,
            ..SpefDeckParams::default()
        },
        1234,
    )
}

#[test]
fn generated_deck_streams_identically_at_every_seam() {
    assert_stream_matches(&small_deck());
}

#[test]
fn crlf_line_endings_stream_identically() {
    assert_stream_matches(&small_deck().replace('\n', "\r\n"));
}

#[test]
fn missing_trailing_newline_streams_identically() {
    let deck = small_deck();
    assert_stream_matches(deck.trim_end_matches('\n'));
    // ... and with CRLF endings.
    let crlf = deck.replace('\n', "\r\n");
    assert_stream_matches(crlf.trim_end_matches("\r\n"));
}

#[test]
fn missing_end_streams_identically() {
    // Drop the final `*END` so the last section runs to end of input; the
    // error must still be reported at that section's `*D_NET` header.
    let deck = small_deck();
    let truncated = deck.trim_end_matches('\n').trim_end_matches("*END");
    assert!(truncated.len() < deck.len(), "fixture must end with *END");
    assert_stream_matches(truncated);
    assert!(matches!(
        parse_spef_deck(truncated, 1),
        Err(NetlistError::Parse { .. })
    ));
}

#[test]
fn unit_directives_between_sections_stream_identically() {
    let text = "\
*D_NET a 1\n*CONN\n*I drv I\n*P x O\n*CAP\n1 x 1\n*RES\n1 drv x 5\n*END\n\
*R_UNIT 1 KOHM\n*C_UNIT 1 FF\n\
*D_NET b 1\n*CONN\n*I drv I\n*P y O\n*CAP\n1 y 2\n*RES\n1 drv y 7\n*END\n";
    assert_stream_matches(text);
}

#[test]
fn section_error_then_scan_error_prefers_the_scan_error() {
    // The whole-text path scans the entire document before parsing any
    // section, so the malformed `*R_UNIT` after the broken section wins.
    // The streaming path must replicate that ordering even though it
    // encounters (and fails) the section first.
    let text = "\
*D_NET a 1\n*CONN\n*I drv I\n*CAP\n1 x bogus\n*RES\n1 drv x 5\n*END\n\
*R_UNIT 1 PARSEC\n";
    assert_stream_matches(text);
    match parse_spef_deck(text, 1) {
        Err(NetlistError::Parse { line, token, .. }) => {
            assert_eq!(line, 9, "the scan error's line, not the section's");
            assert_eq!(token.as_deref(), Some("PARSEC"));
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn section_error_alone_is_reported_as_is() {
    let text = "\
*D_NET a 1\n*CONN\n*I drv I\n*CAP\n1 x bogus\n*RES\n1 drv x 5\n*END\n\
*D_NET b 1\n*CONN\n*I drv I\n*CAP\n1 y 2\n*RES\n1 drv y 7\n*END\n";
    assert_stream_matches(text);
    match parse_spef_deck(text, 1) {
        Err(NetlistError::Parse { line, token, .. }) => {
            assert_eq!(line, 5);
            assert_eq!(token.as_deref(), Some("bogus"));
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn in_body_stray_headers_stream_identically() {
    // A stray `*D_NET`-looking line inside an unterminated body belongs to
    // that body on both paths.
    assert_stream_matches("*D_NET outer 1\n*CONN\n*I drv I\n*D_NET inner 2\n*CAP\n1 x 1\n");
}

#[test]
fn empty_and_comment_only_documents_stream_identically() {
    assert_stream_matches("");
    assert_stream_matches("// nothing here\n");
    assert_stream_matches("*SPEF \"IEEE 1481-1998\"\n\n// still nothing\n");
}

#[test]
fn incremental_pull_api_yields_document_order() {
    let deck = small_deck();
    let want = parse_spef_deck(&deck, 1).unwrap();
    let mut reader = SpefReader::with_chunk_size(deck.as_bytes(), 11);
    let mut got = Vec::new();
    while let Some(batch) = reader.next_nets(1).unwrap() {
        assert!(!batch.is_empty());
        got.extend(batch);
    }
    assert_eq!(got, want);
    assert_eq!(reader.next_nets(1).unwrap(), None, "reader stays done");
}
