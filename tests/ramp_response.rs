//! Cross-validation of the ramp-excitation extension (Section VI remark on
//! "arbitrary excitation by use of the superposition integral") against the
//! transient simulator driven by the same ramp.

use penfield_rubinstein::core::moments::characteristic_times;
use penfield_rubinstein::core::ramp::RampResponse;
use penfield_rubinstein::core::units::Seconds;
use penfield_rubinstein::sim::network::LumpedNetwork;
use penfield_rubinstein::sim::transient::{simulate, InputSource, Method, TransientOptions};
use penfield_rubinstein::workloads::fig7::figure7_tree;
use penfield_rubinstein::workloads::random::RandomTreeConfig;

/// Tolerance covering line discretization plus quadrature error of the ramp
/// bounds (both far smaller than the analytic bound widths).
const TOL: f64 = 1e-2;

fn assert_ramp_bounds_hold(
    tree: &penfield_rubinstein::core::RcTree,
    rise_fraction: f64,
    label: &str,
) {
    let net = LumpedNetwork::from_tree(tree, 8).expect("convertible");
    for out in tree.outputs().collect::<Vec<_>>() {
        let times = characteristic_times(tree, out).expect("analysable");
        if times.t_d.is_zero() {
            continue;
        }
        let rise = times.t_p.value() * rise_fraction;
        let ramp = RampResponse::new(times, Seconds::new(rise)).expect("positive rise time");

        let t_stop = times.t_p.value() * 8.0 + rise;
        let result = simulate(
            &net,
            InputSource::Ramp { rise_time: rise },
            TransientOptions::new(t_stop / 4000.0, t_stop).with_method(Method::Trapezoidal),
        )
        .expect("stable simulation");
        let Some(idx) = net.index_of(out).expect("known node") else {
            continue;
        };
        let wave = result.waveform(idx).expect("in range");

        for i in 1..=30 {
            let t = t_stop * i as f64 / 30.0;
            let exact = wave.value_at(t);
            let b = ramp
                .voltage_bounds(Seconds::new(t))
                .expect("non-negative time");
            assert!(
                exact >= b.lower - TOL,
                "{label}: ramp response {exact} below lower bound {} at t={t}",
                b.lower
            );
            assert!(
                exact <= b.upper + TOL,
                "{label}: ramp response {exact} above upper bound {} at t={t}",
                b.upper
            );
        }

        // Delay bounds bracket the simulated crossing for mid thresholds.
        for threshold in [0.3, 0.5, 0.7] {
            let crossing = wave.first_crossing(threshold).expect("reaches threshold");
            let bounds = ramp.delay_bounds(threshold).expect("valid threshold");
            assert!(
                crossing >= bounds.lower.value() * (1.0 - 2e-2),
                "{label}: crossing {crossing} before ramp lower bound {}",
                bounds.lower
            );
            assert!(
                crossing <= bounds.upper.value() * (1.0 + 2e-2),
                "{label}: crossing {crossing} after ramp upper bound {}",
                bounds.upper
            );
        }
    }
}

#[test]
fn figure7_ramp_response_respects_bounds() {
    let (tree, _) = figure7_tree();
    // Slow ramp (comparable to the network time constants) and a fast one.
    assert_ramp_bounds_hold(&tree, 0.5, "figure 7, slow ramp");
    assert_ramp_bounds_hold(&tree, 0.05, "figure 7, fast ramp");
}

#[test]
fn random_tree_ramp_responses_respect_bounds() {
    for seed in 0..3 {
        let tree = RandomTreeConfig {
            nodes: 10,
            ..RandomTreeConfig::default()
        }
        .generate(seed);
        assert_ramp_bounds_hold(&tree, 0.3, &format!("random tree seed {seed}"));
    }
}

#[test]
fn ramp_delay_approaches_step_delay_for_fast_ramps() {
    let (tree, out) = figure7_tree();
    let times = characteristic_times(&tree, out).unwrap();
    let step = times.delay_bounds(0.5).unwrap();
    let fast_ramp = RampResponse::new(times, Seconds::new(1e-3))
        .unwrap()
        .delay_bounds(0.5)
        .unwrap();
    assert!((fast_ramp.lower.value() - step.lower.value()).abs() < 1.0);
    assert!((fast_ramp.upper.value() - step.upper.value()).abs() < 1.0);

    // A slow ramp delays the crossing by roughly half the rise time.
    let slow = RampResponse::new(times, Seconds::new(200.0))
        .unwrap()
        .delay_bounds(0.5)
        .unwrap();
    assert!(slow.lower > step.lower);
    assert!(slow.upper > step.upper);
}
