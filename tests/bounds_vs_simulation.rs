//! The central validity claim of the paper, checked against the exact
//! simulator: for every RC tree and every time, the exact step response lies
//! between the lower and upper Penfield–Rubinstein bounds, and the exact
//! threshold-crossing time lies between `T_MIN` and `T_MAX`.

use penfield_rubinstein::core::moments::characteristic_times;
use penfield_rubinstein::core::units::Seconds;
use penfield_rubinstein::sim::modal::ModalStepResponse;
use penfield_rubinstein::sim::network::LumpedNetwork;
use penfield_rubinstein::sim::transient::{simulate, InputSource, TransientOptions};
use penfield_rubinstein::workloads::fig7::figure7_tree;
use penfield_rubinstein::workloads::mos_net::representative_mos_fanout;
use penfield_rubinstein::workloads::pla::PlaLine;
use penfield_rubinstein::workloads::random::RandomTreeConfig;

/// Segments used when discretizing distributed lines for exact simulation.
/// Eight π-segments keep the discretization error well below `VOLTAGE_TOL`
/// while keeping the Jacobi eigendecomposition fast enough for CI.
const SEGMENTS: usize = 8;
/// Tolerance on voltage comparisons, covering the discretization error of
/// the distributed lines (which the bounds treat exactly).
const VOLTAGE_TOL: f64 = 5e-3;

/// Asserts that the modal (exact) response of `tree` respects the bounds at
/// every output and a spread of times.
fn assert_bounds_bracket_exact(tree: &penfield_rubinstein::core::RcTree, label: &str) {
    let net = LumpedNetwork::from_tree(tree, SEGMENTS).expect("convertible");
    let modal = ModalStepResponse::new(&net).expect("solvable");
    for out in tree.outputs().collect::<Vec<_>>() {
        let times = characteristic_times(tree, out).expect("analysable");
        if times.t_d.is_zero() {
            continue;
        }
        let idx = net
            .index_of(out)
            .expect("known node")
            .expect("output is not the input");
        // Sample times spanning the interesting range: up to several T_P.
        for i in 1..=40 {
            let t = times.t_p.value() * (i as f64) / 10.0;
            let exact = modal.voltage(idx, t).expect("in range");
            let b = times.voltage_bounds(Seconds::new(t)).expect("valid time");
            assert!(
                exact >= b.lower - VOLTAGE_TOL,
                "{label}: exact {exact} below lower bound {} at t={t}",
                b.lower
            );
            assert!(
                exact <= b.upper + VOLTAGE_TOL,
                "{label}: exact {exact} above upper bound {} at t={t}",
                b.upper
            );
        }
        // Threshold crossings bracketed by the delay bounds.
        for threshold in [0.1, 0.5, 0.9] {
            let crossing = modal
                .crossing_time(idx, threshold)
                .expect("reaches threshold");
            let bounds = times.delay_bounds(threshold).expect("valid threshold");
            assert!(
                crossing >= bounds.lower.value() * (1.0 - 5e-3) - 1e-15,
                "{label}: crossing {crossing} before T_MIN {}",
                bounds.lower
            );
            assert!(
                crossing <= bounds.upper.value() * (1.0 + 5e-3) + 1e-15,
                "{label}: crossing {crossing} after T_MAX {}",
                bounds.upper
            );
        }
    }
}

#[test]
fn figure7_exact_response_respects_bounds() {
    let (tree, _) = figure7_tree();
    assert_bounds_bracket_exact(&tree, "figure 7");
}

#[test]
fn pla_line_exact_response_respects_bounds() {
    let (tree, _) = PlaLine::new(16).tree();
    assert_bounds_bracket_exact(&tree, "PLA line, 16 minterms");
}

#[test]
fn mos_fanout_exact_response_respects_bounds() {
    let (tree, _) = representative_mos_fanout();
    assert_bounds_bracket_exact(&tree, "MOS fan-out");
}

#[test]
fn random_trees_exact_response_respects_bounds() {
    for seed in 0..5 {
        let tree = RandomTreeConfig {
            nodes: 12,
            ..RandomTreeConfig::default()
        }
        .generate(seed);
        assert_bounds_bracket_exact(&tree, &format!("random tree seed {seed}"));
    }
}

#[test]
fn transient_and_modal_solvers_agree_on_figure7() {
    // Independent cross-check of the two exact solvers.
    let (tree, out) = figure7_tree();
    let net = LumpedNetwork::from_tree(&tree, 16).unwrap();
    let modal = ModalStepResponse::new(&net).unwrap();
    let transient = simulate(&net, InputSource::Step, TransientOptions::new(0.05, 1500.0)).unwrap();
    let idx = net.index_of(out).unwrap().unwrap();
    let wave = transient.waveform(idx).unwrap();
    for i in 1..=30 {
        let t = 50.0 * i as f64;
        let a = modal.voltage(idx, t).unwrap();
        let b = wave.value_at(t);
        assert!((a - b).abs() < 2e-3, "t={t}: modal {a} vs transient {b}");
    }
}

#[test]
fn simulated_step_response_is_monotone() {
    // The paper proves monotonicity of the RC-tree step response; verify it
    // on the simulator output for several workloads.  Backward Euler is
    // used because it is L-stable: unlike the trapezoidal rule it cannot
    // introduce numerical ringing around the fast poles, so any
    // non-monotonicity would be a genuine modelling bug.
    for (tree, label) in [
        (figure7_tree().0, "figure 7"),
        (PlaLine::new(10).tree().0, "PLA"),
        (representative_mos_fanout().0, "MOS fan-out"),
    ] {
        let net = LumpedNetwork::from_tree(&tree, 4).unwrap();
        let result = simulate(
            &net,
            InputSource::Step,
            TransientOptions::new(1e-2 * scale_of(&tree), 20.0 * scale_of(&tree))
                .with_method(penfield_rubinstein::sim::Method::BackwardEuler),
        )
        .unwrap();
        for node in 0..net.node_count() {
            let wave = result.waveform(node).unwrap();
            assert!(
                wave.is_monotone_nondecreasing(1e-7),
                "{label}: node {node} is not monotone"
            );
        }
    }
}

/// A characteristic time scale for choosing simulation grids per workload.
fn scale_of(tree: &penfield_rubinstein::core::RcTree) -> f64 {
    let out = tree.outputs().next().expect("has outputs");
    characteristic_times(tree, out)
        .expect("analysable")
        .t_p
        .value()
}
