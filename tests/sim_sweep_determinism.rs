//! Determinism of the parallel simulator sweeps: for every worker count,
//! the sharded modal and transient workload sweeps must produce results
//! **bit-identical** to their serial counterparts (exact `f64` equality
//! through `PartialEq`, not tolerance comparisons) — the `rctree-sim`
//! mirror of `tests/parallel_determinism.rs`.
//!
//! The sweep covers jobs ∈ {1, 2, 7, available_parallelism} over seeded
//! generated workloads, so any schedule-dependence — a reduction ordered
//! by completion, a racy merge, a worker-count-dependent chunking bug —
//! fails loudly here.

use penfield_rubinstein::core::tree::RcTree;
use penfield_rubinstein::sim::sweep::{modal_crossing_sweep, transient_crossing_sweep};
use penfield_rubinstein::sim::TransientOptions;
use penfield_rubinstein::workloads::htree::{h_tree, HTreeParams};
use penfield_rubinstein::workloads::RandomTreeConfig;

/// The worker counts required by the acceptance criteria: serial, even,
/// odd-and-larger-than-the-hardware, and whatever this machine reports.
fn jobs_sweep() -> [usize; 4] {
    [1, 2, 7, rctree_par::available_parallelism()]
}

/// A mixed batch: random trees of several shapes plus small H-trees, all
/// with their leaves marked as outputs.
fn workload_batch(seed: u64) -> Vec<RcTree> {
    let mut trees = Vec::new();
    for (i, &(nodes, chains)) in [(6usize, true), (10, false), (14, true)].iter().enumerate() {
        let cfg = RandomTreeConfig {
            nodes,
            prefer_chains: chains,
            ..RandomTreeConfig::default()
        };
        for k in 0..6 {
            trees.push(cfg.generate(seed.wrapping_add((i * 13 + k) as u64)));
        }
    }
    for levels in 1..=3 {
        let (tree, _) = h_tree(HTreeParams {
            levels,
            ..HTreeParams::default()
        });
        trees.push(tree);
    }
    trees
}

#[test]
fn modal_sweep_is_bit_identical_across_worker_counts() {
    for seed in [21u64, 22] {
        let trees = workload_batch(seed);
        let serial = modal_crossing_sweep(&trees, 0.5, 4, 1);
        assert!(serial.iter().all(|slot| slot.is_ok()), "seed {seed}");
        for jobs in jobs_sweep() {
            let parallel = modal_crossing_sweep(&trees, 0.5, 4, jobs);
            assert_eq!(parallel, serial, "seed {seed}, jobs {jobs}");
        }
    }
}

#[test]
fn transient_sweep_is_bit_identical_across_worker_counts() {
    let trees = workload_batch(31);
    // Bit-identity does not care about grid accuracy: a coarse grid past
    // the slowest tree in the batch keeps the sweep fast.
    let opts = TransientOptions::new(1e-10, 200e-9);
    let serial = transient_crossing_sweep(&trees, 0.5, 4, opts, 1);
    assert!(serial.iter().all(|slot| slot.is_ok()));
    for jobs in jobs_sweep() {
        let parallel = transient_crossing_sweep(&trees, 0.5, 4, opts, jobs);
        assert_eq!(parallel, serial, "jobs {jobs}");
    }
}

#[test]
fn modal_and_transient_sweeps_agree_physically() {
    // Cross-solver sanity on the sharded paths: the two independent exact
    // solvers must agree on every crossing to integration accuracy.  The
    // batch spans ~two decades of time constants, so the transient grid is
    // adapted per tree from the modal result.
    let trees = workload_batch(41);
    let modal = modal_crossing_sweep(&trees, 0.5, 4, 2);
    for (slot, m) in modal.iter().enumerate() {
        let m = m.as_ref().unwrap();
        let slowest = m.iter().map(|&(_, t)| t).fold(0.0_f64, f64::max);
        assert!(slowest > 0.0, "tree {slot}");
        let opts = TransientOptions::new(slowest / 2000.0, slowest * 8.0);
        let t = &transient_crossing_sweep(&trees[slot..=slot], 0.5, 4, opts, 2)[0];
        let t = t.as_ref().unwrap();
        assert_eq!(m.len(), t.len(), "tree {slot}");
        for ((node_m, cross_m), (node_t, cross_t)) in m.iter().zip(t.iter()) {
            assert_eq!(node_m, node_t, "tree {slot}");
            let diff = (cross_m - cross_t).abs();
            let tol = (5e-3 * cross_m).max(4.0 * opts.time_step);
            assert!(
                diff < tol,
                "tree {slot}, node {node_m}: modal {cross_m} vs transient {cross_t}"
            );
        }
    }
}
