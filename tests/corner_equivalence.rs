//! Multi-corner lanes versus serial single-corner runs, **bit for bit**.
//!
//! `Design::analyze_corners` sweeps every corner in one post-order +
//! pre-order traversal per net over the lane-vectorized arena.  These
//! sweeps pin its two hard contracts, with `assert_eq!` on full
//! [`TimingReport`]s — no tolerance:
//!
//! * **Lane 0 is the pre-corner path.**  Installing a corner set never
//!   perturbs nominal results: `analyze_corners(..).report(0)` equals
//!   `analyze_with_jobs` of the same design with no corners installed.
//! * **Lane `k` is the serial oracle.**  Every corner lane equals a
//!   from-scratch `analyze_with_jobs` of the fully materialized scaled
//!   design ([`Design::materialize_corner`]) — one independent
//!   single-corner run per corner, the way K separate signoff runs would
//!   compute it.
//!
//! Both hold across every workloads generator family, `jobs ∈ {1, 2, 7}`,
//! and — through the incremental snapshot path — after every edit of a
//! seeded ECO stream.

use penfield_rubinstein::core::incremental::{EditableTree, TreeEdit};
use penfield_rubinstein::core::tree::RcTree;
use penfield_rubinstein::core::units::{Farads, Ohms, Seconds};
use penfield_rubinstein::sta::{CellLibrary, CornerAnalysis, Design, EcoEdit, EcoEditKind};
use penfield_rubinstein::workloads::corners::{corner_set, CornerSpecParams};
use penfield_rubinstein::workloads::eco::{EcoStream, EcoStreamParams};
use penfield_rubinstein::workloads::htree::HTreeParams;
use penfield_rubinstein::workloads::ladder::{distributed_line, rc_ladder, repeated_chain};
use penfield_rubinstein::workloads::{
    figure3_tree, figure7_tree, h_tree, representative_mos_fanout, Figure3Values, PlaLine,
    RandomTreeConfig, SpefDeckParams,
};

const JOBS_SWEEP: [usize; 3] = [1, 2, 7];
const THRESHOLD: f64 = 0.5;

/// One tree from every generator family in `rctree-workloads`.
fn generator_trees() -> Vec<(String, RcTree)> {
    let mut trees: Vec<(String, RcTree)> = vec![
        ("fig3".into(), figure3_tree(Figure3Values::default()).0),
        ("fig7".into(), figure7_tree().0),
        (
            "htree".into(),
            h_tree(HTreeParams {
                levels: 3,
                ..HTreeParams::default()
            })
            .0,
        ),
        (
            "ladder".into(),
            rc_ladder(Ohms::new(100.0), Farads::from_pico(1.0), 12).0,
        ),
        (
            "line".into(),
            distributed_line(Ohms::new(500.0), Farads::from_pico(0.4)).0,
        ),
        (
            "chain".into(),
            repeated_chain(Ohms::new(10.0), Farads::from_femto(50.0), 10),
        ),
        ("pla".into(), PlaLine::new(8).tree().0),
        ("mos".into(), representative_mos_fanout().0),
        (
            "random".into(),
            RandomTreeConfig {
                nodes: 20,
                ..RandomTreeConfig::default()
            }
            .generate(9),
        ),
    ];
    let deck = SpefDeckParams {
        nets: 2,
        ..SpefDeckParams::default()
    };
    for (name, tree) in deck.trees(41) {
        trees.push((format!("deck/{name}"), tree));
    }
    trees
}

fn single_net_design(tree: &RcTree) -> Design {
    Design::from_extracted(
        CellLibrary::nmos_1981(),
        "inv_4x",
        vec![("the_net".to_string(), tree.clone())],
    )
    .expect("generator tree builds a design")
}

/// Asserts both contracts for one design/corner-set/jobs combination and
/// returns the sweep for cross-jobs comparison.
fn check_lanes(
    label: &str,
    design: &Design,
    with_corners: &Design,
    budget: Seconds,
    jobs: usize,
) -> CornerAnalysis {
    let analysis = with_corners
        .analyze_corners(THRESHOLD, budget, jobs)
        .unwrap_or_else(|e| panic!("{label}, jobs {jobs}: corner sweep failed: {e}"));
    let nominal = design
        .analyze_with_jobs(THRESHOLD, budget, jobs)
        .expect("analyzable");
    assert_eq!(
        analysis.report(0),
        Some(&nominal),
        "{label}, jobs {jobs}: lane 0 diverged from the corner-free path"
    );
    for k in 0..analysis.len() {
        let oracle = with_corners
            .materialize_corner(k)
            .expect("lane index in range")
            .analyze_with_jobs(THRESHOLD, budget, jobs)
            .expect("materialized corner analyses");
        assert_eq!(
            analysis.report(k),
            Some(&oracle),
            "{label}, jobs {jobs}: lane {k} ({}) diverged from its serial \
             single-corner oracle",
            analysis.names()[k]
        );
    }
    analysis
}

#[test]
fn corner_lanes_match_serial_single_corner_runs_for_every_generator() {
    let budget = Seconds::from_nano(100.0);
    for (label, tree) in generator_trees() {
        let design = single_net_design(&tree);
        let set = corner_set(
            &CornerSpecParams::default(),
            &["the_net".to_string()],
            0xBEEF ^ tree.node_count() as u64,
        );
        let mut with_corners = single_net_design(&tree);
        with_corners.set_corners(set.clone());
        assert_eq!(set.len(), 4, "{label}: seeded spec shape");

        let serial = check_lanes(&label, &design, &with_corners, budget, 1);
        for jobs in &JOBS_SWEEP[1..] {
            let wide = check_lanes(&label, &design, &with_corners, budget, *jobs);
            assert_eq!(wide.names(), serial.names(), "{label}: corner vector");
            assert_eq!(
                wide.reports(),
                serial.reports(),
                "{label}: jobs {jobs} diverged from the serial sweep"
            );
        }
    }
}

#[test]
fn snapshot_corners_track_the_oracle_through_seeded_eco_streams() {
    let budget = Seconds::from_nano(100.0);
    for (label, tree) in generator_trees() {
        // Shadow engines drive the edit generation (the design does not
        // expose its trees).  Prunes are excluded: every leaf of an
        // extracted net is a sink, and `apply_eco` refuses to prune sinks.
        let params = EcoStreamParams {
            p_prune: 0.0,
            ..EcoStreamParams::default()
        };
        let mut shadow = EditableTree::new(tree.clone());
        let mut stream = EcoStream::new(params, 0xFACE ^ tree.node_count() as u64);
        let mut edits = Vec::new();
        for _ in 0..6 {
            let edit = stream.next_edit(shadow.tree());
            edits.push(to_eco_edit("the_net", shadow.tree(), &edit));
            shadow.apply(&edit).expect("generated edits are valid");
        }

        let set = corner_set(
            &CornerSpecParams::default(),
            &["the_net".to_string()],
            0xD0 ^ tree.node_count() as u64,
        );
        let mut design = single_net_design(&tree);
        design.set_corners(set.clone());
        let mut snapshot = design
            .publish(THRESHOLD, budget, 2)
            .unwrap_or_else(|e| panic!("{label}: baseline publish failed: {e}"));
        for (step, edit) in edits.iter().enumerate() {
            snapshot = design
                .publish_after_eco(std::slice::from_ref(edit), THRESHOLD, budget, 2, &snapshot)
                .unwrap_or_else(|e| panic!("{label}, step {step}: {e} for {edit:?}"));
            let corners = snapshot
                .corners()
                .unwrap_or_else(|| panic!("{label}: multi-corner snapshot has corner reports"));
            assert_eq!(corners.names_csv(), set.names_csv(), "{label}, step {step}");
            // Every lane of the incrementally re-timed snapshot equals a
            // from-scratch analysis of the edited, materialized corner.
            for k in 0..corners.len() {
                let oracle = design
                    .materialize_corner(k)
                    .expect("lane index in range")
                    .analyze_with_jobs(THRESHOLD, budget, 1)
                    .expect("edited corner analyses");
                assert_eq!(
                    corners.report(k),
                    Some(&oracle),
                    "{label}, step {step}: lane {k} ({}) diverged after the edit",
                    corners.names()[k]
                );
            }
        }
    }
}

/// Translates a generated id-based edit into the name-based design-level
/// vocabulary.
fn to_eco_edit(net: &str, tree: &RcTree, edit: &TreeEdit) -> EcoEdit {
    let name = |node: &penfield_rubinstein::core::tree::NodeId| {
        tree.name(*node).expect("generated node exists").to_string()
    };
    let kind = match edit {
        TreeEdit::SetCap { node, cap } => EcoEditKind::SetCap {
            node: name(node),
            cap: *cap,
        },
        TreeEdit::SetBranch { node, branch } => EcoEditKind::SetBranch {
            node: name(node),
            branch: *branch,
        },
        TreeEdit::GraftSubtree {
            parent,
            via,
            subtree,
        } => EcoEditKind::Graft {
            parent: name(parent),
            via: *via,
            subtree: subtree.clone(),
        },
        TreeEdit::PruneSubtree { node } => EcoEditKind::Prune { node: name(node) },
    };
    EcoEdit {
        net: net.to_string(),
        kind,
    }
}
