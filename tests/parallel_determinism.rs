//! Determinism of the parallel runtime: for every worker count, the
//! parallel deck parser and the sharded design analysis must produce
//! results **bit-identical** to their serial counterparts (exact `f64`
//! equality through `PartialEq`, not tolerance comparisons).
//!
//! The sweep covers jobs ∈ {1, 2, 7, available_parallelism} over seeded
//! generated workloads, so any schedule-dependence — reordered reductions,
//! racy merges, worker-count-dependent chunking bugs — fails loudly here.

use penfield_rubinstein::netlist::{parse_spef, parse_spef_deck};
use penfield_rubinstein::sta::{CellLibrary, Design};
use penfield_rubinstein::workloads::deck::{spef_deck, SpefDeckParams};
use penfield_rubinstein::workloads::RandomTreeConfig;
use rctree_core::units::Seconds;

/// The worker counts required by the acceptance criteria: serial, even,
/// odd-and-larger-than-the-hardware, and whatever this machine reports.
fn jobs_sweep() -> [usize; 4] {
    [1, 2, 7, rctree_par::available_parallelism()]
}

fn deck_params(nets: usize, nodes: usize, chains: bool) -> SpefDeckParams {
    SpefDeckParams {
        nets,
        tree: RandomTreeConfig {
            nodes,
            prefer_chains: chains,
            ..SpefDeckParams::default().tree
        },
    }
}

#[test]
fn spef_deck_parsing_is_bit_identical_across_worker_counts() {
    for (seed, params) in [
        (1u64, deck_params(64, 12, true)),
        (2, deck_params(97, 5, false)),
        (3, deck_params(33, 40, true)),
    ] {
        let text = spef_deck(&params, seed);
        let serial = parse_spef(&text).expect("generated deck parses");
        assert_eq!(serial.len(), params.nets);
        for jobs in jobs_sweep() {
            let parallel = parse_spef_deck(&text, jobs).expect("generated deck parses");
            assert_eq!(parallel, serial, "seed {seed}, jobs {jobs}");
        }
    }
}

#[test]
fn design_analysis_is_bit_identical_across_worker_counts() {
    let budget = Seconds::from_nano(100.0);
    for (seed, params) in [
        (11u64, deck_params(48, 10, true)),
        (12, deck_params(80, 6, false)),
    ] {
        let nets = params.trees(seed);
        let design = Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", nets)
            .expect("generated deck builds");
        let serial = design
            .analyze_with_jobs(0.5, budget, 1)
            .expect("generated deck analyses");
        assert!(!serial.endpoints.is_empty());
        for jobs in jobs_sweep() {
            let parallel = design
                .analyze_with_jobs(0.5, budget, jobs)
                .expect("generated deck analyses");
            assert_eq!(parallel, serial, "seed {seed}, jobs {jobs}");
        }
    }
}

#[test]
fn full_pipeline_is_bit_identical_end_to_end() {
    // parse → build → analyze → certify with every stage parallel, against
    // the fully serial pipeline.
    let params = deck_params(72, 9, true);
    let text = spef_deck(&params, 99);
    let budget = Seconds::from_nano(60.0);

    let run = |jobs: usize| {
        let nets = if jobs == 1 {
            parse_spef(&text).unwrap()
        } else {
            parse_spef_deck(&text, jobs).unwrap()
        };
        let design = Design::from_extracted(
            CellLibrary::nmos_1981(),
            "inv_4x",
            nets.into_iter().map(|n| (n.name, n.tree)),
        )
        .unwrap();
        let report = design.analyze_with_jobs(0.5, budget, jobs).unwrap();
        let verdict = report.certification();
        (report, verdict)
    };

    let (serial_report, serial_verdict) = run(1);
    for jobs in jobs_sweep() {
        let (report, verdict) = run(jobs);
        assert_eq!(report, serial_report, "jobs {jobs}");
        assert_eq!(verdict, serial_verdict, "jobs {jobs}");
    }
}

#[test]
fn error_reporting_is_schedule_independent() {
    // Two malformed sections: every worker count must surface the same
    // (first-in-document-order) error.
    let params = deck_params(24, 6, true);
    let mut text = spef_deck(&params, 5);
    text = text.replacen("*CONN", "*CONN\n*I second:driver I", 1);
    let serial = parse_spef(&text).expect_err("duplicate driver is an error");
    for jobs in jobs_sweep() {
        let parallel = parse_spef_deck(&text, jobs).expect_err("duplicate driver is an error");
        assert_eq!(parallel, serial, "jobs {jobs}");
    }
}
