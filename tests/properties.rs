//! Property-based tests for the core invariants of the paper:
//!
//! * Eq. (7): `T_Re ≤ T_De ≤ T_P` for every output of every RC tree;
//! * bound ordering and monotonicity of the voltage bounds;
//! * consistency of the delay and voltage bounds as inverse functions;
//! * equality of the independent characteristic-time algorithms;
//! * the two-port cascade algebra against the explicit-tree algorithms.
//!
//! The build environment does not vendor `proptest`, so the properties run
//! as a deterministic sweep: every test draws its generator configurations
//! from a seeded [`Rng`](penfield_rubinstein::workloads::rng::Rng), which
//! keeps the case corpus identical on every run and makes a failing case
//! number directly reproducible.

use penfield_rubinstein::core::expr::NetworkExpr;
use penfield_rubinstein::core::moments::{characteristic_times, characteristic_times_direct};
use penfield_rubinstein::core::units::{Farads, Ohms, Seconds};
use penfield_rubinstein::workloads::random::RandomTreeConfig;
use penfield_rubinstein::workloads::rng::Rng;

/// Number of generated cases per property (matches the proptest config the
/// suite used historically).
const CASES: u64 = 64;

/// Draws a random-tree configuration plus generation seed, kept small enough
/// that the quadratic reference algorithm stays fast.
fn draw_tree_config(rng: &mut Rng) -> (RandomTreeConfig, u64) {
    (
        RandomTreeConfig {
            nodes: 2 + rng.index(28),
            line_probability: rng.uniform(),
            capacitor_probability: rng.range_f64(0.3, 1.0),
            prefer_chains: rng.chance(0.5),
            ..RandomTreeConfig::default()
        },
        rng.next_u64(),
    )
}

/// Draws a chain expression in the two-port algebra.
fn draw_expr(rng: &mut Rng) -> NetworkExpr {
    let element = |rng: &mut Rng| {
        let e = NetworkExpr::line(
            Ohms::new(rng.range_f64(0.0, 1000.0)),
            Farads::new(rng.range_f64(0.0, 1e-12)),
        );
        if rng.chance(0.5) {
            e.side_branch()
        } else {
            e
        }
    };
    let len = 1 + rng.index(19);
    let mut expr = element(rng);
    for _ in 1..len {
        expr = expr.cascade(element(rng));
    }
    expr.cascade(NetworkExpr::capacitor(Farads::new(1e-15)))
}

#[test]
fn ordering_invariant_holds_for_random_trees() {
    let mut rng = Rng::from_seed(0xA11CE);
    for case in 0..CASES {
        let (cfg, seed) = draw_tree_config(&mut rng);
        let tree = cfg.generate(seed);
        for out in tree.outputs().collect::<Vec<_>>() {
            let t = characteristic_times(&tree, out).expect("analysable");
            assert!(t.satisfies_ordering(), "case {case}, output {out}");
        }
    }
}

#[test]
fn fast_and_direct_algorithms_agree() {
    let mut rng = Rng::from_seed(0xB0B);
    for case in 0..CASES {
        let (cfg, seed) = draw_tree_config(&mut rng);
        let tree = cfg.generate(seed);
        for out in tree.outputs().collect::<Vec<_>>() {
            let fast = characteristic_times(&tree, out).expect("fast");
            let slow = characteristic_times_direct(&tree, out).expect("direct");
            let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-30);
            assert!(
                rel(fast.t_p.value(), slow.t_p.value()) < 1e-9,
                "case {case}"
            );
            assert!(
                rel(fast.t_d.value(), slow.t_d.value()) < 1e-9,
                "case {case}"
            );
            assert!(
                rel(fast.t_r.value(), slow.t_r.value()) < 1e-9,
                "case {case}"
            );
        }
    }
}

#[test]
fn voltage_bounds_are_ordered_clamped_and_monotone() {
    let mut rng = Rng::from_seed(0xC0FFEE);
    for case in 0..CASES {
        let (cfg, seed) = draw_tree_config(&mut rng);
        let tree = cfg.generate(seed);
        let out = tree.outputs().next().expect("outputs exist");
        let ct = characteristic_times(&tree, out).expect("analysable");
        let scale = ct.t_p.value().max(1e-18);
        let mut sorted: Vec<f64> = (0..1 + rng.index(19))
            .map(|_| rng.range_f64(0.0, 10.0))
            .collect();
        sorted.sort_by(f64::total_cmp);
        let mut prev_lower = -1.0;
        let mut prev_upper = -1.0;
        for &x in &sorted {
            let b = ct
                .voltage_bounds(Seconds::new(x * scale))
                .expect("valid time");
            assert!(b.lower >= 0.0 && b.upper <= 1.0, "case {case}");
            assert!(b.lower <= b.upper + 1e-12, "case {case}");
            assert!(b.lower >= prev_lower - 1e-12, "case {case}");
            assert!(b.upper >= prev_upper - 1e-12, "case {case}");
            prev_lower = b.lower;
            prev_upper = b.upper;
        }
    }
}

#[test]
fn delay_bounds_are_ordered_and_inverse_consistent() {
    let mut rng = Rng::from_seed(0xDE1A);
    for case in 0..CASES {
        let (cfg, seed) = draw_tree_config(&mut rng);
        let threshold = rng.range_f64(0.01, 0.99);
        let tree = cfg.generate(seed);
        let out = tree.outputs().next().expect("outputs exist");
        let ct = characteristic_times(&tree, out).expect("analysable");
        let b = ct.delay_bounds(threshold).expect("valid threshold");
        assert!(b.lower.value() >= 0.0, "case {case}");
        assert!(b.lower <= b.upper, "case {case}");
        // By the upper-bound definition, the voltage guaranteed at t_max is
        // at least the threshold; the voltage possible at t_min is at least
        // the threshold.
        let v_at_upper = ct.voltage_lower_bound(b.upper).expect("valid time");
        assert!(v_at_upper >= threshold - 1e-6, "case {case}");
        let v_at_lower = ct.voltage_upper_bound(b.lower).expect("valid time");
        assert!(v_at_lower >= threshold - 1e-6, "case {case}");
    }
}

#[test]
fn certification_is_consistent_with_bounds() {
    let mut rng = Rng::from_seed(0xCE27);
    for case in 0..CASES {
        let (cfg, seed) = draw_tree_config(&mut rng);
        let threshold = rng.range_f64(0.05, 0.95);
        let budget_scale = rng.range_f64(0.0, 3.0);
        let tree = cfg.generate(seed);
        let out = tree.outputs().next().expect("outputs exist");
        let ct = characteristic_times(&tree, out).expect("analysable");
        let b = ct.delay_bounds(threshold).expect("valid threshold");
        let budget = Seconds::new(budget_scale * b.upper.value().max(1e-18));
        let verdict = ct.certify(threshold, budget).expect("valid inputs");
        if verdict.is_pass() {
            assert!(budget >= b.upper, "case {case}");
        } else if verdict.is_fail() {
            assert!(budget < b.lower, "case {case}");
        } else {
            assert!(
                budget >= b.lower - Seconds::new(1e-18) && budget <= b.upper,
                "case {case}"
            );
        }
    }
}

#[test]
fn twoport_algebra_matches_tree_elaboration() {
    let mut rng = Rng::from_seed(0x79_0807);
    for case in 0..CASES {
        let expr = draw_expr(&mut rng);
        let state = expr.evaluate();
        let tree = expr.to_tree().expect("expression elaborates");
        let out = tree.outputs().next().expect("one output");
        if state.total_cap().is_zero() {
            continue;
        }
        let from_expr = state.characteristic_times().expect("analysable");
        let from_tree = characteristic_times(&tree, out).expect("analysable");
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-24);
        assert!(
            rel(from_expr.t_p.value(), from_tree.t_p.value()) < 1e-9,
            "case {case}"
        );
        assert!(
            rel(from_expr.t_d.value(), from_tree.t_d.value()) < 1e-9,
            "case {case}"
        );
        assert!(
            rel(from_expr.t_r.value(), from_tree.t_r.value()) < 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn elmore_delay_lies_between_the_halfway_bounds() {
    // Classical sanity relation: at the 50% threshold the lower bound never
    // exceeds the Elmore delay (Elmore over-estimates the median delay for
    // RC trees).
    let mut rng = Rng::from_seed(0xE1);
    for case in 0..CASES {
        let (cfg, seed) = draw_tree_config(&mut rng);
        let tree = cfg.generate(seed);
        for out in tree.outputs().collect::<Vec<_>>() {
            let ct = characteristic_times(&tree, out).expect("analysable");
            if ct.t_d.is_zero() {
                continue;
            }
            let b = ct.delay_bounds(0.5).expect("valid threshold");
            assert!(b.lower <= ct.t_d + Seconds::new(1e-18), "case {case}");
        }
    }
}
