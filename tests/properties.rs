//! Property-based tests (proptest) for the core invariants of the paper:
//!
//! * Eq. (7): `T_Re ≤ T_De ≤ T_P` for every output of every RC tree;
//! * bound ordering and monotonicity of the voltage bounds;
//! * consistency of the delay and voltage bounds as inverse functions;
//! * equality of the independent characteristic-time algorithms;
//! * the two-port cascade algebra against the explicit-tree algorithms.

use proptest::prelude::*;

use penfield_rubinstein::core::expr::NetworkExpr;
use penfield_rubinstein::core::moments::{characteristic_times, characteristic_times_direct};
use penfield_rubinstein::core::units::{Farads, Ohms, Seconds};
use penfield_rubinstein::workloads::random::RandomTreeConfig;

/// Strategy: a random-tree configuration plus seed, kept small enough that
/// the quadratic reference algorithm stays fast.
fn tree_strategy() -> impl Strategy<Value = (RandomTreeConfig, u64)> {
    (
        2usize..30,
        0.0f64..1.0,
        0.3f64..1.0,
        prop::bool::ANY,
        any::<u64>(),
    )
        .prop_map(|(nodes, line_p, cap_p, chains, seed)| {
            (
                RandomTreeConfig {
                    nodes,
                    line_probability: line_p,
                    capacitor_probability: cap_p,
                    prefer_chains: chains,
                    ..RandomTreeConfig::default()
                },
                seed,
            )
        })
}

/// Strategy: a chain expression in the two-port algebra.
fn expr_strategy() -> impl Strategy<Value = NetworkExpr> {
    let element = (0.0f64..1000.0, 0.0f64..1e-12, prop::bool::ANY).prop_map(|(r, c, branch)| {
        let e = NetworkExpr::line(Ohms::new(r), Farads::new(c));
        if branch {
            e.side_branch()
        } else {
            e
        }
    });
    prop::collection::vec(element, 1..20).prop_map(|elems| {
        let mut iter = elems.into_iter();
        let first = iter.next().expect("at least one element");
        iter.fold(first, |acc, e| acc.cascade(e))
            .cascade(NetworkExpr::capacitor(Farads::new(1e-15)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ordering_invariant_holds_for_random_trees((cfg, seed) in tree_strategy()) {
        let tree = cfg.generate(seed);
        for out in tree.outputs().collect::<Vec<_>>() {
            let t = characteristic_times(&tree, out).expect("analysable");
            prop_assert!(t.satisfies_ordering());
        }
    }

    #[test]
    fn fast_and_direct_algorithms_agree((cfg, seed) in tree_strategy()) {
        let tree = cfg.generate(seed);
        for out in tree.outputs().collect::<Vec<_>>() {
            let fast = characteristic_times(&tree, out).expect("fast");
            let slow = characteristic_times_direct(&tree, out).expect("direct");
            let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-30);
            prop_assert!(rel(fast.t_p.value(), slow.t_p.value()) < 1e-9);
            prop_assert!(rel(fast.t_d.value(), slow.t_d.value()) < 1e-9);
            prop_assert!(rel(fast.t_r.value(), slow.t_r.value()) < 1e-9);
        }
    }

    #[test]
    fn voltage_bounds_are_ordered_clamped_and_monotone(
        (cfg, seed) in tree_strategy(),
        times in prop::collection::vec(0.0f64..10.0, 1..20)
    ) {
        let tree = cfg.generate(seed);
        let out = tree.outputs().next().expect("outputs exist");
        let ct = characteristic_times(&tree, out).expect("analysable");
        let scale = ct.t_p.value().max(1e-18);
        let mut sorted = times;
        sorted.sort_by(f64::total_cmp);
        let mut prev_lower = -1.0;
        let mut prev_upper = -1.0;
        for &x in &sorted {
            let b = ct.voltage_bounds(Seconds::new(x * scale)).expect("valid time");
            prop_assert!(b.lower >= 0.0 && b.upper <= 1.0);
            prop_assert!(b.lower <= b.upper + 1e-12);
            prop_assert!(b.lower >= prev_lower - 1e-12);
            prop_assert!(b.upper >= prev_upper - 1e-12);
            prev_lower = b.lower;
            prev_upper = b.upper;
        }
    }

    #[test]
    fn delay_bounds_are_ordered_and_inverse_consistent(
        (cfg, seed) in tree_strategy(),
        threshold in 0.01f64..0.99
    ) {
        let tree = cfg.generate(seed);
        let out = tree.outputs().next().expect("outputs exist");
        let ct = characteristic_times(&tree, out).expect("analysable");
        let b = ct.delay_bounds(threshold).expect("valid threshold");
        prop_assert!(b.lower.value() >= 0.0);
        prop_assert!(b.lower <= b.upper);
        // By the upper-bound definition, the voltage guaranteed at t_max is
        // at least the threshold; the voltage possible at t_min is at least
        // the threshold.
        let v_at_upper = ct.voltage_lower_bound(b.upper).expect("valid time");
        prop_assert!(v_at_upper >= threshold - 1e-6);
        let v_at_lower = ct.voltage_upper_bound(b.lower).expect("valid time");
        prop_assert!(v_at_lower >= threshold - 1e-6);
    }

    #[test]
    fn certification_is_consistent_with_bounds(
        (cfg, seed) in tree_strategy(),
        threshold in 0.05f64..0.95,
        budget_scale in 0.0f64..3.0
    ) {
        let tree = cfg.generate(seed);
        let out = tree.outputs().next().expect("outputs exist");
        let ct = characteristic_times(&tree, out).expect("analysable");
        let b = ct.delay_bounds(threshold).expect("valid threshold");
        let budget = Seconds::new(budget_scale * b.upper.value().max(1e-18));
        let verdict = ct.certify(threshold, budget).expect("valid inputs");
        if verdict.is_pass() {
            prop_assert!(budget >= b.upper);
        } else if verdict.is_fail() {
            prop_assert!(budget < b.lower);
        } else {
            prop_assert!(budget >= b.lower - Seconds::new(1e-18) && budget <= b.upper);
        }
    }

    #[test]
    fn twoport_algebra_matches_tree_elaboration(expr in expr_strategy()) {
        let state = expr.evaluate();
        let tree = expr.to_tree().expect("expression elaborates");
        let out = tree.outputs().next().expect("one output");
        if state.total_cap().is_zero() {
            return Ok(());
        }
        let from_expr = state.characteristic_times().expect("analysable");
        let from_tree = characteristic_times(&tree, out).expect("analysable");
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-24);
        prop_assert!(rel(from_expr.t_p.value(), from_tree.t_p.value()) < 1e-9);
        prop_assert!(rel(from_expr.t_d.value(), from_tree.t_d.value()) < 1e-9);
        prop_assert!(rel(from_expr.t_r.value(), from_tree.t_r.value()) < 1e-9);
    }

    #[test]
    fn elmore_delay_lies_between_the_halfway_bounds(
        (cfg, seed) in tree_strategy()
    ) {
        // Classical sanity relation: at the 50% threshold the lower bound
        // never exceeds the Elmore delay (Elmore over-estimates the median
        // delay for RC trees).
        let tree = cfg.generate(seed);
        for out in tree.outputs().collect::<Vec<_>>() {
            let ct = characteristic_times(&tree, out).expect("analysable");
            if ct.t_d.is_zero() {
                continue;
            }
            let b = ct.delay_bounds(0.5).expect("valid threshold");
            prop_assert!(b.lower <= ct.t_d + Seconds::new(1e-18));
        }
    }
}
