//! Name-interning round trip: every user-visible name — report text,
//! snapshot queries, ECO error messages — must be byte-identical to the
//! pre-interning string-keyed path.  The interner is an internal
//! optimisation (hot maps key on dense `u32` ids); nothing about the
//! design's surface may change.

use penfield_rubinstein::core::intern::Interner;
use penfield_rubinstein::core::units::{Farads, Seconds};
use penfield_rubinstein::sta::{CellLibrary, Design, EcoEdit, EcoEditKind, StaError};
use penfield_rubinstein::workloads::SpefDeckParams;

const THRESHOLD: f64 = 0.5;
const BUDGET: Seconds = Seconds::new(200e-9);

/// A deck design with enough nets to exercise interner growth and bucket
/// chains, not just the happy path of a handful of names.
fn deck_design(nets: usize) -> Design {
    let params = SpefDeckParams {
        nets,
        ..SpefDeckParams::default()
    };
    Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", params.trees(77)).unwrap()
}

#[test]
fn report_text_is_byte_identical_to_the_string_keyed_baseline() {
    let d = deck_design(40);
    let interned = d.analyze_with_jobs(THRESHOLD, BUDGET, 2).unwrap();
    // The preserved pre-arena baseline resolves every name per call
    // through the string-keyed tables — the pre-interning surface.
    let baseline = d.analyze_rebuild_with_jobs(THRESHOLD, BUDGET, 2).unwrap();
    assert_eq!(interned, baseline);
    assert_eq!(interned.to_string(), baseline.to_string());
    // Endpoint names round-trip: every rendered name is an original
    // primary-output string, untouched by interning.
    for ep in &interned.endpoints {
        assert!(ep.name.contains('/'), "deck PO names are net/node");
        assert!(interned.to_string().contains(&ep.name));
    }
}

#[test]
fn snapshot_queries_resolve_original_names_after_interning() {
    let mut d = deck_design(12);
    let snap = d.publish(THRESHOLD, BUDGET, 1).unwrap();

    // Every original name resolves; close-but-wrong names do not.
    let names: Vec<String> = snap.net_names().map(str::to_string).collect();
    assert_eq!(names.len(), 24, "feeder + payload per deck net");
    for name in &names {
        let view = snap.net(name).expect("interned lookup finds the net");
        assert_eq!(view.name(), name, "round-tripped text is byte-identical");
        assert!(snap.net(&format!("{name}x")).is_none());
    }
    assert!(snap.net("").is_none());
    assert!(snap.net("net999").is_none());

    // Node-level queries carry the original node and net names through
    // the error path verbatim.
    let err = snap
        .net("net0")
        .unwrap()
        .node_times("no_such_node", THRESHOLD)
        .unwrap_err();
    match err {
        StaError::UnknownEcoNode { net, node } => {
            assert_eq!(net, "net0");
            assert_eq!(node, "no_such_node");
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn eco_errors_carry_the_original_net_name() {
    let mut d = deck_design(6);
    let err = d
        .apply_eco(
            &[EcoEdit {
                net: "net6_pi_typo".into(),
                kind: EcoEditKind::SetCap {
                    node: "pin".into(),
                    cap: Farads::from_femto(3.0),
                },
            }],
            THRESHOLD,
            BUDGET,
        )
        .unwrap_err();
    match err {
        StaError::UnknownNet { name } => assert_eq!(name, "net6_pi_typo"),
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn duplicate_names_are_still_rejected_on_the_interned_path() {
    // `from_extracted` synthesizes `<name>_pi` feeders; a deck net named
    // `net0_pi` collides with net0's feeder through the interned index
    // exactly as it did through the string-keyed one.
    let params = SpefDeckParams {
        nets: 1,
        ..SpefDeckParams::default()
    };
    let mut nets = params.trees(77);
    let clash = nets[0].1.clone();
    nets.push(("net0_pi".into(), clash));
    let err = Design::from_extracted(CellLibrary::nmos_1981(), "inv_4x", nets).unwrap_err();
    match err {
        StaError::DuplicateNet { name } => assert_eq!(name, "net0_pi"),
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn interner_distinguishes_prefixes_suffixes_and_survives_growth() {
    // Regression for the classic interning bugs: prefix/suffix confusion
    // in the byte-comparing chains, and id stability across bucket-table
    // growth.
    let mut interner = Interner::new();
    let names: Vec<String> = (0..2000)
        .flat_map(|i| [format!("net{i}"), format!("net{i}_pi"), format!("n{i}")])
        .collect();
    let ids: Vec<_> = names.iter().map(|n| interner.intern(n)).collect();
    assert_eq!(interner.len(), names.len(), "no two names collapsed");
    for (name, &id) in names.iter().zip(&ids) {
        assert_eq!(interner.resolve(id), name, "byte-identical round trip");
        assert_eq!(interner.get(name), Some(id), "stable across growth");
        // Interning again is idempotent.
        assert_eq!(interner.intern(name), id);
    }
}
