//! Cone-limited ECO re-propagation versus the full analysis, **bit for
//! bit**.
//!
//! `Design::apply_eco_with_jobs` now keeps persistent per-net engines,
//! cached Kahn topology and per-instance arrival windows, and after an
//! edit re-propagates only the affected fan-out cone.  These sweeps pin
//! its one hard contract: after *every* edit, for every worker count, the
//! incremental report equals a from-scratch `analyze_with_jobs` of the
//! edited design exactly (`assert_eq!` on the reports — no tolerance),
//! across:
//!
//! * per-net designs built from **every** workloads generator family
//!   (`Design::from_extracted`), driven by seeded [`EcoStream`]s;
//! * DAG-shaped multi-stage designs ([`eco_dag`]) where edits land in one
//!   cone while other cones keep cached windows, including edit sequences
//!   that move the critical endpoint **across cones**;
//! * `jobs ∈ {1, 2, 7}`, cross-checked against the serial sequence.

use penfield_rubinstein::core::incremental::{EditableTree, TreeEdit};
use penfield_rubinstein::core::tree::RcTree;
use penfield_rubinstein::core::units::{Farads, Ohms, Seconds};
use penfield_rubinstein::sta::{CellLibrary, Design, EcoEdit, EcoEditKind, TimingReport};
use penfield_rubinstein::workloads::dag::{eco_dag, EcoDagParams};
use penfield_rubinstein::workloads::eco::{EcoStream, EcoStreamParams};
use penfield_rubinstein::workloads::htree::HTreeParams;
use penfield_rubinstein::workloads::ladder::{distributed_line, rc_ladder, repeated_chain};
use penfield_rubinstein::workloads::rng::Rng;
use penfield_rubinstein::workloads::{
    figure3_tree, figure7_tree, h_tree, representative_mos_fanout, Figure3Values, PlaLine,
    RandomTreeConfig, SpefDeckParams,
};

const JOBS_SWEEP: [usize; 3] = [1, 2, 7];

/// One tree from every generator family in `rctree-workloads`.
fn generator_trees() -> Vec<(String, RcTree)> {
    let mut trees: Vec<(String, RcTree)> = vec![
        ("fig3".into(), figure3_tree(Figure3Values::default()).0),
        ("fig7".into(), figure7_tree().0),
        (
            "htree".into(),
            h_tree(HTreeParams {
                levels: 3,
                ..HTreeParams::default()
            })
            .0,
        ),
        (
            "ladder".into(),
            rc_ladder(Ohms::new(100.0), Farads::from_pico(1.0), 12).0,
        ),
        (
            "line".into(),
            distributed_line(Ohms::new(500.0), Farads::from_pico(0.4)).0,
        ),
        (
            "chain".into(),
            repeated_chain(Ohms::new(10.0), Farads::from_femto(50.0), 10),
        ),
        ("pla".into(), PlaLine::new(8).tree().0),
        ("mos".into(), representative_mos_fanout().0),
        (
            "random".into(),
            RandomTreeConfig {
                nodes: 20,
                ..RandomTreeConfig::default()
            }
            .generate(9),
        ),
    ];
    let deck = SpefDeckParams {
        nets: 2,
        ..SpefDeckParams::default()
    };
    for (name, tree) in deck.trees(41) {
        trees.push((format!("deck/{name}"), tree));
    }
    trees
}

/// Translates a generated id-based edit into the name-based design-level
/// vocabulary.
fn to_eco_edit(net: &str, tree: &RcTree, edit: &TreeEdit) -> EcoEdit {
    let name = |node: &penfield_rubinstein::core::tree::NodeId| {
        tree.name(*node).expect("generated node exists").to_string()
    };
    let kind = match edit {
        TreeEdit::SetCap { node, cap } => EcoEditKind::SetCap {
            node: name(node),
            cap: *cap,
        },
        TreeEdit::SetBranch { node, branch } => EcoEditKind::SetBranch {
            node: name(node),
            branch: *branch,
        },
        TreeEdit::GraftSubtree {
            parent,
            via,
            subtree,
        } => EcoEditKind::Graft {
            parent: name(parent),
            via: *via,
            subtree: subtree.clone(),
        },
        TreeEdit::PruneSubtree { node } => EcoEditKind::Prune { node: name(node) },
    };
    EcoEdit {
        net: net.to_string(),
        kind,
    }
}

/// Drives one design through an edit sequence at the given worker count,
/// asserting the bit-exact contract after every edit, and returns the
/// per-step reports for cross-jobs comparison.
fn drive(
    label: &str,
    mut design: Design,
    edits: &[EcoEdit],
    threshold: f64,
    budget: Seconds,
    jobs: usize,
) -> Vec<TimingReport> {
    let mut reports = Vec::with_capacity(edits.len() + 1);
    let warm = design
        .apply_eco_with_jobs(&[], threshold, budget, jobs)
        .unwrap_or_else(|e| panic!("{label}, jobs {jobs}: warm-up failed: {e}"));
    assert_eq!(
        warm,
        design
            .analyze_with_jobs(threshold, budget, jobs)
            .expect("analyzable"),
        "{label}, jobs {jobs}: warm-up"
    );
    reports.push(warm);
    for (step, edit) in edits.iter().enumerate() {
        let incremental = design
            .apply_eco_with_jobs(std::slice::from_ref(edit), threshold, budget, jobs)
            .unwrap_or_else(|e| panic!("{label}, jobs {jobs}, step {step}: {e} for {edit:?}"));
        let full = design
            .analyze_with_jobs(threshold, budget, jobs)
            .expect("edited design analyses");
        assert_eq!(incremental, full, "{label}, jobs {jobs}, step {step}");
        reports.push(incremental);
    }
    reports
}

#[test]
fn extracted_designs_match_full_analysis_for_every_generator_and_jobs() {
    let budget = Seconds::from_nano(100.0);
    for (label, tree) in generator_trees() {
        // Shadow engines drive the edit generation (the design does not
        // expose its trees).  Prunes are excluded: every leaf of an
        // extracted net is a sink, and `apply_eco` refuses to prune sink
        // nodes (covered by the sta unit tests).
        let params = EcoStreamParams {
            p_prune: 0.0,
            ..EcoStreamParams::default()
        };
        let mut shadow = EditableTree::new(tree.clone());
        let mut stream = EcoStream::new(params, 0xC0DE ^ tree.node_count() as u64);
        let mut edits = Vec::new();
        for _ in 0..12 {
            let edit = stream.next_edit(shadow.tree());
            edits.push(to_eco_edit("the_net", shadow.tree(), &edit));
            shadow.apply(&edit).expect("generated edits are valid");
        }

        let design = || {
            Design::from_extracted(
                CellLibrary::nmos_1981(),
                "inv_4x",
                vec![("the_net".to_string(), tree.clone())],
            )
            .expect("generator tree builds a design")
        };
        let serial = drive(&label, design(), &edits, 0.5, budget, 1);
        for jobs in &JOBS_SWEEP[1..] {
            let wide = drive(&label, design(), &edits, 0.5, budget, *jobs);
            assert_eq!(wide, serial, "{label}: jobs {jobs} diverged from serial");
        }
    }
}

#[test]
fn dag_designs_match_full_analysis_with_cone_limited_propagation() {
    let params = EcoDagParams {
        chains: 4,
        depth: 5,
        cross_probability: 0.35,
        wire_nodes: 3,
        po_stride: 1,
    };
    let budget = Seconds::from_nano(500.0);
    for seed in [1u64, 2] {
        // Value edits on seeded (net, node) targets, plus periodic
        // graft-then-prune pairs on fresh names — every structural shape
        // the engines support, across many different cones.
        let dag = eco_dag(&params, seed);
        let mut rng = Rng::from_seed(seed ^ 0xD00D);
        let mut edits: Vec<EcoEdit> = Vec::new();
        for round in 0..24 {
            let net = &dag.nets[rng.index(dag.nets.len())];
            let node = net.nodes[rng.index(net.nodes.len())].clone();
            let kind = match round % 4 {
                0 | 1 => EcoEditKind::SetCap {
                    node,
                    cap: Farads::from_femto(rng.range_f64(1.0, 40.0)),
                },
                2 => EcoEditKind::SetBranch {
                    node,
                    branch: penfield_rubinstein::core::element::Branch::line(
                        Ohms::new(rng.range_f64(20.0, 200.0)),
                        Farads::from_femto(rng.range_f64(1.0, 20.0)),
                    ),
                },
                _ => {
                    let mut b = penfield_rubinstein::core::builder::RcTreeBuilder::with_input_name(
                        format!("eco_stub_{round}"),
                    );
                    b.add_capacitance(b.input(), Farads::from_femto(15.0))
                        .expect("valid stub");
                    EcoEditKind::Graft {
                        parent: node,
                        via: penfield_rubinstein::core::element::Branch::resistor(Ohms::new(60.0)),
                        subtree: Box::new(b.build().expect("valid stub")),
                    }
                }
            };
            edits.push(EcoEdit {
                net: net.name.clone(),
                kind,
            });
            if round % 4 == 3 {
                // Prune the stub again two rounds later, from a different
                // cone's perspective.
                edits.push(EcoEdit {
                    net: net.name.clone(),
                    kind: EcoEditKind::Prune {
                        node: format!("eco_stub_{round}"),
                    },
                });
            }
        }

        let label = format!("dag seed {seed}");
        let serial = drive(
            &label,
            eco_dag(&params, seed).design,
            &edits,
            0.5,
            budget,
            1,
        );
        for jobs in &JOBS_SWEEP[1..] {
            let wide = drive(
                &label,
                eco_dag(&params, seed).design,
                &edits,
                0.5,
                budget,
                *jobs,
            );
            assert_eq!(wide, serial, "{label}: jobs {jobs} diverged from serial");
        }
    }
}

#[test]
fn critical_endpoint_crosses_cones_and_stays_bit_identical() {
    // Two independent chains with their own endpoints: fattening the load
    // at the tail of one chain, then the other, must flip the critical
    // endpoint between cones — the report is re-sorted from cached per-net
    // contributions, not just patched in place.
    let params = EcoDagParams {
        chains: 2,
        depth: 4,
        cross_probability: 0.0,
        wire_nodes: 2,
        po_stride: 1,
    };
    let budget = Seconds::from_nano(500.0);
    let dag = eco_dag(&params, 7);
    let tail_node = |c: usize| {
        dag.nets
            .iter()
            .find(|n| n.name == format!("out{c}"))
            .expect("endpoint net exists")
            .nodes
            .last()
            .expect("wire has nodes")
            .clone()
    };
    let heavy = |c: usize, ff: f64| EcoEdit {
        net: format!("out{c}"),
        kind: EcoEditKind::SetCap {
            node: tail_node(c),
            cap: Farads::from_femto(ff),
        },
    };
    let edits = [
        heavy(0, 50_000.0),
        heavy(1, 200_000.0),
        heavy(0, 800_000.0),
        heavy(1, 100.0),
    ];
    let mut design = dag.design;
    let mut criticals = Vec::new();
    for (step, edit) in edits.iter().enumerate() {
        let report = design
            .apply_eco_with_jobs(std::slice::from_ref(edit), 0.5, budget, 1)
            .unwrap_or_else(|e| panic!("step {step}: {e}"));
        assert_eq!(
            report,
            design
                .analyze_with_jobs(0.5, budget, 1)
                .expect("analyzable"),
            "step {step}"
        );
        criticals.push(
            report
                .critical_endpoint()
                .expect("has endpoints")
                .name
                .clone(),
        );
    }
    assert_eq!(
        criticals,
        vec!["po0", "po1", "po0", "po0"],
        "the critical endpoint must move between cones as edits land"
    );
}
