//! # penfield-rubinstein
//!
//! Facade crate for the reproduction of *Signal Delay in RC Tree Networks*
//! (Penfield & Rubinstein, 1981).  It re-exports the workspace crates under
//! short module names so that examples and downstream users can depend on a
//! single crate:
//!
//! | Re-export | Crate | Contents |
//! |-----------|-------|----------|
//! | [`core`] | `rctree-core` | RC-tree model, characteristic times, Penfield–Rubinstein bounds |
//! | [`par`] | `rctree-par` | scoped work-stealing thread pool for deck-scale parallelism |
//! | [`sim`] | `rctree-sim` | exact transient / modal simulation |
//! | [`netlist`] | `rctree-netlist` | SPICE-subset, SPEF-lite, wiring-algebra parsers |
//! | [`workloads`] | `rctree-workloads` | paper networks, PLA lines, H-trees, random trees, SPEF decks, request mixes |
//! | [`sta`] | `rctree-sta` | miniature static-timing layer |
//! | [`serve`] | `rctree-serve` | concurrent timing-query + ECO server and load generator |
//!
//! See the repository `README.md` for a tour and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every figure and table.
//!
//! ```
//! use penfield_rubinstein::core::moments::characteristic_times;
//! use penfield_rubinstein::workloads::fig7::figure7_tree;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (tree, out) = figure7_tree();
//! let bounds = characteristic_times(&tree, out)?.delay_bounds(0.9)?;
//! // Figure 10, last row: [723.66, 988.5] seconds.
//! assert!((bounds.lower.value() - 723.66).abs() < 0.05);
//! assert!((bounds.upper.value() - 988.5).abs() < 0.05);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use rctree_core as core;
pub use rctree_netlist as netlist;
pub use rctree_par as par;
pub use rctree_serve as serve;
pub use rctree_sim as sim;
pub use rctree_sta as sta;
pub use rctree_workloads as workloads;

/// Commonly used items from every sub-crate.
pub mod prelude {
    pub use rctree_core::prelude::*;
    pub use rctree_netlist::{parse_expr, parse_spef, parse_spef_deck, parse_spice, write_spice};
    pub use rctree_par::{available_parallelism, default_jobs, par_map_indexed};
    pub use rctree_sim::{exact_step_response, InputSource, LumpedNetwork, TransientOptions};
    pub use rctree_sta::{analyze_stage, CellLibrary, Design};
    pub use rctree_workloads::{figure7_tree, h_tree, PlaLine, RandomTreeConfig, Technology};
}
